//! NTP and Chronos: the application layer whose server pool the paper's
//! proposal secures.
//!
//! The crate provides:
//!
//! * the NTP packet format and offset/delay computation ([`NtpPacket`],
//!   [`NtpSample`]),
//! * simulated benign and malicious time servers ([`NtpServerService`],
//!   [`NtpServerConfig`], [`register_pool`]),
//! * a basic NTP client and the plain-SNTP baseline ([`NtpClient`]),
//! * a disciplined local clock ([`LocalClock`]),
//! * the **Chronos** algorithm ([`ChronosClient`]) — sampling, trimming,
//!   agreement checking and panic mode — which tolerates a minority of bad
//!   servers in the pool but, as the paper stresses, not a pool whose
//!   majority was poisoned at the DNS layer.
//!
//! # Example: Chronos over an honest pool
//!
//! ```
//! use sdoh_netsim::{SimAddr, SimNet};
//! use sdoh_ntp::{register_pool, ChronosClient, ChronosConfig, LocalClock, NtpClient};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = SimNet::new(7);
//! let addrs: Vec<SimAddr> = (1..=15u8).map(|i| SimAddr::v4(203, 0, 113, i, 123)).collect();
//! register_pool(&net, &addrs, 0, 0.0, 7);
//! let pool: Vec<std::net::IpAddr> = addrs.iter().map(|a| a.ip).collect();
//!
//! let mut clock = LocalClock::new(net.clock(), 0.0);
//! let mut chronos = ChronosClient::new(
//!     ChronosConfig::default(),
//!     NtpClient::new(SimAddr::v4(10, 0, 0, 1, 123)),
//!     7,
//! )?;
//! let outcome = chronos.update(&net, &mut clock, &pool)?;
//! assert!(outcome.applied_offset.abs() < 0.1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod chronos;
mod client;
mod clock;
mod error;
mod packet;
mod server;
mod timestamp;

pub use chronos::{ChronosClient, ChronosConfig, ChronosMode, ChronosOutcome};
pub use client::NtpClient;
pub use clock::LocalClock;
pub use error::{NtpError, NtpResult};
pub use packet::{NtpMode, NtpPacket, NtpSample, PACKET_LEN};
pub use server::{register_pool, NtpServerConfig, NtpServerService};
pub use timestamp::NtpTimestamp;
