//! NTP and Chronos: the application layer whose server pool the paper's
//! proposal secures.
//!
//! The crate provides:
//!
//! * the NTP packet format and offset/delay computation ([`NtpPacket`],
//!   [`NtpSample`]),
//! * simulated benign and malicious time servers ([`NtpServerService`],
//!   [`NtpServerConfig`], [`register_pool`]),
//! * a basic NTP client and the plain-SNTP baseline ([`NtpClient`]),
//! * a disciplined local clock ([`LocalClock`]),
//! * the **Chronos** algorithm ([`ChronosClient`]) — sampling, trimming,
//!   agreement checking and panic mode — which tolerates a minority of bad
//!   servers in the pool but, as the paper stresses, not a pool whose
//!   majority was poisoned at the DNS layer,
//! * **secure time synchronization** ([`SecureTimeClient`]) — the
//!   end-to-end pipeline wiring consensus-generated pools into Chronos.
//!
//! # Example: Chronos over an honest pool
//!
//! ```
//! use sdoh_netsim::{SimAddr, SimNet};
//! use sdoh_ntp::{register_pool, ChronosClient, ChronosConfig, LocalClock, NtpClient};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = SimNet::new(7);
//! let addrs: Vec<SimAddr> = (1..=15u8).map(|i| SimAddr::v4(203, 0, 113, i, 123)).collect();
//! register_pool(&net, &addrs, 0, 0.0, 7);
//! let pool: Vec<std::net::IpAddr> = addrs.iter().map(|a| a.ip).collect();
//!
//! let mut clock = LocalClock::new(net.clock(), 0.0);
//! let mut chronos = ChronosClient::new(
//!     ChronosConfig::default(),
//!     NtpClient::new(SimAddr::v4(10, 0, 0, 1, 123)),
//!     7,
//! )?;
//! let outcome = chronos.update(&net, &mut clock, &pool)?;
//! assert!(outcome.applied_offset.abs() < 0.1);
//! # Ok(())
//! # }
//! ```
//!
//! # Secure time synchronization
//!
//! Chronos alone is *not* the paper's defense — it only tolerates a bad
//! minority **inside** the pool DNS handed it. [`SecureTimeClient`] closes
//! the loop: it obtains its pool through a secure [`NtpPoolSource`] —
//! typically the caching consensus front end
//! ([`ConsensusFrontEnd`] over a
//! [`CachingPoolResolver`](sdoh_core::CachingPoolResolver)) — re-pulls it
//! once per TTL window, and drives Chronos updates over it. The same
//! client is captured when its pool comes from one spoofable plain-DNS
//! resolver ([`SingleResolverPool`]) and keeps the clock within a second
//! over the consensus pipeline.
//!
//! ```
//! use std::sync::Arc;
//! use parking_lot::Mutex;
//! use sdoh_core::{
//!     AddressSource, CacheConfig, CachingPoolResolver, PoolConfig, SecurePoolGenerator,
//!     StaticSource,
//! };
//! use sdoh_dns_server::ClientExchanger;
//! use sdoh_netsim::{SimAddr, SimNet};
//! use sdoh_ntp::{
//!     register_pool, ChronosClient, ChronosConfig, ConsensusFrontEnd, LocalClock, NtpClient,
//!     SecureTimeClient,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Fifteen honest NTP servers, published by three (static) resolvers.
//! let net = SimNet::new(7);
//! let addrs: Vec<SimAddr> = (1..=15u8).map(|i| SimAddr::v4(203, 0, 113, i, 123)).collect();
//! register_pool(&net, &addrs, 0, 0.0, 7);
//! let ips: Vec<std::net::IpAddr> = addrs.iter().map(|a| a.ip).collect();
//! let sources: Vec<Box<dyn AddressSource>> = ["r1", "r2", "r3"]
//!     .iter()
//!     .map(|name| Box::new(StaticSource::answering(*name, ips.clone())) as Box<dyn AddressSource>)
//!     .collect();
//!
//! // The consensus front end (shared, cacheable) feeding a Chronos client.
//! let frontend = Arc::new(Mutex::new(CachingPoolResolver::new(
//!     SecurePoolGenerator::new(PoolConfig::algorithm1(), sources)?,
//!     CacheConfig::default(),
//! )));
//! let mut client = SecureTimeClient::new(
//!     Box::new(ConsensusFrontEnd::new(frontend)),
//!     "pool.ntpns.org".parse()?,
//!     ChronosClient::new(
//!         ChronosConfig::default(),
//!         NtpClient::new(SimAddr::v4(10, 0, 0, 1, 123)),
//!         7,
//!     )?,
//! );
//!
//! // One sync pulls the pool through the consensus pipeline and
//! // disciplines a clock that starts 30 seconds slow.
//! let mut clock = LocalClock::new(net.clock(), -30.0);
//! let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
//! let outcome = client.sync(&net, &mut exchanger, &mut clock)?;
//! assert!(outcome.pool_refreshed);
//! assert!(clock.offset_from_true().abs() < 0.1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod chronos;
mod client;
mod clock;
mod error;
mod packet;
mod server;
mod timestamp;
mod timesync;

pub use chronos::{ChronosClient, ChronosConfig, ChronosMode, ChronosOutcome};
pub use client::NtpClient;
pub use clock::LocalClock;
pub use error::{NtpError, NtpResult};
pub use packet::{NtpMode, NtpPacket, NtpSample, PACKET_LEN};
pub use sdoh_core::ResolvedPool;
pub use server::{register_pool, NtpServerConfig, NtpServerService};
pub use timestamp::NtpTimestamp;
pub use timesync::{
    ConsensusFrontEnd, GeneratorPool, NtpPoolSource, SecureTimeClient, SingleResolverPool,
    TimeSyncError, TimeSyncOutcome,
};
