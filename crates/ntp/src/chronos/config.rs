//! Chronos parameters.

use serde::{Deserialize, Serialize};

use crate::error::{NtpError, NtpResult};

/// Parameters of the Chronos time-sampling algorithm (Deutsch et al.,
/// NDSS 2018).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChronosConfig {
    /// Number of servers sampled from the pool each round (`m`).
    pub sample_size: usize,
    /// Number of samples trimmed from each end of the sorted offsets (`d`).
    pub trim: usize,
    /// Agreement window `w` in seconds: surviving samples must all lie
    /// within `w` of each other.
    pub agreement_window: f64,
    /// Bound on the distance between the averaged offset and the local
    /// clock (`ERR` drift bound) in seconds.
    pub drift_bound: f64,
    /// Number of re-sampling attempts before panic mode (`k`).
    pub max_retries: usize,
    /// Fraction of the full pool trimmed from each end in panic mode.
    pub panic_trim_fraction: f64,
}

impl Default for ChronosConfig {
    fn default() -> Self {
        ChronosConfig {
            sample_size: 12,
            trim: 4,
            agreement_window: 0.030,
            drift_bound: 0.050,
            max_retries: 3,
            panic_trim_fraction: 1.0 / 3.0,
        }
    }
}

impl ChronosConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`NtpError::InvalidConfig`] when trimming would remove every
    /// sample or parameters are out of range.
    pub fn validate(&self) -> NtpResult<()> {
        if self.sample_size == 0 {
            return Err(NtpError::InvalidConfig(
                "sample_size must be positive".into(),
            ));
        }
        if 2 * self.trim >= self.sample_size {
            return Err(NtpError::InvalidConfig(format!(
                "trimming 2*{} samples leaves nothing of a sample of {}",
                self.trim, self.sample_size
            )));
        }
        if !(0.0..0.5).contains(&self.panic_trim_fraction) {
            return Err(NtpError::InvalidConfig(
                "panic_trim_fraction must be in [0, 0.5)".into(),
            ));
        }
        if self.agreement_window <= 0.0 || self.drift_bound <= 0.0 {
            return Err(NtpError::InvalidConfig(
                "agreement_window and drift_bound must be positive".into(),
            ));
        }
        Ok(())
    }

    /// Number of samples that survive trimming in a normal round.
    pub fn surviving_samples(&self) -> usize {
        self.sample_size - 2 * self.trim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let config = ChronosConfig::default();
        config.validate().unwrap();
        assert_eq!(config.surviving_samples(), 4);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut config = ChronosConfig {
            sample_size: 0,
            ..ChronosConfig::default()
        };
        assert!(config.validate().is_err());

        config = ChronosConfig {
            sample_size: 6,
            trim: 3,
            ..ChronosConfig::default()
        };
        assert!(config.validate().is_err());

        config = ChronosConfig {
            panic_trim_fraction: 0.6,
            ..ChronosConfig::default()
        };
        assert!(config.validate().is_err());

        config = ChronosConfig {
            agreement_window: 0.0,
            ..ChronosConfig::default()
        };
        assert!(config.validate().is_err());
    }
}
