//! The Chronos time-sampling algorithm (Deutsch, Rozen-Schiff, Dolev,
//! Schapira — "Preventing (Network) Time Travel with Chronos", NDSS 2018).
//!
//! Each update round samples `m` servers uniformly at random from the pool
//! of `n` servers, discards the `d` lowest and `d` highest offsets, and
//! accepts the average of the survivors only if (1) the survivors agree to
//! within `w` and (2) the average is close to the local clock. After `k`
//! failed rounds the client enters *panic mode*: it queries every server in
//! the pool, trims a third from each end and applies the average of the
//! rest.
//!
//! Chronos tolerates a minority of bad servers *in the pool*; the paper
//! reproduced by this repository protects the step before that — making
//! sure the pool obtained through DNS actually has an honest majority.

use std::net::IpAddr;

use sdoh_netsim::{SimNet, SimRng};
use serde::{Deserialize, Serialize};

use crate::client::NtpClient;
use crate::clock::LocalClock;
use crate::error::{NtpError, NtpResult};

use super::config::ChronosConfig;

/// How an update round concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChronosMode {
    /// A sampled subset agreed and the offset was applied.
    Normal,
    /// Panic mode was entered and the trimmed pool-wide average was applied.
    Panic,
}

/// The result of one Chronos update.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChronosOutcome {
    /// Offset (seconds) applied to the local clock.
    pub applied_offset: f64,
    /// Whether the update came from a normal round or panic mode.
    pub mode: ChronosMode,
    /// Number of sampling rounds attempted (including the successful one).
    pub rounds: usize,
    /// Number of samples that contributed to the applied average.
    pub samples_used: usize,
}

/// A Chronos client.
#[derive(Debug)]
pub struct ChronosClient {
    config: ChronosConfig,
    ntp: NtpClient,
    rng: SimRng,
}

impl ChronosClient {
    /// Creates a Chronos client.
    ///
    /// # Errors
    ///
    /// Returns [`NtpError::InvalidConfig`] when the configuration is
    /// inconsistent.
    pub fn new(config: ChronosConfig, ntp: NtpClient, seed: u64) -> NtpResult<Self> {
        config.validate()?;
        Ok(ChronosClient {
            config,
            ntp,
            rng: SimRng::seed_from_u64(seed),
        })
    }

    /// The configured parameters.
    pub fn config(&self) -> ChronosConfig {
        self.config
    }

    /// Performs one Chronos update against `pool`, adjusting `clock`.
    ///
    /// # Errors
    ///
    /// Returns [`NtpError::EmptyPool`] for an empty pool and
    /// [`NtpError::NotEnoughSamples`] when even panic mode cannot gather
    /// enough responses to apply the configured trim — a round never
    /// shrinks its trim to fit a depleted sample set.
    pub fn update(
        &mut self,
        net: &SimNet,
        clock: &mut LocalClock,
        pool: &[IpAddr],
    ) -> NtpResult<ChronosOutcome> {
        if pool.is_empty() {
            return Err(NtpError::EmptyPool);
        }
        let mut rounds = 0usize;
        while rounds < self.config.max_retries {
            rounds += 1;
            if let Some((offset, used)) = self.try_normal_round(net, clock, pool)? {
                clock.adjust(offset);
                return Ok(ChronosOutcome {
                    applied_offset: offset,
                    mode: ChronosMode::Normal,
                    rounds,
                    samples_used: used,
                });
            }
        }
        // Panic mode: query every server in the pool.
        let (offset, used) = self.panic_round(net, clock, pool)?;
        clock.adjust(offset);
        Ok(ChronosOutcome {
            applied_offset: offset,
            mode: ChronosMode::Panic,
            rounds: rounds + 1,
            samples_used: used,
        })
    }

    fn try_normal_round(
        &mut self,
        net: &SimNet,
        clock: &LocalClock,
        pool: &[IpAddr],
    ) -> NtpResult<Option<(f64, usize)>> {
        let m = self.config.sample_size.min(pool.len());
        let indices = self.rng.sample_indices(pool.len(), m);
        let chosen: Vec<IpAddr> = indices
            .iter()
            .filter_map(|&i| pool.get(i).copied())
            .collect();
        let samples = self.ntp.sample_pool(net, clock, &chosen);
        // Trimming `d` from each end only discards the extremes when at
        // least `surviving_samples() + 2d` servers responded. With fewer
        // responses the round must fail — shrinking the trim instead would
        // let a lone malicious offset survive into the average whenever
        // enough honest servers are unresponsive.
        if samples.len() < self.config.surviving_samples() + 2 * self.config.trim {
            return Ok(None);
        }
        let mut offsets: Vec<f64> = samples.iter().map(|(_, s)| s.offset).collect();
        offsets.sort_by(f64::total_cmp);
        let trim = self.config.trim;
        let Some(survivors) = offsets.get(trim..offsets.len().saturating_sub(trim)) else {
            return Ok(None);
        };
        let (Some(&lowest), Some(&highest)) = (survivors.first(), survivors.last()) else {
            return Ok(None);
        };
        let spread = highest - lowest;
        let average = survivors.iter().sum::<f64>() / survivors.len() as f64;
        // Condition 1: agreement within w. Condition 2: not too far from the
        // local clock (drift bound) — a large jump is suspicious unless the
        // clock has just started (offset 0 rounds are always accepted when
        // they agree).
        if spread <= self.config.agreement_window && average.abs() <= self.config.drift_bound {
            Ok(Some((average, survivors.len())))
        } else {
            Ok(None)
        }
    }

    fn panic_round(
        &mut self,
        net: &SimNet,
        clock: &LocalClock,
        pool: &[IpAddr],
    ) -> NtpResult<(f64, usize)> {
        let samples = self.ntp.sample_pool(net, clock, pool);
        let mut offsets: Vec<f64> = samples.iter().map(|(_, s)| s.offset).collect();
        offsets.sort_by(f64::total_cmp);
        let trim = ((offsets.len() as f64) * self.config.panic_trim_fraction).floor() as usize; // sdoh-lint: allow(no-narrowing-cast, "the floored fraction of a sample count always fits usize")
                                                                                                // Panic mode must rest on at least as many survivors as a normal
                                                                                                // round: applying the "trimmed average" of one or two stragglers
                                                                                                // would hand a lone malicious responder the clock when the rest of
                                                                                                // the pool is unresponsive. (panic_trim_fraction < 1/2 is enforced
                                                                                                // at construction, so 2 * trim < len whenever len > 0.)
        let survivor_count = offsets.len() - 2 * trim;
        if survivor_count < self.config.surviving_samples() {
            return Err(NtpError::NotEnoughSamples {
                got: samples.len(),
                needed: self.min_panic_responses(),
            });
        }
        let Some(survivors) = offsets.get(trim..offsets.len().saturating_sub(trim)) else {
            return Err(NtpError::NotEnoughSamples {
                got: samples.len(),
                needed: self.min_panic_responses(),
            });
        };
        let average = survivors.iter().sum::<f64>() / survivors.len() as f64;
        Ok((average, survivors.len()))
    }

    /// The smallest response count `n` from which *every* count `>= n`
    /// keeps [`ChronosConfig::surviving_samples`] survivors after the
    /// floored panic trim. (Because the trim is floored, the survivor count
    /// is not monotone in `n` — e.g. 8 responses can pass where 9 fail —
    /// so the continuous bound `target / (1 - 2f)` is only a starting
    /// point, walked down while every smaller count still passes.)
    fn min_panic_responses(&self) -> usize {
        let target = self.config.surviving_samples();
        let fraction = self.config.panic_trim_fraction;
        let survivors = |n: usize| n - 2 * ((n as f64 * fraction).floor() as usize); // sdoh-lint: allow(no-narrowing-cast, "the floored fraction of a sample count always fits usize")
                                                                                     // At and beyond this bound the floored trim can never dip the
                                                                                     // survivor count below target again.
        let mut needed = ((target as f64) / (1.0 - 2.0 * fraction)).ceil() as usize; // sdoh-lint: allow(no-narrowing-cast, "the ceiling of a small positive ratio always fits usize")
        while needed > target && survivors(needed - 1) >= target {
            needed -= 1;
        }
        needed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{register_pool, NtpServerConfig, NtpServerService};
    use sdoh_netsim::{LinkConfig, SimAddr};
    use std::time::Duration;

    fn make_pool(net: &SimNet, total: u8, malicious: usize, shift: f64) -> Vec<IpAddr> {
        let addrs: Vec<SimAddr> = (1..=total)
            .map(|i| SimAddr::v4(203, 0, 113, i, 123))
            .collect();
        register_pool(net, &addrs, malicious, shift, 1000);
        addrs.iter().map(|a| a.ip).collect()
    }

    fn client(seed: u64) -> ChronosClient {
        ChronosClient::new(
            ChronosConfig::default(),
            NtpClient::new(SimAddr::v4(10, 0, 0, 1, 123)).timeout(Duration::from_millis(500)),
            seed,
        )
        .unwrap()
    }

    #[test]
    fn honest_pool_synchronises_accurately() {
        let net = SimNet::new(200);
        net.set_default_link(LinkConfig::with_latency(Duration::from_millis(5)));
        let pool = make_pool(&net, 18, 0, 0.0);
        let mut clock = LocalClock::new(net.clock(), 0.0);
        let mut chronos = client(1);
        let outcome = chronos.update(&net, &mut clock, &pool).unwrap();
        assert_eq!(outcome.mode, ChronosMode::Normal);
        assert!(
            clock.offset_from_true().abs() < 0.05,
            "offset {}",
            clock.offset_from_true()
        );
    }

    #[test]
    fn minority_of_attackers_is_tolerated() {
        let net = SimNet::new(201);
        net.set_default_link(LinkConfig::with_latency(Duration::from_millis(5)));
        // 5 of 18 servers shift time by 1000 s.
        let pool = make_pool(&net, 18, 5, 1000.0);
        let mut clock = LocalClock::new(net.clock(), 0.0);
        let mut chronos = client(2);
        let outcome = chronos.update(&net, &mut clock, &pool).unwrap();
        assert!(
            clock.offset_from_true().abs() < 1.0,
            "clock shifted by {} despite attacker minority (mode {:?})",
            clock.offset_from_true(),
            outcome.mode
        );
    }

    #[test]
    fn poisoned_majority_shifts_the_clock() {
        let net = SimNet::new(202);
        net.set_default_link(LinkConfig::with_latency(Duration::from_millis(5)));
        // 15 of 18 servers are malicious — the situation a poisoned DNS pool
        // creates. Even Chronos cannot survive a corrupted majority.
        let pool = make_pool(&net, 18, 15, 1000.0);
        let mut clock = LocalClock::new(net.clock(), 0.0);
        let mut chronos = client(3);
        let _ = chronos.update(&net, &mut clock, &pool).unwrap();
        assert!(
            clock.offset_from_true() > 100.0,
            "a malicious majority should capture the clock, offset {}",
            clock.offset_from_true()
        );
    }

    #[test]
    fn empty_pool_is_an_error() {
        let net = SimNet::new(203);
        let mut clock = LocalClock::new(net.clock(), 0.0);
        let mut chronos = client(4);
        assert_eq!(
            chronos.update(&net, &mut clock, &[]),
            Err(NtpError::EmptyPool)
        );
    }

    #[test]
    fn unresponsive_pool_reports_not_enough_samples() {
        let net = SimNet::new(204);
        let pool: Vec<IpAddr> = (1..=6u8)
            .map(|i| format!("192.0.2.{i}").parse().unwrap())
            .collect();
        let mut clock = LocalClock::new(net.clock(), 0.0);
        let mut chronos = client(5);
        let err = chronos.update(&net, &mut clock, &pool).unwrap_err();
        assert!(matches!(err, NtpError::NotEnoughSamples { .. }));
    }

    #[test]
    fn lone_malicious_server_among_dead_ones_cannot_shift_the_clock() {
        // Regression: one malicious server answers, the rest of the pool is
        // unresponsive. The old guard shrank the trim to fit the depleted
        // sample set, so the single malicious offset survived into the
        // "trimmed" average (in panic mode) and moved the clock by the full
        // attacker shift. A depleted round must fail instead.
        let net = SimNet::new(205);
        net.set_default_link(LinkConfig::with_latency(Duration::from_millis(5)));
        let addrs: Vec<SimAddr> = (1..=12u8)
            .map(|i| SimAddr::v4(203, 0, 113, i, 123))
            .collect();
        // First server malicious (+1000 s), the other eleven never answer.
        net.register(
            addrs[0],
            NtpServerService::new(NtpServerConfig::malicious(1000.0), net.clock(), 1),
        );
        for &addr in &addrs[1..] {
            net.register(
                addr,
                NtpServerService::new(NtpServerConfig::silent(), net.clock(), 2),
            );
        }
        let pool: Vec<IpAddr> = addrs.iter().map(|a| a.ip).collect();
        let mut clock = LocalClock::new(net.clock(), 0.0);
        let mut chronos = client(7);
        let err = chronos.update(&net, &mut clock, &pool).unwrap_err();
        assert!(
            matches!(err, NtpError::NotEnoughSamples { got: 1, .. }),
            "a single response must not drive an update: {err:?}"
        );
        assert!(
            clock.offset_from_true().abs() < 1e-9,
            "the malicious offset leaked into the clock: {}",
            clock.offset_from_true()
        );
    }

    #[test]
    fn partial_responses_fail_the_round_instead_of_under_trimming() {
        // 9 of 12 servers answer: enough to slip past the old inner guard
        // (9 > 2*trim) but not enough for a d=4 trim to leave the configured
        // surviving_samples() — the old code averaged a single "survivor"
        // and reported samples_used = 4. Both rounds must fail outright now.
        let net = SimNet::new(206);
        net.set_default_link(LinkConfig::with_latency(Duration::from_millis(5)));
        let addrs: Vec<SimAddr> = (1..=12u8)
            .map(|i| SimAddr::v4(203, 0, 113, i, 123))
            .collect();
        register_pool(&net, &addrs[..9], 1, 1000.0, 3);
        for &addr in &addrs[9..] {
            net.register(
                addr,
                NtpServerService::new(NtpServerConfig::silent(), net.clock(), 4),
            );
        }
        let pool: Vec<IpAddr> = addrs.iter().map(|a| a.ip).collect();
        let mut clock = LocalClock::new(net.clock(), 0.0);
        let mut chronos = client(8);
        let err = chronos.update(&net, &mut clock, &pool).unwrap_err();
        assert!(
            matches!(err, NtpError::NotEnoughSamples { got: 9, needed: 10 }),
            "unexpected error: {err:?}"
        );
        assert!(clock.offset_from_true().abs() < 1e-9);
    }

    #[test]
    fn min_panic_responses_matches_the_floored_trim_exactly() {
        // Default config: surviving_samples = 4, panic trim 1/3. Counts of
        // 10 and above always keep >= 4 survivors (10 - 2*floor(10/3) = 4),
        // while 9 does not (9 - 2*3 = 3) — the reported `needed` must be
        // the exact threshold, not the continuous-bound overestimate of 12.
        let chronos = client(10);
        let survivors = |n: usize| n - 2 * ((n as f64 / 3.0).floor() as usize);
        assert!(survivors(10) >= 4);
        assert!(survivors(9) < 4);
        let net = SimNet::new(208);
        let pool: Vec<IpAddr> = (1..=6u8)
            .map(|i| format!("192.0.2.{i}").parse().unwrap())
            .collect();
        let mut clock = LocalClock::new(net.clock(), 0.0);
        let mut chronos_client = chronos;
        let err = chronos_client.update(&net, &mut clock, &pool).unwrap_err();
        assert!(
            matches!(err, NtpError::NotEnoughSamples { got: 0, needed: 10 }),
            "unexpected error: {err:?}"
        );
    }

    #[test]
    fn samples_used_reports_the_actual_survivor_count() {
        let net = SimNet::new(207);
        net.set_default_link(LinkConfig::with_latency(Duration::from_millis(5)));
        let pool = make_pool(&net, 18, 0, 0.0);
        let mut clock = LocalClock::new(net.clock(), 0.0);
        let mut chronos = client(9);
        let outcome = chronos.update(&net, &mut clock, &pool).unwrap();
        assert_eq!(outcome.mode, ChronosMode::Normal);
        assert_eq!(
            outcome.samples_used,
            chronos.config().surviving_samples(),
            "a full round's survivors are exactly m - 2d"
        );
    }

    #[test]
    fn invalid_config_rejected_at_construction() {
        let bad = ChronosConfig {
            sample_size: 4,
            trim: 2,
            ..ChronosConfig::default()
        };
        assert!(ChronosClient::new(bad, NtpClient::new(SimAddr::v4(10, 0, 0, 1, 123)), 1).is_err());
    }

    #[test]
    fn config_accessor() {
        let chronos = client(6);
        assert_eq!(chronos.config().sample_size, 12);
    }
}
