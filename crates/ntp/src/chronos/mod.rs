//! The Chronos secure time-sampling algorithm and its configuration.

mod algorithm;
mod config;

pub use algorithm::{ChronosClient, ChronosMode, ChronosOutcome};
pub use config::ChronosConfig;
