//! Property-based tests on the DoH transport stack: HPACK, HTTP/2 framing
//! and the secure channel survive arbitrary inputs and round trips.

use proptest::prelude::*;

use sdoh_doh::h2::{hpack, ClientConnection, Frame, ServerConnection};
use sdoh_doh::http::{Request, Response, StatusCode};
use sdoh_doh::secure::{self, SecretKey};

fn arb_header_name() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z][a-z0-9-]{0,12}").unwrap()
}

fn arb_header_value() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~&&[^\"]]{0,24}").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// HPACK round-trips arbitrary (lowercase-named) header lists.
    #[test]
    fn hpack_roundtrip(headers in proptest::collection::vec(
        (arb_header_name(), arb_header_value()), 0..12))
    {
        let block = hpack::encode(&headers);
        prop_assert_eq!(hpack::decode(&block).unwrap(), headers);
    }

    /// The HPACK decoder never panics on arbitrary bytes.
    #[test]
    fn hpack_decoder_never_panics(block in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = hpack::decode(&block);
    }

    /// HTTP/2 frames round-trip and the decoder never panics on noise.
    #[test]
    fn data_frames_roundtrip(
        stream_id in 1u32..0x7FFF_0000,
        end_stream in any::<bool>(),
        data in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let frame = Frame::Data { stream_id, end_stream, data };
        let mut buf = bytes::BytesMut::new();
        frame.encode(&mut buf);
        let (decoded, used) = Frame::decode(&buf).unwrap().unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn frame_decoder_never_panics(noise in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = Frame::decode(&noise);
    }

    /// A full request/response exchange preserves method, path, authority,
    /// headers, bodies and status.
    #[test]
    fn http2_exchange_roundtrip(
        path_suffix in "[a-zA-Z0-9_-]{0,24}",
        body in proptest::collection::vec(any::<u8>(), 0..256),
        status in 200u16..600,
        use_post in any::<bool>(),
    ) {
        let path = format!("/dns-query?dns={path_suffix}");
        let request = if use_post {
            Request::post("dns.example", path.clone(), body.clone())
                .with_header("content-type", "application/dns-message")
        } else {
            Request::get("dns.example", path.clone())
        };
        let mut client = ClientConnection::new();
        let mut server = ServerConnection::new();
        let sid = client.send_request(&request);
        let requests = server.receive(&client.take_output()).unwrap();
        prop_assert_eq!(requests.len(), 1);
        let (rid, received) = &requests[0];
        prop_assert_eq!(*rid, sid);
        prop_assert_eq!(&received.path, &path);
        prop_assert_eq!(&received.authority, "dns.example");
        if use_post {
            prop_assert_eq!(&received.body, &body);
        }

        let response = Response::new(StatusCode::from(status));
        server.send_response(*rid, &response);
        let responses = client.receive(&server.take_output()).unwrap();
        prop_assert_eq!(responses.len(), 1);
        prop_assert_eq!(responses[0].1.status.as_u16(), status);
    }

    /// The secure channel round-trips arbitrary payloads and rejects any
    /// single-byte tampering.
    #[test]
    fn secure_channel_roundtrip_and_tamper_detection(
        seed in any::<u64>(),
        label in "[a-z.]{1,20}",
        seq in 0u64..4,
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        flip in any::<(usize, u8)>(),
    ) {
        let key = SecretKey::derive(seed, &label);
        let sealed = secure::seal(&key, seq, &payload);
        prop_assert_eq!(secure::open(&key, seq, &sealed).unwrap(), payload);

        let (pos, bit) = flip;
        if !sealed.is_empty() && bit != 0 {
            let mut tampered = sealed.clone();
            let idx = pos % tampered.len();
            tampered[idx] ^= bit;
            prop_assert!(secure::open(&key, seq, &tampered).is_err());
        }
    }

    /// Envelopes round-trip and the parser never panics on noise.
    #[test]
    fn envelope_roundtrip_and_robustness(
        name in "[a-z0-9.-]{1,30}",
        record in proptest::collection::vec(any::<u8>(), 0..128),
        noise in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let envelope = secure::SecureEnvelope { server_name: name, record };
        let encoded = envelope.encode();
        prop_assert_eq!(secure::SecureEnvelope::decode(&encoded).unwrap(), envelope);
        let _ = secure::SecureEnvelope::decode(&noise);
    }
}
