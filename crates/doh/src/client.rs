//! The DNS-over-HTTPS client (RFC 8484).

use std::time::Duration;

use sdoh_dns_server::Exchanger;
use sdoh_dns_wire::{base64url, Message, Name, RrType};
use sdoh_netsim::ChannelKind;

use crate::directory::ResolverInfo;
use crate::error::{DohError, DohResult};
use crate::h2::ClientConnection;
use crate::http::Request;
use crate::secure::{self, SecureEnvelope};

/// The media type DoH exchanges use.
pub const DNS_MESSAGE_CONTENT_TYPE: &str = "application/dns-message";
/// The well-known DoH path.
pub const DOH_PATH: &str = "/dns-query";

/// Which RFC 8484 method the client uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DohMethod {
    /// `GET` with the base64url-encoded query in the `dns` parameter.
    #[default]
    Get,
    /// `POST` with the query as the request body.
    Post,
}

/// A DoH client bound to one resolver.
///
/// Each query opens a fresh HTTP/2 connection over the secure channel; that
/// costs a little overhead (measured by the overhead experiment) but keeps
/// the client stateless and the failure model per-query.
#[derive(Debug, Clone)]
pub struct DohClient {
    resolver: ResolverInfo,
    method: DohMethod,
    timeout: Duration,
}

impl DohClient {
    /// Creates a client for the given resolver using the GET method.
    pub fn new(resolver: ResolverInfo) -> Self {
        DohClient {
            resolver,
            method: DohMethod::Get,
            timeout: Duration::from_secs(3),
        }
    }

    /// Selects the RFC 8484 method.
    pub fn method(mut self, method: DohMethod) -> Self {
        self.method = method;
        self
    }

    /// Sets the per-query timeout.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The resolver this client queries.
    pub fn resolver(&self) -> &ResolverInfo {
        &self.resolver
    }

    /// Performs one DoH query and returns the decoded DNS response.
    ///
    /// This is the blocking convenience wrapper over the sans-IO halves
    /// [`DohClient::begin_query`] / [`DohClient::finish_query`].
    ///
    /// # Errors
    ///
    /// Returns [`DohError`] for transport failures, secure-channel
    /// authentication failures, HTTP/2 protocol errors, non-200 statuses,
    /// wrong content types and undecodable DNS payloads.
    pub fn query(
        &self,
        exchanger: &mut dyn Exchanger,
        name: &Name,
        rtype: RrType,
    ) -> DohResult<Message> {
        let id = match self.method {
            DohMethod::Get => 0,
            DohMethod::Post => exchanger.next_id(),
        };
        let (transmit, prepared) = self.begin_query(id, name, rtype)?;
        let reply = exchanger.exchange(
            transmit.dst,
            transmit.channel,
            &transmit.payload,
            transmit.timeout,
        )?;
        self.finish_query(prepared, &reply)
    }

    /// Sans-IO first half of a query: builds everything that must go on the
    /// wire without performing any exchange.
    ///
    /// Returns the [`DohTransmit`] describing the bytes to send and the
    /// [`PreparedDohQuery`] holding the connection state needed to decode
    /// the eventual reply with [`DohClient::finish_query`]. A driver may
    /// keep any number of prepared queries in flight concurrently.
    ///
    /// `id` is the DNS transaction id; per RFC 8484 §4.1 pass 0 for GET
    /// (cache friendliness) and a random id for POST.
    ///
    /// # Errors
    ///
    /// Returns [`DohError::Wire`] when the query cannot be encoded.
    pub fn begin_query(
        &self,
        id: u16,
        name: &Name,
        rtype: RrType,
    ) -> DohResult<(DohTransmit, PreparedDohQuery)> {
        // RFC 8484 §4.1: use DNS id 0 with GET for cache friendliness.
        let id = match self.method {
            DohMethod::Get => 0,
            DohMethod::Post => id,
        };
        let dns_query = Message::query(id, name.clone(), rtype);
        let query_wire = dns_query.encode()?;
        let request = self.build_request(&query_wire);

        let mut connection = ClientConnection::new();
        let stream_id = connection.send_request(&request);
        let h2_bytes = connection.take_output();

        let envelope = SecureEnvelope {
            server_name: self.resolver.name.clone(),
            record: secure::seal(&self.resolver.key, secure::SEQ_CLIENT, &h2_bytes),
        };
        Ok((
            DohTransmit::new(
                self.resolver.addr,
                ChannelKind::Secure,
                envelope.encode(),
                self.timeout,
            ),
            PreparedDohQuery {
                connection,
                stream_id,
                query: dns_query,
            },
        ))
    }

    /// Sans-IO second half of a query: decodes, authenticates and validates
    /// the reply bytes produced by the exchange described by the matching
    /// [`DohTransmit`].
    ///
    /// # Errors
    ///
    /// Same error surface as [`DohClient::query`], minus the transport
    /// errors (the driver owns those).
    pub fn finish_query(
        &self,
        prepared: PreparedDohQuery,
        reply_bytes: &[u8],
    ) -> DohResult<Message> {
        let PreparedDohQuery {
            mut connection,
            stream_id,
            query,
        } = prepared;

        let reply_envelope = SecureEnvelope::decode(reply_bytes)?;
        if reply_envelope.server_name != self.resolver.name {
            return Err(DohError::ChannelAuthentication(format!(
                "expected {} but the channel authenticated as {}",
                self.resolver.name, reply_envelope.server_name
            )));
        }
        let server_h2 = secure::open(
            &self.resolver.key,
            secure::SEQ_SERVER,
            &reply_envelope.record,
        )?;
        let responses = connection.receive(&server_h2)?;
        let response = responses
            .into_iter()
            .find(|(sid, _)| *sid == stream_id)
            .map(|(_, response)| response)
            .ok_or_else(|| DohError::Protocol("no response on the request stream".into()))?;

        if !response.status.is_success() {
            return Err(DohError::HttpStatus(response.status.as_u16()));
        }
        match response.headers.get("content-type") {
            Some(ct) if ct.eq_ignore_ascii_case(DNS_MESSAGE_CONTENT_TYPE) => {}
            other => {
                return Err(DohError::Protocol(format!(
                    "unexpected content type {other:?}"
                )))
            }
        }
        let dns_response = Message::decode(&response.body)?;
        // The DoH server must echo the question; ids may legitimately be 0.
        match (dns_response.question(), query.question()) {
            (Some(a), Some(b)) if a == b => {}
            _ => {
                return Err(DohError::Protocol(
                    "response question does not match query".into(),
                ))
            }
        }
        Ok(dns_response)
    }

    /// Queries A records and returns the addresses in answer order, the raw
    /// material for Algorithm 1.
    ///
    /// # Errors
    ///
    /// Same as [`DohClient::query`].
    pub fn query_addresses(
        &self,
        exchanger: &mut dyn Exchanger,
        name: &Name,
    ) -> DohResult<Vec<std::net::IpAddr>> {
        Ok(self.query(exchanger, name, RrType::A)?.answer_addresses())
    }

    fn build_request(&self, query_wire: &[u8]) -> Request {
        match self.method {
            DohMethod::Get => {
                let encoded = base64url::encode(query_wire);
                Request::get(
                    self.resolver.name.clone(),
                    format!("{DOH_PATH}?dns={encoded}"),
                )
                .with_header("accept", DNS_MESSAGE_CONTENT_TYPE)
            }
            DohMethod::Post => Request::post(
                self.resolver.name.clone(),
                DOH_PATH.to_string(),
                query_wire.to_vec(),
            )
            .with_header("accept", DNS_MESSAGE_CONTENT_TYPE)
            .with_header("content-type", DNS_MESSAGE_CONTENT_TYPE),
        }
    }
}

/// Everything a driver must put on the wire for one DoH query — the
/// simulator's batch-request type re-exported under the DoH vocabulary
/// (`dst` is the resolver endpoint, `channel` always
/// [`ChannelKind::Secure`], `payload` the sealed envelope carrying the
/// HTTP/2 request). The caller owns the transport.
pub use sdoh_netsim::ConcurrentRequest as DohTransmit;

/// In-flight state of one DoH query between [`DohClient::begin_query`] and
/// [`DohClient::finish_query`]: the HTTP/2 client connection, the stream the
/// request went out on, and the query to validate the response against.
#[derive(Debug)]
pub struct PreparedDohQuery {
    connection: ClientConnection,
    stream_id: u32,
    query: Message,
}

impl PreparedDohQuery {
    /// The DNS query this prepared exchange will resolve.
    pub fn query(&self) -> &Message {
        &self.query
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::ResolverDirectory;
    use crate::server::DohServerService;
    use sdoh_dns_server::{Authority, Catalog, ClientExchanger, Zone};
    use sdoh_netsim::{SimAddr, SimNet};

    fn pool_authority() -> Authority {
        let mut zone = Zone::new("ntp.org".parse().unwrap());
        for i in 1..=4u8 {
            zone.add_address(
                "pool.ntp.org".parse().unwrap(),
                format!("203.0.113.{i}").parse().unwrap(),
            );
        }
        let mut catalog = Catalog::new();
        catalog.add_zone(zone);
        Authority::new(catalog)
    }

    fn setup() -> (SimNet, ResolverInfo) {
        let net = SimNet::new(11);
        let directory = ResolverDirectory::well_known(11);
        let info = directory.resolvers()[0].clone();
        net.register(
            info.addr,
            DohServerService::new(info.clone(), pool_authority()),
        );
        (net, info)
    }

    #[test]
    fn get_query_end_to_end() {
        let (net, info) = setup();
        let client = DohClient::new(info);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 50000));
        let response = client
            .query(&mut exchanger, &"pool.ntp.org".parse().unwrap(), RrType::A)
            .unwrap();
        assert_eq!(response.answer_addresses().len(), 4);
        assert_eq!(net.metrics().secure_requests, 1);
        assert_eq!(net.metrics().plain_requests, 0);
    }

    #[test]
    fn post_query_end_to_end() {
        let (net, info) = setup();
        let client = DohClient::new(info).method(DohMethod::Post);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 50000));
        let addrs = client
            .query_addresses(&mut exchanger, &"pool.ntp.org".parse().unwrap())
            .unwrap();
        assert_eq!(addrs.len(), 4);
    }

    #[test]
    fn wrong_key_is_rejected_by_server() {
        let (net, info) = setup();
        let mut rogue = info.clone();
        rogue.key = crate::secure::SecretKey::derive(999, "attacker");
        let client = DohClient::new(rogue);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 50000));
        let err = client
            .query(&mut exchanger, &"pool.ntp.org".parse().unwrap(), RrType::A)
            .unwrap_err();
        // The server cannot authenticate the client's record and answers
        // with nothing useful; the client sees a transport/authentication
        // failure rather than a forged answer.
        assert!(matches!(
            err,
            DohError::Network(_) | DohError::ChannelAuthentication(_)
        ));
    }

    #[test]
    fn nonexistent_name_returns_nxdomain_message() {
        let (net, info) = setup();
        let client = DohClient::new(info);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 50000));
        let response = client
            .query(
                &mut exchanger,
                &"missing.ntp.org".parse().unwrap(),
                RrType::A,
            )
            .unwrap();
        assert_eq!(response.header.rcode, sdoh_dns_wire::Rcode::NxDomain);
    }

    #[test]
    fn unreachable_resolver_is_a_network_error() {
        let net = SimNet::new(12);
        let directory = ResolverDirectory::well_known(12);
        let info = directory.resolvers()[0].clone();
        let client = DohClient::new(info).timeout(Duration::from_millis(500));
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 50000));
        let err = client
            .query(&mut exchanger, &"pool.ntp.org".parse().unwrap(), RrType::A)
            .unwrap_err();
        assert!(matches!(err, DohError::Network(_)));
    }

    #[test]
    fn builder_accessors() {
        let directory = ResolverDirectory::well_known(1);
        let info = directory.resolvers()[0].clone();
        let client = DohClient::new(info.clone())
            .method(DohMethod::Post)
            .timeout(Duration::from_secs(9));
        assert_eq!(client.resolver().name, info.name);
        assert_eq!(client.method, DohMethod::Post);
        assert_eq!(client.timeout, Duration::from_secs(9));
    }
}
