//! A directory of well-known public DoH resolvers, mirrored into the
//! simulation.
//!
//! The paper's proposal queries "a list of trusted DNS-over-HTTPS (DoH)
//! resolvers" such as dns.google, cloudflare-dns.com and dns.quad9.net
//! (Figure 1). This module models that list: each entry carries the
//! resolver's host name, its simulated anycast address and the pinned
//! channel key shared between the resolver and its legitimate clients.

use sdoh_netsim::{ports, SimAddr};

use crate::secure::SecretKey;

/// One public DoH resolver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolverInfo {
    /// Host name presented by the resolver (e.g. `dns.google`).
    pub name: String,
    /// Simulated service address (anycast IP, port 443).
    pub addr: SimAddr,
    /// Pinned channel key shared by the resolver and its clients.
    pub key: SecretKey,
}

impl ResolverInfo {
    /// Creates a resolver entry, deriving its pinned key from `seed`.
    pub fn new(name: &str, addr: SimAddr, seed: u64) -> Self {
        ResolverInfo {
            name: name.to_string(),
            addr,
            key: SecretKey::derive(seed, name),
        }
    }
}

/// The directory of public DoH resolvers available to clients.
#[derive(Debug, Clone, Default)]
pub struct ResolverDirectory {
    resolvers: Vec<ResolverInfo>,
}

impl ResolverDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        ResolverDirectory::default()
    }

    /// The directory of well-known public resolvers used throughout the
    /// paper's discussion and the experiments, keyed from `seed`.
    ///
    /// The first three entries are the three resolvers shown in Figure 1.
    pub fn well_known(seed: u64) -> Self {
        let entries = [
            ("dns.google", SimAddr::v4(8, 8, 8, 8, ports::HTTPS)),
            ("cloudflare-dns.com", SimAddr::v4(1, 1, 1, 1, ports::HTTPS)),
            ("dns.quad9.net", SimAddr::v4(9, 9, 9, 9, ports::HTTPS)),
            (
                "doh.opendns.com",
                SimAddr::v4(208, 67, 222, 222, ports::HTTPS),
            ),
            (
                "dns.adguard-dns.com",
                SimAddr::v4(94, 140, 14, 14, ports::HTTPS),
            ),
            (
                "doh.cleanbrowsing.org",
                SimAddr::v4(185, 228, 168, 9, ports::HTTPS),
            ),
            ("doh.dns.sb", SimAddr::v4(185, 222, 222, 222, ports::HTTPS)),
            ("dns.mullvad.net", SimAddr::v4(194, 242, 2, 2, ports::HTTPS)),
            (
                "doh.libredns.gr",
                SimAddr::v4(116, 202, 176, 26, ports::HTTPS),
            ),
            ("dns.switch.ch", SimAddr::v4(130, 59, 31, 248, ports::HTTPS)),
            ("doh.ffmuc.net", SimAddr::v4(5, 1, 66, 255, ports::HTTPS)),
            (
                "dns.digitale-gesellschaft.ch",
                SimAddr::v4(185, 95, 218, 42, ports::HTTPS),
            ),
            (
                "doh.applied-privacy.net",
                SimAddr::v4(146, 255, 56, 98, ports::HTTPS),
            ),
            ("dns.njal.la", SimAddr::v4(95, 215, 19, 53, ports::HTTPS)),
            ("doh.seby.io", SimAddr::v4(139, 99, 222, 72, ports::HTTPS)),
            ("dns.alidns.com", SimAddr::v4(223, 5, 5, 5, ports::HTTPS)),
        ];
        ResolverDirectory {
            resolvers: entries
                .iter()
                .map(|(name, addr)| ResolverInfo::new(name, *addr, seed))
                .collect(),
        }
    }

    /// Adds a resolver to the directory.
    pub fn add(&mut self, resolver: ResolverInfo) {
        self.resolvers.push(resolver);
    }

    /// All resolvers in the directory.
    pub fn resolvers(&self) -> &[ResolverInfo] {
        &self.resolvers
    }

    /// The first `n` resolvers (the "list of trusted DoH resolvers" an
    /// application configures); returns fewer when the directory is smaller.
    pub fn take(&self, n: usize) -> Vec<ResolverInfo> {
        self.resolvers.iter().take(n).cloned().collect()
    }

    /// Looks a resolver up by host name.
    pub fn by_name(&self, name: &str) -> Option<&ResolverInfo> {
        self.resolvers.iter().find(|r| r.name == name)
    }

    /// Number of resolvers in the directory.
    pub fn len(&self) -> usize {
        self.resolvers.len()
    }

    /// Returns `true` when the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.resolvers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_known_contains_figure1_resolvers() {
        let directory = ResolverDirectory::well_known(7);
        assert!(directory.len() >= 8);
        for name in ["dns.google", "cloudflare-dns.com", "dns.quad9.net"] {
            let info = directory.by_name(name).unwrap();
            assert_eq!(info.addr.port, 443);
        }
        assert!(directory.by_name("unknown.example").is_none());
    }

    #[test]
    fn take_returns_prefix() {
        let directory = ResolverDirectory::well_known(7);
        let three = directory.take(3);
        assert_eq!(three.len(), 3);
        assert_eq!(three[0].name, "dns.google");
        assert_eq!(three[1].name, "cloudflare-dns.com");
        assert_eq!(three[2].name, "dns.quad9.net");
        assert_eq!(directory.take(1000).len(), directory.len());
    }

    #[test]
    fn keys_differ_per_resolver_and_per_seed() {
        let a = ResolverDirectory::well_known(1);
        let b = ResolverDirectory::well_known(2);
        assert_ne!(
            a.by_name("dns.google").unwrap().key,
            a.by_name("dns.quad9.net").unwrap().key
        );
        assert_ne!(
            a.by_name("dns.google").unwrap().key,
            b.by_name("dns.google").unwrap().key
        );
        // Same seed reproduces the same keys.
        let c = ResolverDirectory::well_known(1);
        assert_eq!(
            a.by_name("dns.google").unwrap().key,
            c.by_name("dns.google").unwrap().key
        );
    }

    #[test]
    fn addresses_are_unique() {
        let directory = ResolverDirectory::well_known(7);
        let mut addrs: Vec<SimAddr> = directory.resolvers().iter().map(|r| r.addr).collect();
        let before = addrs.len();
        addrs.sort();
        addrs.dedup();
        assert_eq!(addrs.len(), before);
    }

    #[test]
    fn manual_directory_construction() {
        let mut directory = ResolverDirectory::new();
        assert!(directory.is_empty());
        directory.add(ResolverInfo::new(
            "doh.corp.example",
            SimAddr::v4(10, 10, 10, 10, 443),
            5,
        ));
        assert_eq!(directory.len(), 1);
        assert_eq!(directory.resolvers()[0].name, "doh.corp.example");
    }
}
