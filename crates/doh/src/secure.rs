//! The secure-channel layer standing in for TLS.
//!
//! The paper relies on HTTPS purely as an *authenticated, integrity
//! protected channel to a named resolver*. This module provides that
//! abstraction for the simulation:
//!
//! * each resolver has a pinned symmetric [`SecretKey`] shared with its
//!   legitimate clients (modelling certificate pinning / the WebPKI),
//! * application bytes are carried in [`seal`]ed records whose tag binds
//!   the key, a direction/sequence number and the ciphertext,
//! * a peer without the key can neither read nor forge records ([`open`]
//!   fails), which is exactly the property the on-path adversary model in
//!   `sdoh-netsim` grants to [`ChannelKind::Secure`](sdoh_netsim::ChannelKind)
//!   traffic.
//!
//! The cipher is a keyed xorshift keystream with a 64-bit polynomial tag.
//! **It is not cryptographically secure and must never be used outside this
//! simulation**; it exists so that the full DoH code path (handshake,
//! record framing, tag verification, key pinning) is exercised end to end.

use std::collections::HashMap;
use std::fmt;

use crate::error::{DohError, DohResult};

/// A 256-bit pre-shared channel key pinned to a resolver name.
#[derive(Clone, PartialEq, Eq)]
pub struct SecretKey(pub [u8; 32]);

impl SecretKey {
    /// Derives a key deterministically from a seed and a label; used by the
    /// resolver directory so that a whole fleet can be provisioned from one
    /// experiment seed.
    pub fn derive(seed: u64, label: &str) -> Self {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut key = [0u8; 32];
        for (i, b) in label.bytes().enumerate() {
            state = mix(state ^ (u64::from(b) << (8 * (i % 8))));
        }
        for chunk in key.chunks_mut(8) {
            state = mix(state);
            chunk.copy_from_slice(&state.to_be_bytes());
        }
        SecretKey(key)
    }
}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(f, "SecretKey(..)")
    }
}

fn mix(mut x: u64) -> u64 {
    // splitmix64 finaliser.
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn keystream_word(key: &SecretKey, seq: u64, counter: u64) -> u64 {
    let mut state = seq ^ 0xA5A5_A5A5_5A5A_5A5A;
    for chunk in key.0.chunks(8) {
        let mut word = [0u8; 8];
        word.copy_from_slice(chunk);
        state = mix(state ^ u64::from_be_bytes(word));
    }
    mix(state ^ counter.wrapping_mul(0xD6E8_FEB8_6659_FD93))
}

fn tag(key: &SecretKey, seq: u64, data: &[u8]) -> u64 {
    let mut acc = keystream_word(key, seq, u64::MAX);
    for (i, &b) in data.iter().enumerate() {
        acc = mix(acc ^ (u64::from(b) << (8 * (i % 8))) ^ (i as u64)); // sdoh-lint: allow(no-narrowing-cast, "usize to u64 never loses value on supported targets")
    }
    acc
}

/// Seals plaintext into a record: `ciphertext || 8-byte tag`.
pub fn seal(key: &SecretKey, seq: u64, plaintext: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(plaintext.len() + 8);
    for (i, &b) in plaintext.iter().enumerate() {
        let word = keystream_word(key, seq, (i / 8) as u64); // sdoh-lint: allow(no-narrowing-cast, "usize to u64 never loses value on supported targets")
        let ks_byte = word.to_be_bytes()[i % 8]; // sdoh-lint: allow(no-panic, "i % 8 indexes an 8-byte array")
        out.push(b ^ ks_byte);
    }
    let t = tag(key, seq, &out);
    out.extend_from_slice(&t.to_be_bytes());
    out
}

/// Opens a sealed record, verifying its tag.
///
/// # Errors
///
/// Returns [`DohError::ChannelAuthentication`] when the record is too short
/// or its tag does not verify (wrong key, tampering, wrong sequence number).
pub fn open(key: &SecretKey, seq: u64, record: &[u8]) -> DohResult<Vec<u8>> {
    if record.len() < 8 {
        return Err(DohError::ChannelAuthentication(
            "record shorter than its tag".into(),
        ));
    }
    let (ciphertext, tag_bytes) = record.split_at(record.len() - 8);
    let expected = tag(key, seq, ciphertext);
    let presented = u64::from_be_bytes(
        <[u8; 8]>::try_from(tag_bytes)
            .map_err(|_| DohError::ChannelAuthentication("record tag truncated".into()))?,
    );
    if expected != presented {
        return Err(DohError::ChannelAuthentication(
            "record tag verification failed".into(),
        ));
    }
    let mut out = Vec::with_capacity(ciphertext.len());
    for (i, &b) in ciphertext.iter().enumerate() {
        let word = keystream_word(key, seq, (i / 8) as u64); // sdoh-lint: allow(no-narrowing-cast, "usize to u64 never loses value on supported targets")
        let ks_byte = word.to_be_bytes()[i % 8]; // sdoh-lint: allow(no-panic, "i % 8 indexes an 8-byte array")
        out.push(b ^ ks_byte);
    }
    Ok(out)
}

/// Sequence number used for client-to-server records.
pub const SEQ_CLIENT: u64 = 0;
/// Sequence number used for server-to-client records.
pub const SEQ_SERVER: u64 = 1;

/// A secure envelope: the server name the client thinks it is talking to
/// ("SNI" + certificate pinning in one) plus one sealed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecureEnvelope {
    /// The server identity the record is keyed to.
    pub server_name: String,
    /// The sealed record.
    pub record: Vec<u8>,
}

impl SecureEnvelope {
    /// Serialises the envelope for transmission.
    pub fn encode(&self) -> Vec<u8> {
        let name = self.server_name.as_bytes();
        let mut out = Vec::with_capacity(3 + name.len() + self.record.len());
        out.push(0x01); // version
                        // Resolver names are bounded far below 64 KiB by the directory; a
                        // longer name would already violate the provisioning invariant.
        out.extend_from_slice(&(name.len() as u16).to_be_bytes()); // sdoh-lint: allow(no-narrowing-cast, "resolver names are bounded far below 64 KiB by the directory")
        out.extend_from_slice(name);
        out.extend_from_slice(&self.record);
        out
    }

    /// Parses an envelope.
    ///
    /// # Errors
    ///
    /// Returns [`DohError::Protocol`] for truncated or unknown-version
    /// envelopes.
    pub fn decode(data: &[u8]) -> DohResult<Self> {
        let Some(&[version, hi, lo]) = data.get(..3) else {
            return Err(DohError::Protocol("secure envelope too short".into()));
        };
        if version != 0x01 {
            return Err(DohError::Protocol("unknown secure envelope version".into()));
        }
        let name_len = usize::from(u16::from_be_bytes([hi, lo]));
        let name_bytes = data
            .get(3..3 + name_len)
            .ok_or_else(|| DohError::Protocol("secure envelope name truncated".into()))?;
        let server_name = String::from_utf8(name_bytes.to_vec())
            .map_err(|_| DohError::Protocol("server name is not utf-8".into()))?;
        Ok(SecureEnvelope {
            server_name,
            record: data.get(3 + name_len..).unwrap_or(&[]).to_vec(),
        })
    }
}

/// A pinned-key store: resolver name to channel key.
#[derive(Debug, Clone, Default)]
pub struct KeyStore {
    keys: HashMap<String, SecretKey>,
}

impl KeyStore {
    /// Creates an empty key store.
    pub fn new() -> Self {
        KeyStore::default()
    }

    /// Pins `key` for `server_name`.
    pub fn pin(&mut self, server_name: &str, key: SecretKey) {
        self.keys.insert(server_name.to_string(), key);
    }

    /// The pinned key for `server_name`, if any.
    pub fn key_for(&self, server_name: &str) -> Option<&SecretKey> {
        self.keys.get(server_name)
    }

    /// Number of pinned keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Returns `true` when no keys are pinned.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_roundtrip() {
        let key = SecretKey::derive(42, "dns.google");
        let plaintext = b"PRI * HTTP/2.0 and some dns bytes".to_vec();
        let record = seal(&key, SEQ_CLIENT, &plaintext);
        assert_ne!(&record[..plaintext.len()], plaintext.as_slice());
        let opened = open(&key, SEQ_CLIENT, &record).unwrap();
        assert_eq!(opened, plaintext);
    }

    #[test]
    fn wrong_key_fails() {
        let key = SecretKey::derive(42, "dns.google");
        let wrong = SecretKey::derive(42, "evil.example");
        let record = seal(&key, SEQ_CLIENT, b"secret");
        assert!(open(&wrong, SEQ_CLIENT, &record).is_err());
    }

    #[test]
    fn wrong_sequence_fails() {
        let key = SecretKey::derive(1, "dns.quad9.net");
        let record = seal(&key, SEQ_CLIENT, b"hello");
        assert!(open(&key, SEQ_SERVER, &record).is_err());
    }

    #[test]
    fn tampering_is_detected() {
        let key = SecretKey::derive(7, "cloudflare-dns.com");
        let mut record = seal(&key, SEQ_SERVER, b"response body");
        record[3] ^= 0x01;
        assert!(open(&key, SEQ_SERVER, &record).is_err());
        // Truncation detected too.
        assert!(open(&key, SEQ_SERVER, &record[..4]).is_err());
    }

    #[test]
    fn empty_plaintext_roundtrip() {
        let key = SecretKey::derive(3, "dns.google");
        let record = seal(&key, SEQ_CLIENT, b"");
        assert_eq!(record.len(), 8);
        assert_eq!(open(&key, SEQ_CLIENT, &record).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn key_derivation_is_deterministic_and_label_sensitive() {
        assert_eq!(
            SecretKey::derive(5, "dns.google").0,
            SecretKey::derive(5, "dns.google").0
        );
        assert_ne!(
            SecretKey::derive(5, "dns.google").0,
            SecretKey::derive(5, "dns.quad9.net").0
        );
        assert_ne!(
            SecretKey::derive(5, "dns.google").0,
            SecretKey::derive(6, "dns.google").0
        );
    }

    #[test]
    fn envelope_roundtrip() {
        let envelope = SecureEnvelope {
            server_name: "dns.google".to_string(),
            record: vec![1, 2, 3, 4],
        };
        let encoded = envelope.encode();
        assert_eq!(SecureEnvelope::decode(&encoded).unwrap(), envelope);
    }

    #[test]
    fn envelope_rejects_malformed_input() {
        assert!(SecureEnvelope::decode(&[]).is_err());
        assert!(SecureEnvelope::decode(&[0x02, 0, 0]).is_err());
        assert!(SecureEnvelope::decode(&[0x01, 0, 10, b'a']).is_err());
    }

    #[test]
    fn keystore_pins_and_looks_up() {
        let mut store = KeyStore::new();
        assert!(store.is_empty());
        store.pin("dns.google", SecretKey::derive(1, "dns.google"));
        store.pin("dns.quad9.net", SecretKey::derive(1, "dns.quad9.net"));
        assert_eq!(store.len(), 2);
        assert!(store.key_for("dns.google").is_some());
        assert!(store.key_for("unknown.example").is_none());
    }

    #[test]
    fn debug_does_not_leak_key_material() {
        let key = SecretKey::derive(9, "dns.google");
        assert_eq!(format!("{key:?}"), "SecretKey(..)");
    }
}
