//! DNS-over-HTTPS (RFC 8484) transport for the *Secure Consensus Generation
//! with Distributed DoH* reproduction.
//!
//! The crate builds the full DoH path from scratch:
//!
//! * [`http`] — minimal HTTP semantics (methods, status codes, headers),
//! * [`h2`] — HTTP/2 framing, a static-table HPACK codec and client/server
//!   connection state machines,
//! * [`secure`] — the authenticated channel layer standing in for TLS with
//!   per-resolver pinned keys (see the module docs for the explicit
//!   non-security disclaimer),
//! * [`DohClient`] / [`DohServerService`] — the RFC 8484 client and server,
//!   the latter wrapping any [`QueryHandler`](sdoh_dns_server::QueryHandler)
//!   such as a recursive resolver,
//! * [`ResolverDirectory`] — the simulated fleet of public DoH resolvers
//!   (dns.google, cloudflare-dns.com, dns.quad9.net, …) from the paper's
//!   Figure 1.
//!
//! # Example: one DoH query
//!
//! ```
//! use sdoh_dns_server::{Authority, Catalog, ClientExchanger, Zone};
//! use sdoh_dns_wire::RrType;
//! use sdoh_doh::{DohClient, DohServerService, ResolverDirectory};
//! use sdoh_netsim::{SimAddr, SimNet};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = SimNet::new(1);
//! let directory = ResolverDirectory::well_known(1);
//! let google = directory.by_name("dns.google").unwrap().clone();
//!
//! let mut zone = Zone::new("ntp.org".parse()?);
//! zone.add_address("pool.ntp.org".parse()?, "203.0.113.1".parse().unwrap());
//! let mut catalog = Catalog::new();
//! catalog.add_zone(zone);
//! net.register(google.addr, DohServerService::new(google.clone(), Authority::new(catalog)));
//!
//! let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 50000));
//! let response = DohClient::new(google)
//!     .query(&mut exchanger, &"pool.ntp.org".parse()?, RrType::A)?;
//! assert_eq!(response.answer_addresses().len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod client;
mod directory;
mod error;
pub mod h2;
pub mod http;
pub mod secure;
mod server;

pub use client::{
    DohClient, DohMethod, DohTransmit, PreparedDohQuery, DNS_MESSAGE_CONTENT_TYPE, DOH_PATH,
};
pub use directory::{ResolverDirectory, ResolverInfo};
pub use error::{DohError, DohResult};
pub use server::DohServerService;
