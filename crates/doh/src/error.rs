//! Error types for the DoH transport stack.

use std::error::Error;
use std::fmt;

use sdoh_dns_wire::WireError;
use sdoh_netsim::NetError;

use crate::h2::H2Error;

/// Errors surfaced by the DoH client and server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DohError {
    /// Transport failure (timeout, unreachable, partition).
    Network(NetError),
    /// HTTP/2 framing or protocol error.
    Http2(H2Error),
    /// DNS message encoding/decoding failure.
    Wire(WireError),
    /// The secure channel rejected the peer or the data (bad key, bad tag).
    ChannelAuthentication(String),
    /// The HTTP response had an unexpected status code.
    HttpStatus(u16),
    /// The HTTP exchange was well-formed but not a valid DoH exchange
    /// (wrong content type, missing `dns` parameter, bad base64).
    Protocol(String),
}

impl fmt::Display for DohError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DohError::Network(e) => write!(f, "network error: {e}"),
            DohError::Http2(e) => write!(f, "http/2 error: {e}"),
            DohError::Wire(e) => write!(f, "dns wire error: {e}"),
            DohError::ChannelAuthentication(msg) => {
                write!(f, "secure channel authentication failed: {msg}")
            }
            DohError::HttpStatus(code) => write!(f, "unexpected http status {code}"),
            DohError::Protocol(msg) => write!(f, "doh protocol error: {msg}"),
        }
    }
}

impl Error for DohError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DohError::Network(e) => Some(e),
            DohError::Http2(e) => Some(e),
            DohError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for DohError {
    fn from(e: NetError) -> Self {
        DohError::Network(e)
    }
}

impl From<H2Error> for DohError {
    fn from(e: H2Error) -> Self {
        DohError::Http2(e)
    }
}

impl From<WireError> for DohError {
    fn from(e: WireError) -> Self {
        DohError::Wire(e)
    }
}

/// Result alias for DoH operations.
pub type DohResult<T> = Result<T, DohError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let cases: Vec<DohError> = vec![
            DohError::Network(NetError::Timeout),
            DohError::Http2(H2Error::UnexpectedPreface),
            DohError::Wire(WireError::EmptyLabel),
            DohError::ChannelAuthentication("bad tag".into()),
            DohError::HttpStatus(415),
            DohError::Protocol("missing dns parameter".into()),
        ];
        for c in &cases {
            assert!(!c.to_string().is_empty());
        }
        assert!(cases[0].source().is_some());
        assert!(cases[3].source().is_none());
    }

    #[test]
    fn conversions() {
        let e: DohError = NetError::Timeout.into();
        assert!(matches!(e, DohError::Network(_)));
        let e: DohError = WireError::EmptyLabel.into();
        assert!(matches!(e, DohError::Wire(_)));
        let e: DohError = H2Error::UnexpectedPreface.into();
        assert!(matches!(e, DohError::Http2(_)));
    }
}
