//! HTTP/2 protocol errors.

use std::error::Error;
use std::fmt;

/// Errors raised by the HTTP/2 framing and connection layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum H2Error {
    /// The connection did not start with the client connection preface.
    UnexpectedPreface,
    /// A frame header or payload was truncated.
    Truncated,
    /// A frame declared a length larger than the allowed maximum.
    FrameTooLarge(usize),
    /// An unknown or unsupported frame type was received where it cannot be
    /// ignored.
    UnsupportedFrame(u8),
    /// A HPACK header block could not be decoded.
    Hpack(String),
    /// A HPACK indexed field referenced an index outside the static table.
    HpackIndex(u64),
    /// A frame violated stream or connection state rules.
    Protocol(String),
    /// The peer closed the connection with a GOAWAY carrying this error code.
    GoAway(u32),
}

impl fmt::Display for H2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            H2Error::UnexpectedPreface => write!(f, "missing or malformed connection preface"),
            H2Error::Truncated => write!(f, "truncated frame"),
            H2Error::FrameTooLarge(len) => write!(f, "frame of {len} octets exceeds maximum"),
            H2Error::UnsupportedFrame(t) => write!(f, "unsupported frame type {t}"),
            H2Error::Hpack(msg) => write!(f, "hpack decoding error: {msg}"),
            H2Error::HpackIndex(index) => {
                write!(
                    f,
                    "hpack decoding error: index {index} outside the static table"
                )
            }
            H2Error::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            H2Error::GoAway(code) => write!(f, "connection closed by peer (error code {code})"),
        }
    }
}

impl Error for H2Error {}

/// HTTP/2 error codes (RFC 7540 §7) used in RST_STREAM and GOAWAY frames.
pub mod error_code {
    /// Graceful shutdown.
    pub const NO_ERROR: u32 = 0x0;
    /// Protocol error detected.
    pub const PROTOCOL_ERROR: u32 = 0x1;
    /// Implementation fault.
    pub const INTERNAL_ERROR: u32 = 0x2;
    /// Stream not processed.
    pub const REFUSED_STREAM: u32 = 0x7;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        let cases = [
            H2Error::UnexpectedPreface,
            H2Error::Truncated,
            H2Error::FrameTooLarge(1 << 20),
            H2Error::UnsupportedFrame(0xFA),
            H2Error::Hpack("bad huffman padding".into()),
            H2Error::HpackIndex(62),
            H2Error::Protocol("headers after end of stream".into()),
            H2Error::GoAway(error_code::PROTOCOL_ERROR),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }
}
