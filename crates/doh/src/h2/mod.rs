//! A from-scratch HTTP/2 (RFC 7540) layer sized for DoH: framing, a static
//! HPACK codec and request/response connection state machines.

mod connection;
mod error;
mod frame;
pub mod hpack;

pub use connection::{ClientConnection, ServerConnection};
pub use error::{error_code, H2Error};
pub use frame::{flags, Frame, FrameType, CONNECTION_PREFACE, MAX_FRAME_SIZE};
