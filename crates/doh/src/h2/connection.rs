//! HTTP/2 connection state machines.
//!
//! Both ends are byte-level state machines: callers feed received bytes in
//! with `receive` and pull bytes to transmit out with `take_output`, which
//! makes the connections trivially portable onto the synchronous simulated
//! transport (and onto a real socket, if one ever existed here).
//!
//! Simplifications relative to a production stack, all documented: flow
//! control windows are parsed but never enforced (DoH messages are far below
//! the default 64 KiB window), CONTINUATION frames are not emitted (header
//! blocks fit in one frame), and priorities are ignored.

use std::collections::HashMap;

use bytes::BytesMut;

use crate::http::{Headers, Method, Request, Response, StatusCode};

use super::error::H2Error;
use super::frame::{Frame, CONNECTION_PREFACE};
use super::hpack;

/// SETTINGS identifiers this implementation announces.
mod settings_id {
    /// SETTINGS_MAX_CONCURRENT_STREAMS.
    pub const MAX_CONCURRENT_STREAMS: u16 = 0x3;
    /// SETTINGS_INITIAL_WINDOW_SIZE.
    pub const INITIAL_WINDOW_SIZE: u16 = 0x4;
}

#[derive(Debug, Default)]
struct PartialMessage {
    headers: Vec<(String, String)>,
    body: Vec<u8>,
    headers_complete: bool,
    ended: bool,
}

/// The client half of an HTTP/2 connection.
#[derive(Debug)]
pub struct ClientConnection {
    next_stream_id: u32,
    out: BytesMut,
    in_buf: Vec<u8>,
    streams: HashMap<u32, PartialMessage>,
    peer_settings_received: bool,
    goaway: Option<u32>,
}

impl Default for ClientConnection {
    fn default() -> Self {
        Self::new()
    }
}

impl ClientConnection {
    /// Creates a client connection; the preface and initial SETTINGS frame
    /// are queued for transmission immediately.
    pub fn new() -> Self {
        let mut out = BytesMut::new();
        out.extend_from_slice(CONNECTION_PREFACE);
        Frame::Settings {
            ack: false,
            params: vec![
                (settings_id::MAX_CONCURRENT_STREAMS, 100),
                (settings_id::INITIAL_WINDOW_SIZE, 65_535),
            ],
        }
        .encode(&mut out);
        ClientConnection {
            next_stream_id: 1,
            out,
            in_buf: Vec::new(),
            streams: HashMap::new(),
            peer_settings_received: false,
            goaway: None,
        }
    }

    /// Returns `true` once the server's SETTINGS frame has been received.
    pub fn is_established(&self) -> bool {
        self.peer_settings_received
    }

    /// Returns the GOAWAY error code if the server closed the connection.
    pub fn goaway(&self) -> Option<u32> {
        self.goaway
    }

    /// Queues a request and returns the stream id it was assigned.
    pub fn send_request(&mut self, request: &Request) -> u32 {
        let stream_id = self.next_stream_id;
        self.next_stream_id += 2;

        let mut header_list: Vec<(String, String)> = vec![
            (":method".into(), request.method.as_str().to_string()),
            (":scheme".into(), request.scheme.clone()),
            (":authority".into(), request.authority.clone()),
            (":path".into(), request.path.clone()),
        ];
        header_list.extend(
            request
                .headers
                .iter()
                .map(|(n, v)| (n.to_string(), v.to_string())),
        );
        let block = hpack::encode(&header_list);
        let has_body = !request.body.is_empty();
        Frame::Headers {
            stream_id,
            end_stream: !has_body,
            end_headers: true,
            block,
        }
        .encode(&mut self.out);
        if has_body {
            Frame::Data {
                stream_id,
                end_stream: true,
                data: request.body.clone(),
            }
            .encode(&mut self.out);
        }
        self.streams.insert(stream_id, PartialMessage::default());
        stream_id
    }

    /// Drains the bytes queued for transmission to the server.
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.out).to_vec()
    }

    /// Feeds bytes received from the server, returning every response that
    /// completed.
    ///
    /// # Errors
    ///
    /// Returns framing, HPACK and protocol errors.
    pub fn receive(&mut self, bytes: &[u8]) -> Result<Vec<(u32, Response)>, H2Error> {
        self.in_buf.extend_from_slice(bytes);
        let mut completed = Vec::new();
        loop {
            match Frame::decode(&self.in_buf)? {
                None => break,
                Some((frame, consumed)) => {
                    self.in_buf.drain(..consumed);
                    self.process_frame(frame, &mut completed)?;
                }
            }
        }
        Ok(completed)
    }

    fn process_frame(
        &mut self,
        frame: Frame,
        completed: &mut Vec<(u32, Response)>,
    ) -> Result<(), H2Error> {
        match frame {
            Frame::Settings { ack, .. } => {
                if !ack {
                    self.peer_settings_received = true;
                    Frame::Settings {
                        ack: true,
                        params: vec![],
                    }
                    .encode(&mut self.out);
                }
            }
            Frame::Ping { ack, data } => {
                if !ack {
                    Frame::Ping { ack: true, data }.encode(&mut self.out);
                }
            }
            Frame::Headers {
                stream_id,
                end_stream,
                end_headers,
                block,
            } => {
                if !end_headers {
                    return Err(H2Error::Protocol(
                        "continuation frames are not supported".into(),
                    ));
                }
                let stream = self.streams.entry(stream_id).or_default();
                stream.headers = hpack::decode(&block)?;
                stream.headers_complete = true;
                stream.ended = end_stream;
            }
            Frame::Data {
                stream_id,
                end_stream,
                data,
            } => {
                let stream = self.streams.entry(stream_id).or_default();
                stream.body.extend_from_slice(&data);
                stream.ended = stream.ended || end_stream;
            }
            Frame::WindowUpdate { .. } | Frame::Unknown { .. } => {}
            Frame::RstStream { stream_id, .. } => {
                self.streams.remove(&stream_id);
            }
            Frame::GoAway { error_code, .. } => {
                self.goaway = Some(error_code);
            }
        }

        let finished: Vec<u32> = self
            .streams
            .iter()
            .filter(|(_, s)| s.headers_complete && s.ended)
            .map(|(&id, _)| id)
            .collect();
        for id in finished {
            let stream = self.streams.remove(&id).expect("stream present"); // sdoh-lint: allow(no-panic, "id was just collected from the keys of self.streams")
            completed.push((id, response_from_parts(stream)?));
        }
        Ok(())
    }
}

/// The server half of an HTTP/2 connection.
#[derive(Debug)]
pub struct ServerConnection {
    preface_consumed: bool,
    out: BytesMut,
    in_buf: Vec<u8>,
    streams: HashMap<u32, PartialMessage>,
}

impl Default for ServerConnection {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerConnection {
    /// Creates a server connection; the server's SETTINGS frame is queued
    /// immediately.
    pub fn new() -> Self {
        let mut out = BytesMut::new();
        Frame::Settings {
            ack: false,
            params: vec![(settings_id::MAX_CONCURRENT_STREAMS, 128)],
        }
        .encode(&mut out);
        ServerConnection {
            preface_consumed: false,
            out,
            in_buf: Vec::new(),
            streams: HashMap::new(),
        }
    }

    /// Feeds bytes received from the client, returning every request that
    /// completed.
    ///
    /// # Errors
    ///
    /// Returns [`H2Error::UnexpectedPreface`] when the connection does not
    /// start with the HTTP/2 preface, plus framing and HPACK errors.
    pub fn receive(&mut self, bytes: &[u8]) -> Result<Vec<(u32, Request)>, H2Error> {
        self.in_buf.extend_from_slice(bytes);
        if !self.preface_consumed {
            if self.in_buf.len() < CONNECTION_PREFACE.len() {
                return Ok(Vec::new());
            }
            if self.in_buf.get(..CONNECTION_PREFACE.len()) != Some(CONNECTION_PREFACE) {
                return Err(H2Error::UnexpectedPreface);
            }
            self.in_buf.drain(..CONNECTION_PREFACE.len());
            self.preface_consumed = true;
        }

        let mut completed = Vec::new();
        loop {
            match Frame::decode(&self.in_buf)? {
                None => break,
                Some((frame, consumed)) => {
                    self.in_buf.drain(..consumed);
                    self.process_frame(frame, &mut completed)?;
                }
            }
        }
        Ok(completed)
    }

    /// Queues a response on the given stream.
    pub fn send_response(&mut self, stream_id: u32, response: &Response) {
        let mut header_list: Vec<(String, String)> =
            vec![(":status".into(), response.status.as_u16().to_string())];
        header_list.extend(
            response
                .headers
                .iter()
                .map(|(n, v)| (n.to_string(), v.to_string())),
        );
        let block = hpack::encode(&header_list);
        let has_body = !response.body.is_empty();
        Frame::Headers {
            stream_id,
            end_stream: !has_body,
            end_headers: true,
            block,
        }
        .encode(&mut self.out);
        if has_body {
            Frame::Data {
                stream_id,
                end_stream: true,
                data: response.body.clone(),
            }
            .encode(&mut self.out);
        }
    }

    /// Drains the bytes queued for transmission to the client.
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.out).to_vec()
    }

    fn process_frame(
        &mut self,
        frame: Frame,
        completed: &mut Vec<(u32, Request)>,
    ) -> Result<(), H2Error> {
        match frame {
            Frame::Settings { ack, .. } => {
                if !ack {
                    Frame::Settings {
                        ack: true,
                        params: vec![],
                    }
                    .encode(&mut self.out);
                }
            }
            Frame::Ping { ack, data } => {
                if !ack {
                    Frame::Ping { ack: true, data }.encode(&mut self.out);
                }
            }
            Frame::Headers {
                stream_id,
                end_stream,
                end_headers,
                block,
            } => {
                if !end_headers {
                    return Err(H2Error::Protocol(
                        "continuation frames are not supported".into(),
                    ));
                }
                let stream = self.streams.entry(stream_id).or_default();
                stream.headers = hpack::decode(&block)?;
                stream.headers_complete = true;
                stream.ended = end_stream;
            }
            Frame::Data {
                stream_id,
                end_stream,
                data,
            } => {
                let stream = self.streams.entry(stream_id).or_default();
                stream.body.extend_from_slice(&data);
                stream.ended = stream.ended || end_stream;
            }
            Frame::WindowUpdate { .. } | Frame::Unknown { .. } => {}
            Frame::RstStream { stream_id, .. } => {
                self.streams.remove(&stream_id);
            }
            Frame::GoAway { .. } => {}
        }

        let finished: Vec<u32> = self
            .streams
            .iter()
            .filter(|(_, s)| s.headers_complete && s.ended)
            .map(|(&id, _)| id)
            .collect();
        for id in finished {
            let stream = self.streams.remove(&id).expect("stream present"); // sdoh-lint: allow(no-panic, "id was just collected from the keys of self.streams")
            completed.push((id, request_from_parts(stream)?));
        }
        Ok(())
    }
}

fn response_from_parts(parts: PartialMessage) -> Result<Response, H2Error> {
    let mut status = None;
    let mut headers = Headers::new();
    for (name, value) in &parts.headers {
        if name == ":status" {
            status = value.parse::<u16>().ok();
        } else if !name.starts_with(':') {
            headers.append(name, value);
        }
    }
    let status = status.ok_or_else(|| H2Error::Protocol("response without :status".into()))?;
    Ok(Response {
        status: StatusCode::from(status),
        headers,
        body: parts.body,
    })
}

fn request_from_parts(parts: PartialMessage) -> Result<Request, H2Error> {
    let mut method = None;
    let mut path = None;
    let mut authority = String::new();
    let mut scheme = "https".to_string();
    let mut headers = Headers::new();
    for (name, value) in &parts.headers {
        match name.as_str() {
            ":method" => method = Method::from_token(value),
            ":path" => path = Some(value.clone()),
            ":authority" => authority = value.clone(),
            ":scheme" => scheme = value.clone(),
            _ if !name.starts_with(':') => headers.append(name, value),
            _ => {}
        }
    }
    Ok(Request {
        method: method.ok_or_else(|| H2Error::Protocol("request without :method".into()))?,
        path: path.ok_or_else(|| H2Error::Protocol("request without :path".into()))?,
        authority,
        scheme,
        headers,
        body: parts.body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exchange(request: Request, respond: impl Fn(&Request) -> Response) -> Response {
        let mut client = ClientConnection::new();
        let mut server = ServerConnection::new();

        let stream_id = client.send_request(&request);
        let client_bytes = client.take_output();

        let requests = server.receive(&client_bytes).unwrap();
        assert_eq!(requests.len(), 1);
        let (sid, received_request) = &requests[0];
        assert_eq!(*sid, stream_id);
        let response = respond(received_request);
        server.send_response(*sid, &response);
        let server_bytes = server.take_output();

        let responses = client.receive(&server_bytes).unwrap();
        assert!(client.is_established());
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].0, stream_id);
        responses[0].1.clone()
    }

    #[test]
    fn get_request_roundtrip() {
        let request = Request::get("dns.google", "/dns-query?dns=AAAB")
            .with_header("accept", "application/dns-message");
        let response = exchange(request, |req| {
            assert_eq!(req.method, Method::Get);
            assert_eq!(req.authority, "dns.google");
            assert_eq!(req.query_param("dns"), Some("AAAB"));
            assert_eq!(req.headers.get("accept"), Some("application/dns-message"));
            Response::ok("application/dns-message", vec![1, 2, 3])
        });
        assert_eq!(response.status, StatusCode::OK);
        assert_eq!(response.body, vec![1, 2, 3]);
        assert_eq!(
            response.headers.get("content-type"),
            Some("application/dns-message")
        );
    }

    #[test]
    fn post_request_carries_body() {
        let request = Request::post("cloudflare-dns.com", "/dns-query", vec![9u8; 40])
            .with_header("content-type", "application/dns-message");
        let response = exchange(request, |req| {
            assert_eq!(req.method, Method::Post);
            assert_eq!(req.body.len(), 40);
            Response::ok("application/dns-message", req.body.clone())
        });
        assert_eq!(response.body.len(), 40);
    }

    #[test]
    fn multiple_streams_on_one_connection() {
        let mut client = ClientConnection::new();
        let mut server = ServerConnection::new();

        let r1 = client.send_request(&Request::get("dns.google", "/dns-query?dns=X"));
        let r2 = client.send_request(&Request::get("dns.google", "/dns-query?dns=Y"));
        assert_ne!(r1, r2);
        assert_eq!(r1 % 2, 1, "client streams are odd-numbered");

        let requests = server.receive(&client.take_output()).unwrap();
        assert_eq!(requests.len(), 2);
        for (sid, req) in &requests {
            let marker = req.query_param("dns").unwrap().as_bytes().to_vec();
            server.send_response(*sid, &Response::ok("application/dns-message", marker));
        }
        let responses = client.receive(&server.take_output()).unwrap();
        assert_eq!(responses.len(), 2);
        let bodies: Vec<Vec<u8>> = responses.iter().map(|(_, r)| r.body.clone()).collect();
        assert!(bodies.contains(&b"X".to_vec()));
        assert!(bodies.contains(&b"Y".to_vec()));
    }

    #[test]
    fn server_rejects_missing_preface() {
        let mut server = ServerConnection::new();
        let mut bogus = BytesMut::new();
        Frame::Settings {
            ack: false,
            params: vec![],
        }
        .encode(&mut bogus);
        // 24+ bytes that are not the preface.
        let mut noise = vec![0u8; 30];
        noise[..bogus.len().min(30)].copy_from_slice(&bogus[..bogus.len().min(30)]);
        assert!(matches!(
            server.receive(&noise),
            Err(H2Error::UnexpectedPreface)
        ));
    }

    #[test]
    fn partial_delivery_is_reassembled() {
        let mut client = ClientConnection::new();
        let mut server = ServerConnection::new();
        client.send_request(&Request::get("dns.quad9.net", "/dns-query?dns=Q"));
        let bytes = client.take_output();

        // Deliver the client bytes one octet at a time.
        let mut requests = Vec::new();
        for b in &bytes {
            requests.extend(server.receive(std::slice::from_ref(b)).unwrap());
        }
        assert_eq!(requests.len(), 1);
    }

    #[test]
    fn ping_is_acknowledged() {
        let mut client = ClientConnection::new();
        let mut server = ServerConnection::new();
        server.receive(&client.take_output()).unwrap();

        let mut ping = BytesMut::new();
        Frame::Ping {
            ack: false,
            data: [7u8; 8],
        }
        .encode(&mut ping);
        client.receive(&ping).unwrap();
        let out = client.take_output();
        let (frame, _) = Frame::decode(&out).unwrap().unwrap();
        match frame {
            Frame::Ping { ack, data } => {
                assert!(ack);
                assert_eq!(data, [7u8; 8]);
            }
            other => panic!("expected ping ack, got {other:?}"),
        }
    }

    #[test]
    fn goaway_is_recorded() {
        let mut client = ClientConnection::new();
        let mut goaway = BytesMut::new();
        Frame::GoAway {
            last_stream_id: 0,
            error_code: 2,
        }
        .encode(&mut goaway);
        client.receive(&goaway).unwrap();
        assert_eq!(client.goaway(), Some(2));
    }
}
