//! HTTP/2 frame encoding and decoding (RFC 7540 §4 and §6).

use bytes::{BufMut, BytesMut};

use super::error::H2Error;

/// The client connection preface every HTTP/2 connection starts with.
pub const CONNECTION_PREFACE: &[u8] = b"PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n";

/// Maximum frame payload this implementation accepts (the RFC 7540 default).
pub const MAX_FRAME_SIZE: usize = 16_384;

/// Frame type codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// DATA frame.
    Data,
    /// HEADERS frame.
    Headers,
    /// RST_STREAM frame.
    RstStream,
    /// SETTINGS frame.
    Settings,
    /// PING frame.
    Ping,
    /// GOAWAY frame.
    GoAway,
    /// WINDOW_UPDATE frame.
    WindowUpdate,
    /// A frame type this implementation does not interpret.
    Unknown(u8),
}

impl FrameType {
    /// The numeric type code.
    pub fn code(self) -> u8 {
        match self {
            FrameType::Data => 0x0,
            FrameType::Headers => 0x1,
            FrameType::RstStream => 0x3,
            FrameType::Settings => 0x4,
            FrameType::Ping => 0x6,
            FrameType::GoAway => 0x7,
            FrameType::WindowUpdate => 0x8,
            FrameType::Unknown(c) => c,
        }
    }
}

impl From<u8> for FrameType {
    fn from(code: u8) -> Self {
        match code {
            0x0 => FrameType::Data,
            0x1 => FrameType::Headers,
            0x3 => FrameType::RstStream,
            0x4 => FrameType::Settings,
            0x6 => FrameType::Ping,
            0x7 => FrameType::GoAway,
            0x8 => FrameType::WindowUpdate,
            other => FrameType::Unknown(other),
        }
    }
}

/// Frame flag bits.
pub mod flags {
    /// END_STREAM flag on DATA and HEADERS frames.
    pub const END_STREAM: u8 = 0x1;
    /// ACK flag on SETTINGS and PING frames.
    pub const ACK: u8 = 0x1;
    /// END_HEADERS flag on HEADERS frames.
    pub const END_HEADERS: u8 = 0x4;
}

/// A decoded HTTP/2 frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A DATA frame carrying request or response body bytes.
    Data {
        /// Stream the data belongs to.
        stream_id: u32,
        /// Whether this frame ends the stream.
        end_stream: bool,
        /// Payload bytes.
        data: Vec<u8>,
    },
    /// A HEADERS frame carrying an HPACK-encoded header block.
    Headers {
        /// Stream the headers belong to.
        stream_id: u32,
        /// Whether this frame ends the stream.
        end_stream: bool,
        /// Whether the header block is complete (no CONTINUATION follows).
        end_headers: bool,
        /// HPACK-encoded header block fragment.
        block: Vec<u8>,
    },
    /// A SETTINGS frame.
    Settings {
        /// Whether this is an acknowledgement.
        ack: bool,
        /// `(identifier, value)` pairs.
        params: Vec<(u16, u32)>,
    },
    /// A PING frame.
    Ping {
        /// Whether this is an acknowledgement.
        ack: bool,
        /// Opaque payload.
        data: [u8; 8],
    },
    /// A GOAWAY frame.
    GoAway {
        /// Highest stream id the sender processed.
        last_stream_id: u32,
        /// Error code.
        error_code: u32,
    },
    /// A WINDOW_UPDATE frame.
    WindowUpdate {
        /// Stream the update applies to (0 for the connection).
        stream_id: u32,
        /// Flow-control window increment.
        increment: u32,
    },
    /// A RST_STREAM frame.
    RstStream {
        /// Stream being reset.
        stream_id: u32,
        /// Error code.
        error_code: u32,
    },
    /// A frame type we do not interpret but must skip over.
    Unknown {
        /// Frame type code.
        frame_type: u8,
        /// Stream identifier.
        stream_id: u32,
        /// Raw payload.
        payload: Vec<u8>,
    },
}

impl Frame {
    /// Encodes the frame with its 9-octet header.
    pub fn encode(&self, out: &mut BytesMut) {
        match self {
            Frame::Data {
                stream_id,
                end_stream,
                data,
            } => {
                let flag = if *end_stream { flags::END_STREAM } else { 0 };
                encode_header(out, data.len(), FrameType::Data.code(), flag, *stream_id);
                out.put_slice(data);
            }
            Frame::Headers {
                stream_id,
                end_stream,
                end_headers,
                block,
            } => {
                let mut flag = 0;
                if *end_stream {
                    flag |= flags::END_STREAM;
                }
                if *end_headers {
                    flag |= flags::END_HEADERS;
                }
                encode_header(
                    out,
                    block.len(),
                    FrameType::Headers.code(),
                    flag,
                    *stream_id,
                );
                out.put_slice(block);
            }
            Frame::Settings { ack, params } => {
                let flag = if *ack { flags::ACK } else { 0 };
                encode_header(out, params.len() * 6, FrameType::Settings.code(), flag, 0);
                for (id, value) in params {
                    out.put_u16(*id);
                    out.put_u32(*value);
                }
            }
            Frame::Ping { ack, data } => {
                let flag = if *ack { flags::ACK } else { 0 };
                encode_header(out, 8, FrameType::Ping.code(), flag, 0);
                out.put_slice(data);
            }
            Frame::GoAway {
                last_stream_id,
                error_code,
            } => {
                encode_header(out, 8, FrameType::GoAway.code(), 0, 0);
                out.put_u32(*last_stream_id & 0x7FFF_FFFF);
                out.put_u32(*error_code);
            }
            Frame::WindowUpdate {
                stream_id,
                increment,
            } => {
                encode_header(out, 4, FrameType::WindowUpdate.code(), 0, *stream_id);
                out.put_u32(*increment & 0x7FFF_FFFF);
            }
            Frame::RstStream {
                stream_id,
                error_code,
            } => {
                encode_header(out, 4, FrameType::RstStream.code(), 0, *stream_id);
                out.put_u32(*error_code);
            }
            Frame::Unknown {
                frame_type,
                stream_id,
                payload,
            } => {
                encode_header(out, payload.len(), *frame_type, 0, *stream_id);
                out.put_slice(payload);
            }
        }
    }

    /// Decodes one frame from the front of `input`, returning the frame and
    /// the number of bytes consumed, or `Ok(None)` when more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns [`H2Error::FrameTooLarge`] for oversized frames and
    /// [`H2Error::Truncated`]/[`H2Error::Protocol`] for malformed ones.
    // sdoh-lint: allow(no-panic, "every index is guarded by the length checks at the top of its arm")
    pub fn decode(input: &[u8]) -> Result<Option<(Frame, usize)>, H2Error> {
        if input.len() < 9 {
            return Ok(None);
        }
        let length =
            (usize::from(input[0]) << 16) | (usize::from(input[1]) << 8) | usize::from(input[2]);
        if length > MAX_FRAME_SIZE {
            return Err(H2Error::FrameTooLarge(length));
        }
        if input.len() < 9 + length {
            return Ok(None);
        }
        let frame_type = FrameType::from(input[3]);
        let frame_flags = input[4];
        let stream_id = u32::from_be_bytes([input[5], input[6], input[7], input[8]]) & 0x7FFF_FFFF;
        let payload = &input[9..9 + length];
        let consumed = 9 + length;

        let frame = match frame_type {
            FrameType::Data => Frame::Data {
                stream_id,
                end_stream: frame_flags & flags::END_STREAM != 0,
                data: payload.to_vec(),
            },
            FrameType::Headers => Frame::Headers {
                stream_id,
                end_stream: frame_flags & flags::END_STREAM != 0,
                end_headers: frame_flags & flags::END_HEADERS != 0,
                block: payload.to_vec(),
            },
            FrameType::Settings => {
                if !payload.len().is_multiple_of(6) {
                    return Err(H2Error::Protocol(
                        "settings length not a multiple of 6".into(),
                    ));
                }
                let params = payload
                    .chunks_exact(6)
                    .map(|chunk| {
                        (
                            u16::from_be_bytes([chunk[0], chunk[1]]),
                            u32::from_be_bytes([chunk[2], chunk[3], chunk[4], chunk[5]]),
                        )
                    })
                    .collect();
                Frame::Settings {
                    ack: frame_flags & flags::ACK != 0,
                    params,
                }
            }
            FrameType::Ping => {
                if payload.len() != 8 {
                    return Err(H2Error::Protocol("ping payload must be 8 octets".into()));
                }
                let mut data = [0u8; 8];
                data.copy_from_slice(payload);
                Frame::Ping {
                    ack: frame_flags & flags::ACK != 0,
                    data,
                }
            }
            FrameType::GoAway => {
                if payload.len() < 8 {
                    return Err(H2Error::Truncated);
                }
                Frame::GoAway {
                    last_stream_id: u32::from_be_bytes([
                        payload[0], payload[1], payload[2], payload[3],
                    ]) & 0x7FFF_FFFF,
                    error_code: u32::from_be_bytes([
                        payload[4], payload[5], payload[6], payload[7],
                    ]),
                }
            }
            FrameType::WindowUpdate => {
                if payload.len() != 4 {
                    return Err(H2Error::Protocol(
                        "window update payload must be 4 octets".into(),
                    ));
                }
                Frame::WindowUpdate {
                    stream_id,
                    increment: u32::from_be_bytes([payload[0], payload[1], payload[2], payload[3]])
                        & 0x7FFF_FFFF,
                }
            }
            FrameType::RstStream => {
                if payload.len() != 4 {
                    return Err(H2Error::Protocol(
                        "rst stream payload must be 4 octets".into(),
                    ));
                }
                Frame::RstStream {
                    stream_id,
                    error_code: u32::from_be_bytes([
                        payload[0], payload[1], payload[2], payload[3],
                    ]),
                }
            }
            FrameType::Unknown(code) => Frame::Unknown {
                frame_type: code,
                stream_id,
                payload: payload.to_vec(),
            },
        };
        Ok(Some((frame, consumed)))
    }
}

// sdoh-lint: allow(no-narrowing-cast, "each byte is masked to 8 bits before the cast")
fn encode_header(
    out: &mut BytesMut,
    length: usize,
    frame_type: u8,
    frame_flags: u8,
    stream_id: u32,
) {
    out.put_u8(((length >> 16) & 0xFF) as u8);
    out.put_u8(((length >> 8) & 0xFF) as u8);
    out.put_u8((length & 0xFF) as u8);
    out.put_u8(frame_type);
    out.put_u8(frame_flags);
    out.put_u32(stream_id & 0x7FFF_FFFF);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) -> Frame {
        let mut buf = BytesMut::new();
        frame.encode(&mut buf);
        let (decoded, consumed) = Frame::decode(&buf).unwrap().unwrap();
        assert_eq!(consumed, buf.len());
        decoded
    }

    #[test]
    fn data_frame_roundtrip() {
        let frame = Frame::Data {
            stream_id: 1,
            end_stream: true,
            data: b"dns message bytes".to_vec(),
        };
        assert_eq!(roundtrip(frame.clone()), frame);
    }

    #[test]
    fn headers_frame_roundtrip() {
        let frame = Frame::Headers {
            stream_id: 3,
            end_stream: false,
            end_headers: true,
            block: vec![0x82, 0x86],
        };
        assert_eq!(roundtrip(frame.clone()), frame);
    }

    #[test]
    fn settings_ping_goaway_window_rst_roundtrip() {
        let frames = vec![
            Frame::Settings {
                ack: false,
                params: vec![(0x3, 100), (0x4, 65_535)],
            },
            Frame::Settings {
                ack: true,
                params: vec![],
            },
            Frame::Ping {
                ack: false,
                data: [1, 2, 3, 4, 5, 6, 7, 8],
            },
            Frame::GoAway {
                last_stream_id: 5,
                error_code: 0,
            },
            Frame::WindowUpdate {
                stream_id: 0,
                increment: 1_000_000,
            },
            Frame::RstStream {
                stream_id: 7,
                error_code: 0x7,
            },
            Frame::Unknown {
                frame_type: 0xFA,
                stream_id: 9,
                payload: vec![1, 2, 3],
            },
        ];
        for frame in frames {
            assert_eq!(roundtrip(frame.clone()), frame);
        }
    }

    #[test]
    fn partial_input_needs_more_bytes() {
        let frame = Frame::Data {
            stream_id: 1,
            end_stream: false,
            data: vec![0u8; 64],
        };
        let mut buf = BytesMut::new();
        frame.encode(&mut buf);
        assert!(Frame::decode(&buf[..5]).unwrap().is_none());
        assert!(Frame::decode(&buf[..20]).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_rejected() {
        // Header declaring a 1 MiB payload.
        let header = [0x10, 0x00, 0x00, 0x0, 0x0, 0, 0, 0, 1];
        assert!(matches!(
            Frame::decode(&header),
            Err(H2Error::FrameTooLarge(_))
        ));
    }

    #[test]
    fn malformed_settings_rejected() {
        let mut buf = BytesMut::new();
        encode_header(&mut buf, 5, FrameType::Settings.code(), 0, 0);
        buf.put_slice(&[0u8; 5]);
        assert!(matches!(Frame::decode(&buf), Err(H2Error::Protocol(_))));
    }

    #[test]
    fn malformed_ping_rejected() {
        let mut buf = BytesMut::new();
        encode_header(&mut buf, 4, FrameType::Ping.code(), 0, 0);
        buf.put_slice(&[0u8; 4]);
        assert!(Frame::decode(&buf).is_err());
    }

    #[test]
    fn multiple_frames_decode_sequentially() {
        let mut buf = BytesMut::new();
        Frame::Settings {
            ack: false,
            params: vec![],
        }
        .encode(&mut buf);
        Frame::Data {
            stream_id: 1,
            end_stream: true,
            data: b"x".to_vec(),
        }
        .encode(&mut buf);

        let (first, used) = Frame::decode(&buf).unwrap().unwrap();
        assert!(matches!(first, Frame::Settings { .. }));
        let (second, used2) = Frame::decode(&buf[used..]).unwrap().unwrap();
        assert!(matches!(second, Frame::Data { .. }));
        assert_eq!(used + used2, buf.len());
    }
}
