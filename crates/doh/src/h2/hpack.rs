//! A deliberately small HPACK (RFC 7541) implementation.
//!
//! The encoder emits only two representations:
//!
//! * indexed header fields referencing the static table (for exact matches
//!   such as `:method: GET`), and
//! * literal header fields *without* indexing, with plain (non-Huffman)
//!   string encoding.
//!
//! The decoder accepts indexed fields that reference the static table and
//! all three literal forms, as long as strings are not Huffman-coded. The
//! dynamic table is never populated (its declared size is zero), which keeps
//! both ends stateless; this is a documented simplification relative to a
//! production HPACK codec and is sufficient because both peers in the
//! simulation use this same codec.

use super::error::H2Error;

/// The RFC 7541 Appendix A static table (index 1..=61).
const STATIC_TABLE: &[(&str, &str)] = &[
    (":authority", ""),
    (":method", "GET"),
    (":method", "POST"),
    (":path", "/"),
    (":path", "/index.html"),
    (":scheme", "http"),
    (":scheme", "https"),
    (":status", "200"),
    (":status", "204"),
    (":status", "206"),
    (":status", "304"),
    (":status", "400"),
    (":status", "404"),
    (":status", "500"),
    ("accept-charset", ""),
    ("accept-encoding", "gzip, deflate"),
    ("accept-language", ""),
    ("accept-ranges", ""),
    ("accept", ""),
    ("access-control-allow-origin", ""),
    ("age", ""),
    ("allow", ""),
    ("authorization", ""),
    ("cache-control", ""),
    ("content-disposition", ""),
    ("content-encoding", ""),
    ("content-language", ""),
    ("content-length", ""),
    ("content-location", ""),
    ("content-range", ""),
    ("content-type", ""),
    ("cookie", ""),
    ("date", ""),
    ("etag", ""),
    ("expect", ""),
    ("expires", ""),
    ("from", ""),
    ("host", ""),
    ("if-match", ""),
    ("if-modified-since", ""),
    ("if-none-match", ""),
    ("if-range", ""),
    ("if-unmodified-since", ""),
    ("last-modified", ""),
    ("link", ""),
    ("location", ""),
    ("max-forwards", ""),
    ("proxy-authenticate", ""),
    ("proxy-authorization", ""),
    ("range", ""),
    ("referer", ""),
    ("refresh", ""),
    ("retry-after", ""),
    ("server", ""),
    ("set-cookie", ""),
    ("strict-transport-security", ""),
    ("transfer-encoding", ""),
    ("user-agent", ""),
    ("vary", ""),
    ("via", ""),
    ("www-authenticate", ""),
];

/// Encodes a header list into an HPACK header block.
pub fn encode(headers: &[(String, String)]) -> Vec<u8> {
    let mut out = Vec::new();
    for (name, value) in headers {
        if let Some(index) = static_index_exact(name, value) {
            // Indexed header field: 1xxxxxxx
            encode_integer(&mut out, index as u64, 7, 0x80); // sdoh-lint: allow(no-narrowing-cast, "usize to u64 never loses value on supported targets")
            continue;
        }
        // Literal header field without indexing — new name: 0000 0000
        out.push(0x00);
        encode_string(&mut out, name.as_bytes());
        encode_string(&mut out, value.as_bytes());
    }
    out
}

/// Decodes an HPACK header block into a header list.
///
/// # Errors
///
/// Returns [`H2Error::Hpack`] for Huffman-coded strings, dynamic-table
/// references, size updates that are not zero, or truncated input.
pub fn decode(mut block: &[u8]) -> Result<Vec<(String, String)>, H2Error> {
    let mut headers = Vec::new();
    while let Some(&first) = block.first() {
        if first & 0x80 != 0 {
            // Indexed header field.
            let (index, rest) = decode_integer(block, 7)?;
            block = rest;
            let (name, value) = static_entry(index)?;
            headers.push((name.to_string(), value.to_string()));
        } else if first & 0xE0 == 0x20 {
            // Dynamic table size update; only size 0 is allowed here.
            let (size, rest) = decode_integer(block, 5)?;
            if size != 0 {
                return Err(H2Error::Hpack("dynamic table not supported".into()));
            }
            block = rest;
        } else {
            // Literal header field (with incremental indexing 0x40, without
            // indexing 0x00, never indexed 0x10). All are treated the same
            // because the dynamic table is unused.
            let prefix = if first & 0x40 != 0 { 6 } else { 4 };
            let (name_index, rest) = decode_integer(block, prefix)?;
            block = rest;
            let name = if name_index == 0 {
                let (name, rest) = decode_string(block)?;
                block = rest;
                name
            } else {
                let (name, _) = static_entry(name_index)?;
                name.to_string()
            };
            let (value, rest) = decode_string(block)?;
            block = rest;
            headers.push((name, value));
        }
    }
    Ok(headers)
}

fn static_index_exact(name: &str, value: &str) -> Option<usize> {
    STATIC_TABLE
        .iter()
        .position(|(n, v)| *n == name && *v == value)
        .map(|i| i + 1)
}

fn static_entry(index: u64) -> Result<(&'static str, &'static str), H2Error> {
    usize::try_from(index)
        .ok()
        .and_then(|i| i.checked_sub(1))
        .and_then(|i| STATIC_TABLE.get(i))
        .copied()
        .ok_or(H2Error::HpackIndex(index))
}

// sdoh-lint: allow(no-narrowing-cast, "each cast operand is reduced below 256 by the prefix mask or the modulo")
fn encode_integer(out: &mut Vec<u8>, mut value: u64, prefix_bits: u8, pattern: u8) {
    let max_prefix = (1u64 << prefix_bits) - 1;
    if value < max_prefix {
        out.push(pattern | value as u8);
        return;
    }
    out.push(pattern | max_prefix as u8);
    value -= max_prefix;
    while value >= 128 {
        out.push((value % 128 + 128) as u8);
        value /= 128;
    }
    out.push(value as u8);
}

fn decode_integer(input: &[u8], prefix_bits: u8) -> Result<(u64, &[u8]), H2Error> {
    let (&first, mut rest) = input
        .split_first()
        .ok_or_else(|| H2Error::Hpack("truncated integer".into()))?;
    let max_prefix = (1u64 << prefix_bits) - 1;
    let mut value = u64::from(first) & max_prefix;
    if value < max_prefix {
        return Ok((value, rest));
    }
    let mut shift = 0u32;
    loop {
        let (&byte, tail) = rest
            .split_first()
            .ok_or_else(|| H2Error::Hpack("truncated integer continuation".into()))?;
        rest = tail;
        value += u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok((value, rest));
        }
        shift += 7;
        if shift > 42 {
            return Err(H2Error::Hpack("integer too large".into()));
        }
    }
}

fn encode_string(out: &mut Vec<u8>, data: &[u8]) {
    encode_integer(out, data.len() as u64, 7, 0x00); // sdoh-lint: allow(no-narrowing-cast, "usize to u64 never loses value on supported targets")
    out.extend_from_slice(data);
}

fn decode_string(input: &[u8]) -> Result<(String, &[u8]), H2Error> {
    let first = input
        .first()
        .ok_or_else(|| H2Error::Hpack("truncated string".into()))?;
    if first & 0x80 != 0 {
        return Err(H2Error::Hpack("huffman coding not supported".into()));
    }
    let (len, rest) = decode_integer(input, 7)?;
    let len =
        usize::try_from(len).map_err(|_| H2Error::Hpack("string length overflows usize".into()))?;
    let payload = rest
        .get(..len)
        .ok_or_else(|| H2Error::Hpack("truncated string payload".into()))?;
    let text = String::from_utf8(payload.to_vec())
        .map_err(|_| H2Error::Hpack("header string is not valid utf-8".into()))?;
    Ok((text, rest.get(len..).unwrap_or(&[])))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(items: &[(&str, &str)]) -> Vec<(String, String)> {
        items
            .iter()
            .map(|(n, v)| (n.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn roundtrip_typical_doh_request_headers() {
        let headers = pairs(&[
            (":method", "GET"),
            (":scheme", "https"),
            (":authority", "dns.google"),
            (":path", "/dns-query?dns=AAABAA"),
            ("accept", "application/dns-message"),
        ]);
        let block = encode(&headers);
        assert_eq!(decode(&block).unwrap(), headers);
    }

    #[test]
    fn roundtrip_typical_response_headers() {
        let headers = pairs(&[
            (":status", "200"),
            ("content-type", "application/dns-message"),
            ("content-length", "61"),
            ("cache-control", "max-age=300"),
        ]);
        let block = encode(&headers);
        assert_eq!(decode(&block).unwrap(), headers);
    }

    #[test]
    fn exact_static_matches_are_single_bytes() {
        let headers = pairs(&[(":method", "GET"), (":scheme", "https"), (":status", "200")]);
        let block = encode(&headers);
        assert_eq!(block.len(), 3, "one indexed byte per field");
    }

    #[test]
    fn integer_encoding_edge_cases() {
        let mut out = Vec::new();
        encode_integer(&mut out, 10, 5, 0x00);
        assert_eq!(out, vec![10]);
        out.clear();
        // RFC 7541 C.1.2: 1337 with 5-bit prefix.
        encode_integer(&mut out, 1337, 5, 0x00);
        assert_eq!(out, vec![31, 154, 10]);
        let (value, rest) = decode_integer(&out, 5).unwrap();
        assert_eq!(value, 1337);
        assert!(rest.is_empty());
    }

    #[test]
    fn decoder_accepts_literal_with_incremental_indexing() {
        // 0x40 prefix, new name "x-test", value "1".
        let mut block = vec![0x40];
        encode_string(&mut block, b"x-test");
        encode_string(&mut block, b"1");
        let headers = decode(&block).unwrap();
        assert_eq!(headers, pairs(&[("x-test", "1")]));
    }

    #[test]
    fn decoder_accepts_literal_with_static_name_reference() {
        // Literal without indexing, name index 31 (content-type).
        let mut block = Vec::new();
        encode_integer(&mut block, 31, 4, 0x00);
        encode_string(&mut block, b"application/dns-message");
        let headers = decode(&block).unwrap();
        assert_eq!(headers[0].0, "content-type");
        assert_eq!(headers[0].1, "application/dns-message");
    }

    #[test]
    fn decoder_rejects_huffman_and_bad_indexes() {
        // String with the Huffman bit set.
        let block = [0x00, 0x81, 0xFF, 0x01, 0x61];
        assert!(decode(&block).is_err());
        // Indexed field pointing beyond the static table.
        let mut block = Vec::new();
        encode_integer(&mut block, 62, 7, 0x80);
        assert!(decode(&block).is_err());
        // Index zero is invalid.
        assert!(decode(&[0x80]).is_err());
    }

    #[test]
    fn decoder_rejects_truncated_input() {
        let headers = pairs(&[("accept", "application/dns-message")]);
        let block = encode(&headers);
        assert!(decode(&block[..block.len() - 3]).is_err());
    }

    #[test]
    fn dynamic_table_size_update_of_zero_is_tolerated() {
        let mut block = vec![0x20];
        block.extend(encode(&pairs(&[(":status", "200")])));
        assert_eq!(decode(&block).unwrap(), pairs(&[(":status", "200")]));
        // Non-zero size update is rejected.
        let block = [0x3F, 0xE1, 0x1F];
        assert!(decode(&block).is_err());
    }
}
