//! HTTP status codes used by the DoH server.

use std::fmt;

/// An HTTP status code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK.
    pub const OK: StatusCode = StatusCode(200);
    /// 400 Bad Request.
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 404 Not Found.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 405 Method Not Allowed.
    pub const METHOD_NOT_ALLOWED: StatusCode = StatusCode(405);
    /// 413 Payload Too Large.
    pub const PAYLOAD_TOO_LARGE: StatusCode = StatusCode(413);
    /// 415 Unsupported Media Type.
    pub const UNSUPPORTED_MEDIA_TYPE: StatusCode = StatusCode(415);
    /// 500 Internal Server Error.
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);
    /// 501 Not Implemented.
    pub const NOT_IMPLEMENTED: StatusCode = StatusCode(501);

    /// The numeric code.
    pub fn as_u16(self) -> u16 {
        self.0
    }

    /// Returns `true` for 2xx codes.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }

    /// The standard reason phrase for well-known codes.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            415 => "Unsupported Media Type",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            _ => "Unknown",
        }
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

impl From<u16> for StatusCode {
    fn from(code: u16) -> Self {
        StatusCode(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_predicate() {
        assert!(StatusCode::OK.is_success());
        assert!(!StatusCode::BAD_REQUEST.is_success());
        assert!(!StatusCode::INTERNAL_SERVER_ERROR.is_success());
    }

    #[test]
    fn display_and_conversion() {
        assert_eq!(StatusCode::OK.to_string(), "200 OK");
        assert_eq!(StatusCode::from(418).to_string(), "418 Unknown");
        assert_eq!(StatusCode::UNSUPPORTED_MEDIA_TYPE.as_u16(), 415);
    }
}
