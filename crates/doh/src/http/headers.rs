//! A small, order-preserving header map with case-insensitive names.

use std::fmt;

/// An ordered multimap of HTTP header fields.
///
/// Header names are stored lowercased, as required on the wire by HTTP/2.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Headers {
    fields: Vec<(String, String)>,
}

impl Headers {
    /// Creates an empty header map.
    pub fn new() -> Self {
        Headers::default()
    }

    /// Number of header fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Returns `true` when no fields are present.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Sets a header, replacing any existing fields with the same name.
    pub fn set(&mut self, name: &str, value: &str) {
        let name = name.to_ascii_lowercase();
        self.fields.retain(|(n, _)| n != &name);
        self.fields.push((name, value.to_string()));
    }

    /// Appends a header without removing existing fields of the same name.
    pub fn append(&mut self, name: &str, value: &str) {
        self.fields
            .push((name.to_ascii_lowercase(), value.to_string()));
    }

    /// The first value for `name`, if any.
    pub fn get(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.fields
            .iter()
            .find(|(n, _)| n == &name)
            .map(|(_, v)| v.as_str())
    }

    /// All values for `name` in insertion order.
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        let name = name.to_ascii_lowercase();
        self.fields
            .iter()
            .filter(|(n, _)| n == &name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Returns `true` when a field with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Removes all fields with this name, returning whether any were removed.
    pub fn remove(&mut self, name: &str) -> bool {
        let name = name.to_ascii_lowercase();
        let before = self.fields.len();
        self.fields.retain(|(n, _)| n != &name);
        before != self.fields.len()
    }

    /// Iterates over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.fields.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }
}

impl fmt::Display for Headers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in &self.fields {
            writeln!(f, "{name}: {value}")?;
        }
        Ok(())
    }
}

impl FromIterator<(String, String)> for Headers {
    fn from_iter<T: IntoIterator<Item = (String, String)>>(iter: T) -> Self {
        let mut headers = Headers::new();
        for (name, value) in iter {
            headers.append(&name, &value);
        }
        headers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_case_insensitive() {
        let mut h = Headers::new();
        h.set("Content-Type", "application/dns-message");
        assert_eq!(h.get("content-type"), Some("application/dns-message"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("application/dns-message"));
        assert!(h.contains("Content-Type"));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn set_replaces_append_accumulates() {
        let mut h = Headers::new();
        h.append("accept", "a");
        h.append("accept", "b");
        assert_eq!(h.get_all("accept"), vec!["a", "b"]);
        h.set("accept", "c");
        assert_eq!(h.get_all("accept"), vec!["c"]);
    }

    #[test]
    fn remove_and_empty() {
        let mut h = Headers::new();
        assert!(h.is_empty());
        h.set("x", "1");
        assert!(h.remove("X"));
        assert!(!h.remove("x"));
        assert!(h.is_empty());
    }

    #[test]
    fn iter_and_display_and_collect() {
        let h: Headers = vec![
            ("A".to_string(), "1".to_string()),
            ("b".to_string(), "2".to_string()),
        ]
        .into_iter()
        .collect();
        let pairs: Vec<(&str, &str)> = h.iter().collect();
        assert_eq!(pairs, vec![("a", "1"), ("b", "2")]);
        let display = h.to_string();
        assert!(display.contains("a: 1"));
        assert!(display.contains("b: 2"));
    }
}
