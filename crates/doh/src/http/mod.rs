//! Minimal HTTP semantics: methods, status codes, header maps, requests and
//! responses — just enough to carry RFC 8484 DoH exchanges over HTTP/2.

mod headers;
mod status;

pub use headers::Headers;
pub use status::StatusCode;

use std::fmt;

/// HTTP request methods used by DoH.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// `GET` with the query encoded in the `dns` URI parameter.
    Get,
    /// `POST` with the query in the request body.
    Post,
}

impl Method {
    /// The canonical token for this method.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
        }
    }

    /// Parses a method token (case-sensitive, as HTTP methods are).
    pub fn from_token(token: &str) -> Option<Method> {
        match token {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            _ => None,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Path and query string (`:path` pseudo-header).
    pub path: String,
    /// Server authority (`:authority` pseudo-header), e.g. `dns.google`.
    pub authority: String,
    /// URI scheme (`:scheme` pseudo-header); always `https` for DoH.
    pub scheme: String,
    /// Header fields.
    pub headers: Headers,
    /// Request body (empty for GET).
    pub body: Vec<u8>,
}

impl Request {
    /// Creates a GET request for `path` on `authority`.
    pub fn get(authority: impl Into<String>, path: impl Into<String>) -> Self {
        Request {
            method: Method::Get,
            path: path.into(),
            authority: authority.into(),
            scheme: "https".to_string(),
            headers: Headers::new(),
            body: Vec::new(),
        }
    }

    /// Creates a POST request for `path` on `authority` carrying `body`.
    pub fn post(authority: impl Into<String>, path: impl Into<String>, body: Vec<u8>) -> Self {
        Request {
            method: Method::Post,
            path: path.into(),
            authority: authority.into(),
            scheme: "https".to_string(),
            headers: Headers::new(),
            body,
        }
    }

    /// Adds a header field, returning `self` for chaining.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.set(name, value);
        self
    }

    /// The path portion before any `?`.
    pub fn path_without_query(&self) -> &str {
        self.path.split('?').next().unwrap_or(&self.path)
    }

    /// Looks up a URI query parameter by name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        let query = self.path.split_once('?')?.1;
        for pair in query.split('&') {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            if k == name {
                return Some(v);
            }
        }
        None
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Response status code.
    pub status: StatusCode,
    /// Header fields.
    pub headers: Headers,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// Creates a response with the given status and empty body.
    pub fn new(status: StatusCode) -> Self {
        Response {
            status,
            headers: Headers::new(),
            body: Vec::new(),
        }
    }

    /// Creates a 200 OK response with a body and content type.
    pub fn ok(content_type: &str, body: Vec<u8>) -> Self {
        let mut response = Response::new(StatusCode::OK);
        response.headers.set("content-type", content_type);
        response
            .headers
            .set("content-length", &body.len().to_string());
        response.body = body;
        response
    }

    /// Adds a header field, returning `self` for chaining.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.set(name, value);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_tokens() {
        assert_eq!(Method::Get.as_str(), "GET");
        assert_eq!(Method::from_token("POST"), Some(Method::Post));
        assert_eq!(Method::from_token("get"), None);
        assert_eq!(Method::Post.to_string(), "POST");
    }

    #[test]
    fn request_constructors_and_query_params() {
        let req = Request::get(
            "dns.google",
            "/dns-query?dns=AAAA&ct=application%2Fdns-message",
        )
        .with_header("accept", "application/dns-message");
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path_without_query(), "/dns-query");
        assert_eq!(req.query_param("dns"), Some("AAAA"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.headers.get("Accept"), Some("application/dns-message"));

        let post = Request::post("dns.google", "/dns-query", vec![1, 2, 3]);
        assert_eq!(post.body.len(), 3);
        assert_eq!(post.query_param("dns"), None);
    }

    #[test]
    fn response_ok_sets_content_headers() {
        let resp = Response::ok("application/dns-message", vec![0u8; 12])
            .with_header("cache-control", "max-age=300");
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.headers.get("content-length"), Some("12"));
        assert_eq!(resp.headers.get("cache-control"), Some("max-age=300"));
    }
}
