//! The DNS-over-HTTPS server service (RFC 8484).
//!
//! The core processing path ([`DohServerService::serve_payload`]) is
//! generic over the [`Exchanger`] the wrapped handler uses for upstream
//! queries, so the same service instance can terminate DoH traffic on a
//! simulated endpoint (the [`Service`] impl, where the exchanger is the
//! simulator's `Ctx`) **or** serve as an in-process backend of the
//! real-socket runtime, where the exchanger is whatever the runtime
//! provides.

use sdoh_dns_server::{Exchanger, QueryHandler};
use sdoh_dns_wire::{base64url, Message};
use sdoh_netsim::{ChannelKind, Ctx, Service, ServiceResponse, SimAddr};

use crate::client::{DNS_MESSAGE_CONTENT_TYPE, DOH_PATH};
use crate::directory::ResolverInfo;
use crate::error::DohResult;
use crate::h2::ServerConnection;
use crate::http::{Method, Request, Response, StatusCode};
use crate::secure::{self, SecureEnvelope};

/// A DoH endpoint: terminates the secure channel and HTTP/2, validates the
/// RFC 8484 exchange and hands the DNS query to a [`QueryHandler`]
/// (typically a recursive resolver, possibly a poisoned one in attack
/// experiments).
#[derive(Debug)]
pub struct DohServerService<H> {
    identity: ResolverInfo,
    handler: H,
    queries_served: u64,
}

impl<H: QueryHandler> DohServerService<H> {
    /// Creates a DoH service with the given identity (name + pinned key)
    /// and query handler.
    pub fn new(identity: ResolverInfo, handler: H) -> Self {
        DohServerService {
            identity,
            handler,
            queries_served: 0,
        }
    }

    /// Number of DNS queries answered so far.
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }

    /// Access to the wrapped handler.
    pub fn handler(&self) -> &H {
        &self.handler
    }

    /// Mutable access to the wrapped handler.
    pub fn handler_mut(&mut self) -> &mut H {
        &mut self.handler
    }

    /// Terminates one secure-channel payload: decodes the envelope and the
    /// HTTP/2 stream, answers every RFC 8484 request through the wrapped
    /// handler (which performs any upstream queries via `exchanger`) and
    /// returns the sealed reply payload. `None` mirrors the wire behaviour
    /// of a DoH endpoint that won't answer — a plaintext connection attempt
    /// or a malformed secure record is silently dropped, and the peer
    /// observes a timeout.
    ///
    /// This is the transport-independent entry point: the simulator's
    /// [`Service`] impl calls it with the simulation `Ctx`, a real-socket
    /// runtime calls it with its own exchanger.
    pub fn serve_payload(
        &mut self,
        exchanger: &mut dyn Exchanger,
        channel: ChannelKind,
        payload: &[u8],
    ) -> Option<Vec<u8>> {
        // A DoH endpoint only speaks over the secure channel; plaintext
        // connection attempts are ignored (no listener on port 443/tcp
        // without TLS).
        if channel != ChannelKind::Secure {
            return None;
        }
        self.process(exchanger, payload).ok()
    }

    fn process(&mut self, exchanger: &mut dyn Exchanger, payload: &[u8]) -> DohResult<Vec<u8>> {
        let envelope = SecureEnvelope::decode(payload)?;
        if envelope.server_name != self.identity.name {
            return Err(crate::error::DohError::ChannelAuthentication(format!(
                "client addressed {} but this endpoint is {}",
                envelope.server_name, self.identity.name
            )));
        }
        let client_h2 = secure::open(&self.identity.key, secure::SEQ_CLIENT, &envelope.record)?;

        let mut connection = ServerConnection::new();
        let requests = connection.receive(&client_h2)?;
        for (stream_id, request) in requests {
            let response = self.handle_http(exchanger, &request);
            connection.send_response(stream_id, &response);
        }
        let server_h2 = connection.take_output();
        let reply = SecureEnvelope {
            server_name: self.identity.name.clone(),
            record: secure::seal(&self.identity.key, secure::SEQ_SERVER, &server_h2),
        };
        Ok(reply.encode())
    }

    fn handle_http(&mut self, exchanger: &mut dyn Exchanger, request: &Request) -> Response {
        if request.path_without_query() != DOH_PATH {
            return Response::new(StatusCode::NOT_FOUND);
        }
        let query_wire: Vec<u8> = match request.method {
            Method::Get => match request.query_param("dns") {
                Some(encoded) => match base64url::decode(encoded) {
                    Ok(bytes) => bytes,
                    Err(_) => return Response::new(StatusCode::BAD_REQUEST),
                },
                None => return Response::new(StatusCode::BAD_REQUEST),
            },
            Method::Post => {
                match request.headers.get("content-type") {
                    Some(ct) if ct.eq_ignore_ascii_case(DNS_MESSAGE_CONTENT_TYPE) => {}
                    _ => return Response::new(StatusCode::UNSUPPORTED_MEDIA_TYPE),
                }
                request.body.clone()
            }
        };
        if query_wire.len() > sdoh_dns_wire::MAX_MESSAGE_SIZE {
            return Response::new(StatusCode::PAYLOAD_TOO_LARGE);
        }
        let query = match Message::decode(&query_wire) {
            Ok(message) => message,
            Err(_) => return Response::new(StatusCode::BAD_REQUEST),
        };
        self.queries_served += 1;
        let dns_response = self.handler.handle_query(exchanger, &query);
        match dns_response.encode() {
            Ok(bytes) => {
                let min_ttl = dns_response
                    .answers
                    .iter()
                    .map(|r| r.ttl)
                    .min()
                    .unwrap_or(0);
                Response::ok(DNS_MESSAGE_CONTENT_TYPE, bytes)
                    .with_header("cache-control", &format!("max-age={min_ttl}"))
            }
            Err(_) => Response::new(StatusCode::INTERNAL_SERVER_ERROR),
        }
    }
}

impl<H: QueryHandler> Service for DohServerService<H> {
    fn handle(
        &mut self,
        ctx: &mut Ctx<'_>,
        _from: SimAddr,
        channel: ChannelKind,
        payload: &[u8],
    ) -> ServiceResponse {
        match self.serve_payload(ctx, channel, payload) {
            Some(reply) => ServiceResponse::Reply(reply),
            None => ServiceResponse::NoReply,
        }
    }

    fn name(&self) -> &str {
        "doh-server"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{DohClient, DohMethod};
    use crate::directory::ResolverDirectory;
    use sdoh_dns_server::{Authority, Catalog, ClientExchanger, Zone};
    use sdoh_dns_wire::RrType;
    use sdoh_netsim::SimNet;
    use std::time::Duration;

    fn authority() -> Authority {
        let mut zone = Zone::new("example.org".parse().unwrap());
        zone.add_address(
            "www.example.org".parse().unwrap(),
            "192.0.2.80".parse().unwrap(),
        );
        let mut catalog = Catalog::new();
        catalog.add_zone(zone);
        Authority::new(catalog)
    }

    fn setup() -> (SimNet, ResolverInfo) {
        let net = SimNet::new(21);
        let info = ResolverDirectory::well_known(21).resolvers()[1].clone();
        net.register(info.addr, DohServerService::new(info.clone(), authority()));
        (net, info)
    }

    #[test]
    fn serves_get_and_post() {
        let (net, info) = setup();
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 7, 50000));
        for method in [DohMethod::Get, DohMethod::Post] {
            let client = DohClient::new(info.clone()).method(method);
            let response = client
                .query(
                    &mut exchanger,
                    &"www.example.org".parse().unwrap(),
                    RrType::A,
                )
                .unwrap();
            assert_eq!(response.answer_addresses().len(), 1);
        }
    }

    #[test]
    fn ignores_plaintext_connections() {
        let (net, info) = setup();
        let err = net
            .transact(
                SimAddr::v4(10, 0, 0, 7, 50000),
                info.addr,
                ChannelKind::Plain,
                b"GET /dns-query",
                Duration::from_millis(300),
            )
            .unwrap_err();
        assert_eq!(err, sdoh_netsim::NetError::Timeout);
    }

    #[test]
    fn rejects_wrong_server_name() {
        let (net, info) = setup();
        // Client pins the right key but addresses the wrong name.
        let mut wrong = info.clone();
        wrong.name = "dns.evil.example".to_string();
        let client = DohClient::new(wrong).timeout(Duration::from_millis(500));
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 7, 50000));
        let err = client
            .query(
                &mut exchanger,
                &"www.example.org".parse().unwrap(),
                RrType::A,
            )
            .unwrap_err();
        assert!(matches!(err, crate::error::DohError::Network(_)));
    }

    #[test]
    fn counts_queries_and_exposes_handler() {
        let info = ResolverDirectory::well_known(3).resolvers()[0].clone();
        let mut service = DohServerService::new(info, authority());
        assert_eq!(service.queries_served(), 0);
        assert_eq!(service.handler().catalog().len(), 1);
        service
            .handler_mut()
            .catalog_mut()
            .add_zone(Zone::new("added.test".parse().unwrap()));
        assert_eq!(service.handler().catalog().len(), 2);
        assert_eq!(Service::name(&service), "doh-server");
    }
}
