//! Stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the surface this workspace uses is provided: `Mutex` and `RwLock`
//! with the parking-lot calling convention (`lock()` returns the guard
//! directly, never a poison `Result`). Poisoning is absorbed by handing the
//! caller the inner guard — the simulator is single-threaded, so a poisoned
//! lock can only come from a failing test's unwind and the state is still
//! consistent enough to inspect.

use std::fmt;

/// A mutex whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
        assert!(format!("{l:?}").contains("ab"));
    }
}
