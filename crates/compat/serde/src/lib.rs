//! Stand-in for the `serde` facade.
//!
//! This workspace cannot reach a crate registry, so the handful of external
//! dependencies are replaced by minimal in-tree equivalents. The codebase
//! derives `Serialize`/`Deserialize` on its public data types but never
//! drives an actual serialiser, which lets this facade reduce the traits to
//! markers with blanket implementations: every `#[derive(Serialize)]` (a
//! no-op from the sibling `serde_derive` stand-in) still type-checks, and
//! any `T: Serialize` bound is satisfied.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T: ?Sized> DeserializeOwned for T {}
