//! Stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's
//! property-based tests use: the [`proptest!`] macro, [`Strategy`](strategy::Strategy) with
//! `prop_map`/`boxed`, `any`, ranges, [`strategy::Just`], tuple and
//! `collection::vec` composition, a character-class regex string generator
//! and `prop_assert*` macros. Cases are generated from a deterministic
//! per-test seed; there is no shrinking — a failing case panics with the
//! assertion message, which is enough signal for this deterministic
//! simulator workspace.

pub mod test_runner {
    //! Run configuration and the deterministic case generator.

    /// Subset of proptest's run configuration: the number of cases.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic SplitMix64 generator used for case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator whose stream is a pure function of `label`
        /// (the property name), so every run regenerates the same cases.
        pub fn deterministic(label: &str) -> Self {
            let mut state = 0x9E37_79B9_7F4A_7C15u64;
            for b in label.bytes() {
                state = state.rotate_left(9) ^ u64::from(b).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            }
            TestRng { state }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; returns 0 for an empty bound.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                self.next_u64() % bound
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use std::marker::PhantomData;
    use std::ops::Range;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Object-safe alias used by [`BoxedStrategy`].
    pub type BoxedStrategy<V> = Box<dyn DynStrategy<Value = V>>;

    /// Object-safe core of [`Strategy`].
    pub trait DynStrategy {
        /// The generated value type.
        type Value;
        /// Generates one value.
        fn dyn_new_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;

        fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn new_value(&self, rng: &mut TestRng) -> V {
            self.as_ref().dyn_new_value(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (the `prop_oneof!` backend).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over the given options; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn new_value(&self, rng: &mut TestRng) -> V {
            let ix = rng.below(self.options.len() as u64) as usize;
            self.options[ix].new_value(rng)
        }
    }

    /// Types with a canonical generation strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Generates one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let mut out = [0u8; N];
            for b in &mut out {
                *b = rng.next_u64() as u8;
            }
            out
        }
    }

    impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (A::arbitrary(rng), B::arbitrary(rng))
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $ix:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$ix.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

    impl Strategy for &str {
        type Value = String;

        fn new_value(&self, rng: &mut TestRng) -> String {
            crate::string::generate(self, rng)
                .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        length: Range<usize>,
    }

    /// Generates vectors whose length lies in `length`.
    pub fn vec<S: Strategy>(element: S, length: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, length }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.length.end.saturating_sub(self.length.start).max(1);
            let len = self.length.start + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod string {
    //! Character-class regex string generation.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating strings matching a character-class regex.
    #[derive(Debug, Clone)]
    pub struct RegexStringStrategy {
        pattern: String,
    }

    impl Strategy for RegexStringStrategy {
        type Value = String;

        fn new_value(&self, rng: &mut TestRng) -> String {
            generate(&self.pattern, rng)
                .unwrap_or_else(|e| panic!("invalid regex strategy {:?}: {e}", self.pattern))
        }
    }

    /// Builds a string strategy from a regex pattern.
    ///
    /// # Errors
    ///
    /// Returns a description of the first unsupported construct. The
    /// supported grammar is a sequence of literal characters and `[...]`
    /// classes (ranges, literals, `&&[^...]` subtraction), each optionally
    /// followed by a `{min,max}` or `{n}` quantifier.
    pub fn string_regex(pattern: &str) -> Result<RegexStringStrategy, String> {
        parse(pattern)?;
        Ok(RegexStringStrategy {
            pattern: pattern.to_string(),
        })
    }

    struct Element {
        choices: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse_class(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> Result<Vec<char>, String> {
        // Called after consuming '['; an optional leading '^' negates.
        let negated = chars.peek() == Some(&'^') && {
            chars.next();
            true
        };
        let mut set: Vec<char> = Vec::new();
        let mut subtract: Vec<char> = Vec::new();
        let mut prev: Option<char> = None;
        loop {
            let c = chars.next().ok_or("unterminated character class")?;
            match c {
                ']' => break,
                '&' if chars.peek() == Some(&'&') => {
                    chars.next();
                    if chars.next() != Some('[') {
                        return Err("expected class after && intersection".into());
                    }
                    let inner = parse_class(chars)?;
                    // `x&&[^y]` keeps x minus y; the nested parser already
                    // resolved the negation against the printable range, so
                    // intersect with it.
                    let kept: Vec<char> =
                        set.iter().copied().filter(|c| inner.contains(c)).collect();
                    subtract.clear();
                    set = kept;
                    prev = None;
                }
                '-' if prev.is_some() && chars.peek().is_some() && chars.peek() != Some(&']') => {
                    let hi = chars.next().ok_or("unterminated range")?;
                    let lo = prev.take().ok_or("range without lower bound")?;
                    if lo > hi {
                        return Err(format!("inverted range {lo}-{hi}"));
                    }
                    // The lower bound was already pushed as a literal.
                    for code in (lo as u32 + 1)..=(hi as u32) {
                        if let Some(ch) = char::from_u32(code) {
                            set.push(ch);
                        }
                    }
                }
                '\\' => {
                    let escaped = chars.next().ok_or("dangling escape")?;
                    set.push(escaped);
                    prev = Some(escaped);
                }
                other => {
                    set.push(other);
                    prev = Some(other);
                }
            }
        }
        set.retain(|c| !subtract.contains(c));
        set.sort_unstable();
        set.dedup();
        if negated {
            // Complement within printable ASCII.
            let all: Vec<char> = (0x20u8..0x7F).map(char::from).collect();
            set = all.into_iter().filter(|c| !set.contains(c)).collect();
        }
        if set.is_empty() {
            return Err("empty character class".into());
        }
        Ok(set)
    }

    fn parse(pattern: &str) -> Result<Vec<Element>, String> {
        let mut chars = pattern.chars().peekable();
        let mut elements = Vec::new();
        while let Some(c) = chars.next() {
            let choices = match c {
                '[' => parse_class(&mut chars)?,
                '\\' => vec![chars.next().ok_or("dangling escape")?],
                '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' => {
                    return Err(format!("unsupported regex construct {c:?}"));
                }
                literal => vec![literal],
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for q in chars.by_ref() {
                    if q == '}' {
                        break;
                    }
                    spec.push(q);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().map_err(|_| "bad quantifier")?,
                        hi.parse().map_err(|_| "bad quantifier")?,
                    ),
                    None => {
                        let n: usize = spec.parse().map_err(|_| "bad quantifier")?;
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            if min > max {
                return Err("inverted quantifier".into());
            }
            elements.push(Element { choices, min, max });
        }
        Ok(elements)
    }

    /// Generates one string matching `pattern`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`string_regex`].
    pub fn generate(pattern: &str, rng: &mut TestRng) -> Result<String, String> {
        let elements = parse(pattern)?;
        let mut out = String::new();
        for element in &elements {
            let span = element.max - element.min + 1;
            let count = element.min + rng.below(span as u64) as usize;
            for _ in 0..count {
                let ix = rng.below(element.choices.len() as u64) as usize;
                out.push(element.choices[ix]);
            }
        }
        Ok(out)
    }
}

pub mod prelude {
    //! The commonly used names, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a property-test condition.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ($config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::new_value(&$strategy, &mut __rng);)+
                    { $body }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::deterministic("regex");
        for _ in 0..200 {
            let s = crate::string::generate("[a-z][a-z0-9-]{0,12}", &mut rng).unwrap();
            assert!(!s.is_empty() && s.len() <= 13);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let t = crate::string::generate("[ -~&&[^\"]]{0,24}", &mut rng).unwrap();
            assert!(t.chars().all(|c| (' '..='~').contains(&c) && c != '"'));
        }
    }

    #[test]
    fn union_and_ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("union");
        let strategy = prop_oneof![Just(1u32), Just(2u32), (5u32..9).prop_map(|v| v)];
        for _ in 0..100 {
            let v = strategy.new_value(&mut rng);
            assert!(v == 1 || v == 2 || (5..9).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_smoke(x in any::<u16>(), v in crate::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(u32::from(x) <= u32::from(u16::MAX));
            prop_assert!(v.len() < 4);
        }
    }
}
