//! Stand-in for `criterion`.
//!
//! Provides the measurement surface the workspace's benches use —
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box` and the `criterion_group!`/`criterion_main!`
//! macros — with a simple but honest measurement loop: each benchmark is
//! warmed up, then timed over enough iterations to exceed a minimum
//! measurement window, and the mean/min per-iteration times are printed as
//! both a human-readable line and a `BENCHJSON` line that tooling can
//! scrape into a baseline file.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const MIN_SAMPLES: u64 = 10;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, 0, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 0,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Lowers/raises the number of measurement samples.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples as u64;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group (printing is incremental; nothing left to do).
    pub fn finish(self) {}
}

/// Identifier of a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: u64,
}

impl Bencher {
    /// Measures `routine`, collecting per-iteration samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let samples = self.sample_size.max(MIN_SAMPLES);
        // Batch iterations so that sub-microsecond routines still get a
        // measurable window per sample.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_micros(50) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        self.samples.clear();
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: u64, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<48} (no measurement)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort_unstable();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean: Duration = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{name:<48} min {:>12.1} ns   median {:>12.1} ns   mean {:>12.1} ns",
        min.as_nanos() as f64,
        median.as_nanos() as f64,
        mean.as_nanos() as f64,
    );
    println!(
        "BENCHJSON {{\"name\":\"{name}\",\"min_ns\":{},\"median_ns\":{},\"mean_ns\":{},\"samples\":{}}}",
        min.as_nanos(),
        median.as_nanos(),
        mean.as_nanos(),
        sorted.len(),
    );
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_prints() {
        let mut c = Criterion::default();
        c.bench_function("smoke/add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut group = c.benchmark_group("smoke");
        group.sample_size(12);
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
