//! Stand-in for the `rand` crate.
//!
//! Implements the subset this workspace uses — `RngCore`, `SeedableRng`,
//! the `Rng` extension (`gen`, `gen_range`), `rngs::StdRng` and
//! `seq::SliceRandom::shuffle` — over a xoshiro256++ generator seeded with
//! SplitMix64. Statistical quality is far beyond what the simulator's
//! calibration tests require; the stream differs from upstream `StdRng`
//! (ChaCha12), which is fine because every consumer seeds explicitly and
//! only relies on determinism, not on a particular stream.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible filling; this implementation never fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// Core random-number generation operations.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill; never fails here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Generators constructible from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling, Fisher–Yates.
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_is_unit_interval_and_calibrated() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use super::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(3);
        let mut data: Vec<u32> = (0..64).collect();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(data, sorted);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(rng.try_fill_bytes(&mut buf).is_ok());
    }
}
