//! Stand-in for the `bytes` crate, backed by `Vec<u8>`.
//!
//! Provides the subset this workspace uses: `BytesMut` as a growable buffer
//! with the big-endian `BufMut` putters, and `Bytes` as a cheaply clonable
//! frozen buffer. The real crate's refcounted zero-copy splitting is not
//! needed by the simulator's message sizes.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A frozen, cheaply clonable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::new(data.to_vec()))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::new(v))
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut(Vec::with_capacity(capacity))
    }

    /// Appends `data` to the buffer.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(Arc::new(self.0))
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut(v)
    }
}

/// Big-endian buffer-writing operations.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Appends a slice.
    fn put_slice(&mut self, v: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, v: &[u8]) {
        self.0.extend_from_slice(v);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, v: &[u8]) {
        self.extend_from_slice(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn putters_are_big_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xAB);
        buf.put_u16(0x0102);
        buf.put_u32(0x03040506);
        buf.put_slice(b"xy");
        assert_eq!(&buf[..], &[0xAB, 1, 2, 3, 4, 5, 6, b'x', b'y']);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 9);
        assert_eq!(frozen.to_vec()[0], 0xAB);
    }

    #[test]
    fn take_resets_buffer() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"abc");
        let taken = std::mem::take(&mut buf);
        assert_eq!(taken.to_vec(), b"abc");
        assert!(buf.is_empty());
    }
}
