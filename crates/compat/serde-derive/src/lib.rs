//! Stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` for documentation and
//! future interoperability but never serialises anything (there is no
//! `serde_json` in the tree), so the derives can expand to nothing: the
//! sibling `serde` stand-in provides blanket implementations of both
//! traits. The `serde` helper attribute is still declared so annotated
//! fields would not break compilation.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
