//! Property-based tests on the security-analysis functions.

use proptest::prelude::*;

use sdoh_analysis::{
    attack_probability_exact, attack_probability_paper, binomial_pmf, AttackModel,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Probabilities are probabilities.
    #[test]
    fn probabilities_are_in_unit_interval(
        n in 1usize..40,
        p in 0.0f64..1.0,
        y in 0.01f64..1.0,
    ) {
        let model = AttackModel::new(n, p, y);
        let paper = attack_probability_paper(&model);
        let exact = attack_probability_exact(&model);
        prop_assert!((0.0..=1.0).contains(&paper));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&exact));
    }

    /// The paper's p^M expression never exceeds the exact binomial tail
    /// (it counts a single outcome of the tail).
    #[test]
    fn paper_bound_is_a_lower_bound(
        n in 1usize..30,
        p in 0.0f64..1.0,
        y in 0.01f64..1.0,
    ) {
        let model = AttackModel::new(n, p, y);
        prop_assert!(
            attack_probability_paper(&model) <= attack_probability_exact(&model) + 1e-9
        );
    }

    /// The exact probability is monotone in p_attack.
    #[test]
    fn exact_tail_is_monotone_in_p(
        n in 1usize..25,
        y in 0.01f64..1.0,
        p1 in 0.0f64..1.0,
        p2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = attack_probability_exact(&AttackModel::new(n, lo, y));
        let b = attack_probability_exact(&AttackModel::new(n, hi, y));
        prop_assert!(a <= b + 1e-9);
    }

    /// Requiring a larger pool fraction never makes the attack easier.
    #[test]
    fn harder_goals_are_not_easier(
        n in 1usize..25,
        p in 0.0f64..1.0,
        y1 in 0.01f64..1.0,
        y2 in 0.01f64..1.0,
    ) {
        let (lo, hi) = if y1 <= y2 { (y1, y2) } else { (y2, y1) };
        let easier = attack_probability_exact(&AttackModel::new(n, p, lo));
        let harder = attack_probability_exact(&AttackModel::new(n, p, hi));
        prop_assert!(harder <= easier + 1e-9);
    }

    /// The binomial pmf is non-negative and sums to one.
    #[test]
    fn binomial_pmf_is_a_distribution(n in 0usize..40, p in 0.0f64..1.0) {
        let total: f64 = (0..=n).map(|k| {
            let v = binomial_pmf(n, k, p);
            assert!(v >= 0.0);
            v
        }).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "n={n} p={p} total={total}");
    }

    /// M = ceil(x*N) is within bounds and consistent with the fraction.
    #[test]
    fn min_compromised_is_consistent(n in 1usize..100, y in 0.01f64..1.0) {
        let model = AttackModel::new(n, 0.5, y);
        let m = model.min_compromised_resolvers();
        prop_assert!(m >= 1);
        prop_assert!(m <= n);
        // Compromising m resolvers reaches the fraction; m-1 does not
        // (except when m = 1 and any single compromise suffices).
        prop_assert!(m as f64 / n as f64 >= y - 1e-9 || m == n);
        if m > 1 {
            prop_assert!(((m - 1) as f64) < y * n as f64 + 1e-9);
        }
    }
}
