//! Lightweight tabular output (markdown and CSV) for experiment results.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A simple table: headers plus rows of cells.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row of already-formatted cells.
    ///
    /// # Panics
    ///
    /// Panics when the number of cells does not match the number of
    /// headers; this is a programming error in the experiment code.
    pub fn push_row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders the table as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|cell| {
                    if cell.contains(',') || cell.contains('"') {
                        format!("\"{}\"", cell.replace('"', "\"\""))
                    } else {
                        cell.clone()
                    }
                })
                .collect();
            out.push_str(&escaped.join(","));
            out.push('\n');
        }
        out
    }

    /// Access to the raw rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_markdown())
    }
}

/// Formats a probability for display with enough precision for small tails.
pub fn fmt_probability(p: f64) -> String {
    if p == 0.0 {
        "0".to_string()
    } else if p >= 0.001 {
        format!("{p:.4}")
    } else {
        format!("{p:.3e}")
    }
}

/// Formats a fraction as a percentage.
pub fn fmt_percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_and_csv_output() {
        let mut table = Table::new("Attack probability", &["N", "p", "P[success]"]);
        assert!(table.is_empty());
        table.push_row(["3", "0.1", "0.01"]);
        table.push_row(vec![
            "5".to_string(),
            "0.1".to_string(),
            "0.001".to_string(),
        ]);
        assert_eq!(table.len(), 2);
        assert_eq!(table.title(), "Attack probability");

        let md = table.to_markdown();
        assert!(md.contains("### Attack probability"));
        assert!(md.contains("| N | p | P[success] |"));
        assert!(md.contains("| 3 | 0.1 | 0.01 |"));
        assert_eq!(md, table.to_string());

        let csv = table.to_csv();
        assert!(csv.starts_with("N,p,P[success]\n"));
        assert!(csv.contains("5,0.1,0.001"));
        assert_eq!(table.rows().len(), 2);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut table = Table::new("t", &["a", "b"]);
        table.push_row(["x,y", "he said \"hi\""]);
        let csv = table.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut table = Table::new("t", &["a", "b"]);
        table.push_row(["only one"]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_probability(0.0), "0");
        assert_eq!(fmt_probability(0.25), "0.2500");
        assert!(fmt_probability(1e-6).contains('e'));
        assert_eq!(fmt_percent(0.5), "50.0%");
    }
}
