//! Security analysis for distributed DoH pool generation (Section III of
//! the paper), with closed-form expressions, an exact binomial model and
//! Monte-Carlo validation.
//!
//! * [`AttackModel`] captures the paper's attacker: each of `N` resolvers is
//!   compromised independently with probability `p_attack`, and the attack
//!   succeeds when the attacker controls a fraction `y` of the generated
//!   pool — which requires compromising `M = ceil(x·N)` resolvers with
//!   `x ≥ y` (Section III-a).
//! * [`attack_probability_paper`] is the paper's `p_attack^M` expression;
//!   [`attack_probability_exact`] is the exact binomial tail it bounds.
//! * [`estimate_resolver_compromise`] and [`estimate_pool_capture`] validate
//!   both by direct simulation (the latter building the Algorithm 1 pool
//!   explicitly each trial).
//! * [`sweep_resolver_count`] / [`sweep_attack_probability`] regenerate the
//!   quantitative series reported in `EXPERIMENTS.md`, and [`Table`] renders
//!   them as markdown or CSV.
//!
//! # Example
//!
//! ```
//! use sdoh_analysis::{attack_probability_paper, AttackModel};
//!
//! // "Even when only 3 DoH resolvers are used … the probability of a
//! //  successful attack which requires a malicious majority (x >= 2/3) is
//! //  reduced significantly (p^2)."
//! let model = AttackModel::figure1_example(0.1);
//! assert!((attack_probability_paper(&model) - 0.01).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analytic;
mod model;
mod montecarlo;
mod sweep;
mod table;

pub use analytic::{
    attack_probability_exact, attack_probability_paper, binomial_pmf, ln_choose,
    required_resolver_fraction, resolvers_for_security_gain,
};
pub use model::AttackModel;
pub use montecarlo::{estimate_pool_capture, estimate_resolver_compromise, MonteCarloEstimate};
pub use sweep::{sweep_attack_probability, sweep_resolver_count, sweep_table, SweepPoint};
pub use table::{fmt_percent, fmt_probability, Table};
