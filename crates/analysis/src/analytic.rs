//! Closed-form expressions from the paper's Section III, plus the exact
//! binomial tail they bound.

use crate::model::AttackModel;

/// The paper's bound (Section III-b): the probability of attacking at least
/// a fraction `x` of `N` resolvers is `p_attack ^ M` with `M = ceil(x N)`.
///
/// This is the probability of the *cheapest* successful outcome (exactly the
/// required resolvers compromised); the exact success probability is the
/// binomial tail computed by [`attack_probability_exact`], which the bound
/// approximates well for small `p_attack`.
pub fn attack_probability_paper(model: &AttackModel) -> f64 {
    let m = model.min_compromised_resolvers();
    if m == 0 {
        return 1.0;
    }
    model
        .p_attack
        .clamp(0.0, 1.0)
        .powi(i32::try_from(m).unwrap_or(i32::MAX))
}

/// Exact probability that at least `M = ceil(x N)` of `N` independently
/// compromised resolvers (each with probability `p_attack`) are compromised:
/// the upper tail of a Binomial(N, p) distribution.
pub fn attack_probability_exact(model: &AttackModel) -> f64 {
    let n = model.resolvers;
    let m = model.min_compromised_resolvers();
    if m == 0 {
        return 1.0;
    }
    let p = model.p_attack.clamp(0.0, 1.0);
    (m..=n).map(|k| binomial_pmf(n, k, p)).sum::<f64>().min(1.0)
}

/// Probability mass of exactly `k` successes out of `n` trials with success
/// probability `p`.
pub fn binomial_pmf(n: usize, k: usize, p: f64) -> f64 {
    if k > n {
        return 0.0;
    }
    let p = p.clamp(0.0, 1.0);
    // Handle the degenerate probabilities exactly (log space would produce
    // 0 * -inf = NaN for them).
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    // Work in log space to stay stable for large n.
    let log_pmf = ln_choose(n, k) + (k as f64) * p.ln() + ((n - k) as f64) * (1.0 - p).ln();
    log_pmf.exp()
}

/// Natural log of the binomial coefficient `C(n, k)`.
pub fn ln_choose(n: usize, k: usize) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

fn ln_factorial(n: usize) -> f64 {
    (1..=n).map(|i| (i as f64).ln()).sum()
}

/// Required fraction of resolvers the attacker must control to own a
/// fraction `y` of the pool (Section III-a): `x >= y`, independent of `K`.
pub fn required_resolver_fraction(required_pool_fraction: f64) -> f64 {
    required_pool_fraction.clamp(0.0, 1.0)
}

/// The "asymptotic advantage" of Section III-b: how many additional
/// resolvers multiply the attacker's cost by `10^orders` assuming the paper
/// bound `p^M`.
pub fn resolvers_for_security_gain(p_attack: f64, orders_of_magnitude: f64) -> usize {
    let p = p_attack.clamp(1e-12, 1.0 - 1e-12);
    // p^dM <= 10^-orders  =>  dM >= orders * ln(10) / -ln(p)
    // A tiny tolerance keeps exact ratios (e.g. p = 0.1) from rounding up
    // because of floating-point noise.
    let needed = orders_of_magnitude * std::f64::consts::LN_10 / -p.ln() - 1e-9;
    needed.ceil() as usize // sdoh-lint: allow(no-narrowing-cast, "float-to-int as-casts saturate and map NaN to zero")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bound_three_resolvers_majority() {
        // Section III-b: with 3 resolvers and x >= 2/3, success needs 2
        // compromises, so the probability is p^2.
        let model = AttackModel::figure1_example(0.1);
        assert!((attack_probability_paper(&model) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn exact_probability_dominates_the_paper_bound() {
        for &n in &[3usize, 5, 7, 9, 15] {
            for &p in &[0.01, 0.05, 0.1, 0.3, 0.5] {
                let model = AttackModel::new(n, p, 0.5);
                let exact = attack_probability_exact(&model);
                let bound = attack_probability_paper(&model);
                assert!(
                    exact + 1e-12 >= bound,
                    "exact {exact} must be >= single-outcome bound {bound} (n={n}, p={p})"
                );
                assert!(exact <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn exact_probability_decreases_with_more_resolvers() {
        let p = 0.2;
        let mut last = 1.0;
        for n in [3usize, 7, 11, 15, 31] {
            let model = AttackModel::new(n, p, 0.5);
            let prob = attack_probability_exact(&model);
            assert!(
                prob < last,
                "probability should shrink with N: n={n} prob={prob} last={last}"
            );
            last = prob;
        }
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        for &(n, p) in &[(5usize, 0.3), (12, 0.07), (20, 0.9)] {
            let total: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n} p={p} total={total}");
        }
    }

    #[test]
    fn binomial_pmf_edge_cases() {
        assert_eq!(binomial_pmf(5, 6, 0.5), 0.0);
        assert_eq!(binomial_pmf(5, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(5, 3, 0.0), 0.0);
        assert_eq!(binomial_pmf(5, 5, 1.0), 1.0);
        assert_eq!(binomial_pmf(5, 4, 1.0), 0.0);
        assert!((binomial_pmf(2, 1, 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ln_choose_matches_small_cases() {
        assert!((ln_choose(5, 2).exp() - 10.0).abs() < 1e-9);
        assert!((ln_choose(10, 0).exp() - 1.0).abs() < 1e-9);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn required_fraction_is_y() {
        assert_eq!(required_resolver_fraction(0.5), 0.5);
        assert_eq!(required_resolver_fraction(2.0), 1.0);
        assert_eq!(required_resolver_fraction(-0.2), 0.0);
    }

    #[test]
    fn security_gain_like_key_size() {
        // With p = 0.1, each extra compromised resolver buys one order of
        // magnitude.
        assert_eq!(resolvers_for_security_gain(0.1, 3.0), 3);
        // Smaller p needs fewer resolvers for the same gain.
        assert!(resolvers_for_security_gain(0.01, 6.0) <= 3);
        // p close to 1 needs many.
        assert!(resolvers_for_security_gain(0.9, 1.0) >= 20);
    }

    #[test]
    fn zero_required_fraction_means_trivial_attack() {
        let model = AttackModel::new(0, 0.5, 0.5);
        assert_eq!(attack_probability_paper(&model), 1.0);
        assert_eq!(attack_probability_exact(&model), 1.0);
    }
}
