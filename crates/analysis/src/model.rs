//! The attacker model of the paper's Section III.

use serde::{Deserialize, Serialize};

/// Parameters of the security analysis.
///
/// The paper assumes an attacker that compromises each DoH resolver
/// independently with probability `p_attack`, and succeeds overall when it
/// controls at least a fraction `y` of the generated server pool, which
/// (because Algorithm 1 gives every resolver the same number `K` of slots)
/// requires compromising at least a fraction `x >= y` of the resolvers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackModel {
    /// Number of DoH resolvers queried (`N`).
    pub resolvers: usize,
    /// Probability that any individual resolver (or its path) is
    /// successfully attacked (`p_attack`).
    pub p_attack: f64,
    /// Fraction of the pool the attacker must control to defeat the
    /// application (`y`, e.g. 1/2 for Chronos).
    pub required_pool_fraction: f64,
    /// Number of addresses each resolver contributes after truncation
    /// (`K`); it cancels out of the analysis but matters for the
    /// Monte-Carlo pool construction.
    pub addresses_per_resolver: usize,
}

impl AttackModel {
    /// A model with the paper's running example: 3 resolvers, majority goal.
    pub fn figure1_example(p_attack: f64) -> Self {
        AttackModel {
            resolvers: 3,
            p_attack,
            required_pool_fraction: 2.0 / 3.0,
            addresses_per_resolver: 4,
        }
    }

    /// Creates a model.
    pub fn new(resolvers: usize, p_attack: f64, required_pool_fraction: f64) -> Self {
        AttackModel {
            resolvers,
            p_attack,
            required_pool_fraction,
            addresses_per_resolver: 4,
        }
    }

    /// The fraction of resolvers the attacker must control (`x`); by the
    /// paper's Section III-a argument this equals `y`.
    pub fn required_resolver_fraction(&self) -> f64 {
        self.required_pool_fraction
    }

    /// The minimum number of resolvers the attacker must compromise,
    /// `M = ceil(x * N)` with a floor of one.
    pub fn min_compromised_resolvers(&self) -> usize {
        if self.resolvers == 0 {
            return 0;
        }
        let m = (self.required_resolver_fraction() * self.resolvers as f64).ceil() as usize; // sdoh-lint: allow(no-narrowing-cast, "float-to-int as-casts saturate and map NaN to zero")
        m.clamp(1, self.resolvers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x_equals_y() {
        let model = AttackModel::new(5, 0.1, 0.5);
        assert_eq!(model.required_resolver_fraction(), 0.5);
    }

    #[test]
    fn minimum_compromised_resolvers() {
        // ceil(2/3 * 3) = 2 — the paper's "p^2 with only 3 resolvers".
        assert_eq!(
            AttackModel::figure1_example(0.1).min_compromised_resolvers(),
            2
        );
        assert_eq!(AttackModel::new(3, 0.1, 0.5).min_compromised_resolvers(), 2);
        assert_eq!(AttackModel::new(4, 0.1, 0.5).min_compromised_resolvers(), 2);
        assert_eq!(AttackModel::new(5, 0.1, 0.5).min_compromised_resolvers(), 3);
        assert_eq!(
            AttackModel::new(15, 0.1, 2.0 / 3.0).min_compromised_resolvers(),
            10
        );
        // Degenerate cases.
        assert_eq!(AttackModel::new(0, 0.1, 0.5).min_compromised_resolvers(), 0);
        assert_eq!(AttackModel::new(3, 0.1, 0.0).min_compromised_resolvers(), 1);
        assert_eq!(AttackModel::new(3, 0.1, 1.0).min_compromised_resolvers(), 3);
    }
}
