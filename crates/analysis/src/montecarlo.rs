//! Monte-Carlo validation of the closed-form analysis.
//!
//! The simulation draws, for each trial, which resolvers the attacker
//! compromised (each independently with probability `p_attack`), builds the
//! pool exactly the way Algorithm 1 does (each resolver contributes `K`
//! slots; compromised resolvers contribute attacker addresses) and checks
//! whether the attacker reached its goal fraction of the pool.

use std::net::{IpAddr, Ipv4Addr};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use sdoh_core::{AddressPool, GroundTruth};

use crate::model::AttackModel;

/// Result of a Monte-Carlo estimation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloEstimate {
    /// Number of trials performed.
    pub trials: u64,
    /// Number of trials in which the attack succeeded.
    pub successes: u64,
    /// Empirical success probability.
    pub probability: f64,
    /// Half-width of a ~95% normal-approximation confidence interval.
    pub confidence_halfwidth: f64,
}

impl MonteCarloEstimate {
    fn from_counts(trials: u64, successes: u64) -> Self {
        let probability = if trials == 0 {
            0.0
        } else {
            successes as f64 / trials as f64
        };
        let variance = probability * (1.0 - probability) / trials.max(1) as f64;
        MonteCarloEstimate {
            trials,
            successes,
            probability,
            confidence_halfwidth: 1.96 * variance.sqrt(),
        }
    }

    /// Returns `true` when `value` lies within the confidence interval
    /// widened by `slack`.
    pub fn consistent_with(&self, value: f64, slack: f64) -> bool {
        (self.probability - value).abs() <= self.confidence_halfwidth + slack
    }
}

/// Estimates the probability that the attacker compromises at least
/// `M = ceil(x N)` resolvers, by direct sampling of the compromise events.
pub fn estimate_resolver_compromise(
    model: &AttackModel,
    trials: u64,
    seed: u64,
) -> MonteCarloEstimate {
    let mut rng = StdRng::seed_from_u64(seed);
    let threshold = model.min_compromised_resolvers();
    let mut successes = 0u64;
    for _ in 0..trials {
        let compromised = (0..model.resolvers)
            .filter(|_| rng.gen::<f64>() < model.p_attack)
            .count();
        // threshold == 0 means the attacker's goal is trivially reached.
        if threshold == 0 || compromised >= threshold {
            successes += 1;
        }
    }
    MonteCarloEstimate::from_counts(trials, successes)
}

/// Estimates the probability that the attacker ends up controlling at least
/// the goal fraction of the *pool built by Algorithm 1*, constructing the
/// pool explicitly each trial. This validates that the pool-level goal and
/// the resolver-level threshold coincide (Section III-a).
pub fn estimate_pool_capture(model: &AttackModel, trials: u64, seed: u64) -> MonteCarloEstimate {
    let mut rng = StdRng::seed_from_u64(seed);
    let k = model.addresses_per_resolver.max(1);
    let mut successes = 0u64;
    for _ in 0..trials {
        let mut pool = AddressPool::new();
        let mut truth = GroundTruth::all_benign();
        for resolver in 0..model.resolvers {
            let compromised = rng.gen::<f64>() < model.p_attack;
            for slot in 0..k {
                let addr: IpAddr = if compromised {
                    let a = Ipv4Addr::new(198, 18, resolver as u8, slot as u8); // sdoh-lint: allow(no-narrowing-cast, "simulated resolver and slot counts stay below 256")
                    truth.mark_malicious(IpAddr::V4(a));
                    IpAddr::V4(a)
                } else {
                    let a = Ipv4Addr::new(203, 0, resolver as u8, slot as u8); // sdoh-lint: allow(no-narrowing-cast, "simulated resolver and slot counts stay below 256")
                    IpAddr::V4(a)
                };
                pool.push(addr, format!("resolver-{resolver}"));
            }
        }
        if sdoh_core::attacker_controls_fraction(&pool, &truth, model.required_pool_fraction) {
            successes += 1;
        }
    }
    MonteCarloEstimate::from_counts(trials, successes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::attack_probability_exact;

    #[test]
    fn estimate_matches_exact_probability() {
        let model = AttackModel::new(5, 0.3, 0.5);
        let exact = attack_probability_exact(&model);
        let estimate = estimate_resolver_compromise(&model, 20_000, 42);
        assert!(
            estimate.consistent_with(exact, 0.01),
            "estimate {} vs exact {exact}",
            estimate.probability
        );
    }

    #[test]
    fn pool_capture_matches_resolver_compromise() {
        let model = AttackModel::new(7, 0.25, 0.5);
        let a = estimate_resolver_compromise(&model, 10_000, 7);
        let b = estimate_pool_capture(&model, 10_000, 8);
        assert!(
            (a.probability - b.probability).abs() < 0.03,
            "pool-level ({}) and resolver-level ({}) views must agree",
            b.probability,
            a.probability
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let model = AttackModel::new(5, 0.2, 0.5);
        let a = estimate_resolver_compromise(&model, 1_000, 99);
        let b = estimate_resolver_compromise(&model, 1_000, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn extremes() {
        let never = AttackModel::new(5, 0.0, 0.5);
        assert_eq!(estimate_resolver_compromise(&never, 1_000, 1).successes, 0);
        let always = AttackModel::new(5, 1.0, 0.5);
        assert_eq!(
            estimate_resolver_compromise(&always, 1_000, 1).successes,
            1_000
        );
        let zero_trials = estimate_resolver_compromise(&never, 0, 1);
        assert_eq!(zero_trials.probability, 0.0);
    }

    #[test]
    fn confidence_interval_shrinks_with_trials() {
        let model = AttackModel::new(5, 0.3, 0.5);
        let small = estimate_resolver_compromise(&model, 500, 3);
        let large = estimate_resolver_compromise(&model, 50_000, 3);
        assert!(large.confidence_halfwidth < small.confidence_halfwidth);
    }
}
