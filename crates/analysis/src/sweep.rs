//! Parameter sweeps that regenerate the quantitative claims of Section III.

use serde::{Deserialize, Serialize};

use crate::analytic::{attack_probability_exact, attack_probability_paper};
use crate::model::AttackModel;
use crate::montecarlo::{estimate_resolver_compromise, MonteCarloEstimate};
use crate::table::{fmt_probability, Table};

/// One point of the attack-probability sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Number of resolvers.
    pub resolvers: usize,
    /// Per-resolver attack probability.
    pub p_attack: f64,
    /// The paper's `p^M` bound.
    pub paper_bound: f64,
    /// Exact binomial-tail probability.
    pub exact: f64,
    /// Monte-Carlo estimate.
    pub simulated: MonteCarloEstimate,
}

/// Sweeps the number of resolvers for a fixed `p_attack` and goal fraction.
pub fn sweep_resolver_count(
    resolver_counts: &[usize],
    p_attack: f64,
    required_pool_fraction: f64,
    trials: u64,
    seed: u64,
) -> Vec<SweepPoint> {
    resolver_counts
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let model = AttackModel::new(n, p_attack, required_pool_fraction);
            SweepPoint {
                resolvers: n,
                p_attack,
                paper_bound: attack_probability_paper(&model),
                exact: attack_probability_exact(&model),
                simulated: estimate_resolver_compromise(
                    &model,
                    trials,
                    seed.wrapping_add(i as u64), // sdoh-lint: allow(no-narrowing-cast, "usize to u64 never loses value on supported targets")
                ),
            }
        })
        .collect()
}

/// Sweeps `p_attack` for a fixed number of resolvers and goal fraction.
pub fn sweep_attack_probability(
    resolvers: usize,
    p_values: &[f64],
    required_pool_fraction: f64,
    trials: u64,
    seed: u64,
) -> Vec<SweepPoint> {
    p_values
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let model = AttackModel::new(resolvers, p, required_pool_fraction);
            SweepPoint {
                resolvers,
                p_attack: p,
                paper_bound: attack_probability_paper(&model),
                exact: attack_probability_exact(&model),
                simulated: estimate_resolver_compromise(
                    &model,
                    trials,
                    seed.wrapping_add(i as u64), // sdoh-lint: allow(no-narrowing-cast, "usize to u64 never loses value on supported targets")
                ),
            }
        })
        .collect()
}

/// Renders sweep points as a table comparing the bound, the exact value and
/// the simulation.
pub fn sweep_table(title: &str, points: &[SweepPoint]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "N",
            "p_attack",
            "M=ceil(xN)",
            "paper p^M",
            "exact tail",
            "monte-carlo",
        ],
    );
    for point in points {
        let model = AttackModel::new(point.resolvers, point.p_attack, 0.5);
        // M depends only on N and the fraction used during the sweep, but we
        // recompute it from the stored fields for display purposes.
        let m = if point.paper_bound > 0.0 && point.p_attack > 0.0 && point.p_attack < 1.0 {
            (point.paper_bound.ln() / point.p_attack.ln()).round() as usize // sdoh-lint: allow(no-narrowing-cast, "float-to-int as-casts saturate and map NaN to zero")
        } else {
            model.min_compromised_resolvers()
        };
        table.push_row([
            point.resolvers.to_string(),
            format!("{:.3}", point.p_attack),
            m.to_string(),
            fmt_probability(point.paper_bound),
            fmt_probability(point.exact),
            fmt_probability(point.simulated.probability),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolver_sweep_is_monotonically_safer() {
        let points = sweep_resolver_count(&[3, 5, 9, 15], 0.2, 0.5, 4_000, 1);
        assert_eq!(points.len(), 4);
        for pair in points.windows(2) {
            assert!(
                pair[1].exact <= pair[0].exact + 1e-12,
                "more resolvers must not increase the attack probability"
            );
        }
        // Simulation agrees with the exact value everywhere.
        for point in &points {
            assert!(point.simulated.consistent_with(point.exact, 0.02));
        }
    }

    #[test]
    fn probability_sweep_is_monotone_in_p() {
        let points = sweep_attack_probability(5, &[0.05, 0.1, 0.3, 0.6, 0.9], 0.5, 2_000, 2);
        for pair in points.windows(2) {
            assert!(pair[1].exact >= pair[0].exact);
            assert!(pair[1].paper_bound >= pair[0].paper_bound);
        }
    }

    #[test]
    fn table_rendering_includes_all_points() {
        let points = sweep_resolver_count(&[3, 7], 0.1, 0.5, 500, 3);
        let table = sweep_table("E3", &points);
        assert_eq!(table.len(), 2);
        let md = table.to_markdown();
        assert!(md.contains("E3"));
        assert!(md.contains("| 3 |"));
        assert!(md.contains("| 7 |"));
    }
}
