//! Machine-readable campaign reports and the event trace.
//!
//! A [`ChaosReport`] is the complete record of one campaign: the ledger,
//! the faults applied, every recorded violation and the append-ordered
//! event trace. Both renderings are deterministic — [`ChaosReport::to_json`]
//! and [`ChaosReport::trace_text`] are byte-identical across runs of the
//! same seed (fault counts live in a `BTreeMap`, floats are printed with
//! fixed precision, and nothing reads the host clock).

use std::collections::BTreeMap;

use sdoh_netsim::Metrics;

use crate::monitor::Violation;

/// One line of the campaign's append-ordered event trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The step the event happened at.
    pub step: u64,
    /// Event category: `fault`, `sync` or `violation`.
    pub kind: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

/// The complete record of one chaos campaign.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Campaign seed (reproduces the whole run).
    pub seed: u64,
    /// Steps executed.
    pub steps: u64,
    /// Stack label (`hardened` or `weak-baseline`).
    pub stack: String,
    /// Queries issued by the workload.
    pub queries_issued: u64,
    /// Queries answered successfully.
    pub queries_answered: u64,
    /// Queries denied with an error response.
    pub queries_denied: u64,
    /// Queries lost to the network.
    pub queries_lost: u64,
    /// Guarantee checks evaluated.
    pub guarantee_checks: u64,
    /// Synchronization attempts.
    pub syncs: u64,
    /// Failed synchronization attempts (clock untouched).
    pub sync_failures: u64,
    /// Pool re-pulls performed by the time client.
    pub pool_refreshes: u64,
    /// Largest `|offset_from_true|` right after a successful sync.
    pub max_abs_offset_after_sync: f64,
    /// Faults applied, counted per category label.
    pub faults_applied: BTreeMap<&'static str, u64>,
    /// Exact number of invariant breaches.
    pub total_violations: u64,
    /// Recorded breaches (capped at
    /// [`MAX_RECORDED_VIOLATIONS`](crate::monitor::MAX_RECORDED_VIOLATIONS)).
    pub violations: Vec<Violation>,
    /// Network counters at the end of the campaign.
    pub net: Metrics,
    /// Append-ordered event trace (faults, syncs, violations).
    pub trace: Vec<TraceEvent>,
    /// Readiness verdict: the campaign completed with zero violations.
    pub ready: bool,
}

impl ChaosReport {
    /// Renders the event trace as text, one line per event. Byte-identical
    /// for the same seed.
    pub fn trace_text(&self) -> String {
        let mut text = String::new();
        for event in &self.trace {
            text.push_str(&format!(
                "step {:06} {:<9} {}\n",
                event.step, event.kind, event.detail
            ));
        }
        text
    }

    /// Renders the report as a `BENCH_chaos.json`-shaped document.
    /// `recorded` is the date stamp (callers pass `BENCH_RECORDED_DATE` or
    /// `"unrecorded"` so the output stays reproducible).
    pub fn to_json(&self, recorded: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"recorded\": {},\n", json_string(recorded)));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"steps\": {},\n", self.steps));
        out.push_str(&format!("  \"stack\": {},\n", json_string(&self.stack)));
        out.push_str("  \"workload\": {\n");
        out.push_str(&format!(
            "    \"queries_issued\": {},\n",
            self.queries_issued
        ));
        out.push_str(&format!(
            "    \"queries_answered\": {},\n",
            self.queries_answered
        ));
        out.push_str(&format!(
            "    \"queries_denied\": {},\n",
            self.queries_denied
        ));
        out.push_str(&format!("    \"queries_lost\": {},\n", self.queries_lost));
        out.push_str(&format!(
            "    \"guarantee_checks\": {},\n",
            self.guarantee_checks
        ));
        out.push_str(&format!("    \"syncs\": {},\n", self.syncs));
        out.push_str(&format!("    \"sync_failures\": {},\n", self.sync_failures));
        out.push_str(&format!(
            "    \"pool_refreshes\": {},\n",
            self.pool_refreshes
        ));
        out.push_str(&format!(
            "    \"max_abs_offset_after_sync\": {:.6}\n",
            self.max_abs_offset_after_sync
        ));
        out.push_str("  },\n");

        out.push_str("  \"faults_applied\": {");
        let mut first = true;
        for (label, count) in &self.faults_applied {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{label}\": {count}"));
        }
        if !self.faults_applied.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");

        out.push_str("  \"net\": {\n");
        out.push_str(&format!("    \"requests\": {},\n", self.net.requests));
        out.push_str(&format!("    \"responses\": {},\n", self.net.responses));
        out.push_str(&format!("    \"timeouts\": {},\n", self.net.timeouts));
        out.push_str(&format!(
            "    \"forged_responses\": {},\n",
            self.net.forged_responses
        ));
        out.push_str(&format!(
            "    \"duplicated_requests\": {},\n",
            self.net.duplicated_requests
        ));
        out.push_str(&format!(
            "    \"reordered_responses\": {}\n",
            self.net.reordered_responses
        ));
        out.push_str("  },\n");

        out.push_str(&format!(
            "  \"total_violations\": {},\n",
            self.total_violations
        ));
        out.push_str(&format!(
            "  \"recorded_violations\": {},\n",
            self.violations.len()
        ));
        out.push_str("  \"violations\": [");
        for (i, violation) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"step\": {}, \"invariant\": {}, \"detail\": {}}}",
                violation.step,
                json_string(violation.invariant),
                json_string(&violation.detail)
            ));
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str(&format!("  \"trace_events\": {},\n", self.trace.len()));
        out.push_str(&format!("  \"ready\": {}\n", self.ready));
        out.push_str("}\n");
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ChaosReport {
        let mut faults = BTreeMap::new();
        faults.insert("degrade_links", 3);
        faults.insert("spoofer_on", 1);
        ChaosReport {
            seed: 42,
            steps: 100,
            stack: "hardened".to_string(),
            queries_issued: 200,
            queries_answered: 190,
            queries_denied: 4,
            queries_lost: 6,
            guarantee_checks: 194,
            syncs: 4,
            sync_failures: 1,
            pool_refreshes: 2,
            max_abs_offset_after_sync: 0.012345,
            faults_applied: faults,
            total_violations: 1,
            violations: vec![Violation {
                step: 17,
                invariant: "pool_guarantee",
                detail: "served \"bad\" pool".to_string(),
            }],
            net: Metrics::new(),
            trace: vec![
                TraceEvent {
                    step: 0,
                    kind: "fault",
                    detail: "spoofer on (64 attempts per query)".to_string(),
                },
                TraceEvent {
                    step: 17,
                    kind: "violation",
                    detail: "pool_guarantee".to_string(),
                },
            ],
            ready: false,
        }
    }

    #[test]
    fn json_is_well_formed_and_stable() {
        let report = sample_report();
        let a = report.to_json("2026-01-01");
        let b = report.to_json("2026-01-01");
        assert_eq!(a, b);
        assert!(a.contains("\"seed\": 42"));
        assert!(a.contains("\"degrade_links\": 3"));
        assert!(a.contains("\"ready\": false"));
        assert!(a.contains("\\\"bad\\\""));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn trace_text_is_one_line_per_event() {
        let report = sample_report();
        let text = report.trace_text();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("step 000000 fault"));
        assert!(text.contains("step 000017 violation pool_guarantee"));
    }

    #[test]
    fn json_string_escapes_control_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
