//! The fault vocabulary and the seeded fault scheduler.
//!
//! A [`FaultPlan`] is a deterministic function of `(seed, steps, mix,
//! resolvers)`: the whole campaign schedule exists before the first step
//! runs, so a report can be reproduced — and a failure replayed — from the
//! seed alone. Faults come in three shapes:
//!
//! * **windows** — a start fault paired with an end fault some steps later
//!   (link degradation, resolver partitions, resolver churn, resolver
//!   compromise, spoofer activation, clock drift);
//! * **one-shots** — applied once (local clock steps, simulated time
//!   jumps);
//! * **pins** — injected by the caller via [`FaultPlan::push`] on top of
//!   the generated schedule (e.g. a persistent spoofer from step 0).
//!
//! The planner keeps **at most one resolver incident active at a time**
//! (partition, kill or compromise) and schedules the matching heal before
//! the next incident starts. With the scenario's three-resolver fleet this
//! keeps the honest majority intact throughout, so a hardened stack is
//! *expected* to survive the whole schedule with zero invariant
//! violations — any violation is a real bug, not planner noise.

use std::collections::BTreeMap;

use sdoh_netsim::SimRng;

/// One fault applied to the running campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Degrade every default link: loss, duplication and reordering
    /// probabilities plus extra one-way latency (milliseconds).
    DegradeLinks {
        /// Packet-loss probability applied to plain exchanges.
        loss: f64,
        /// Request-duplication probability.
        duplicate: f64,
        /// Response-reordering probability (50 ms hold-back window).
        reorder: f64,
        /// Extra one-way latency in milliseconds.
        extra_latency_ms: u64,
    },
    /// Restore the baseline default link.
    HealLinks,
    /// Partition the resolver at `index` from both the client host and the
    /// serving front end (its links drop everything).
    PartitionResolver {
        /// Index into the scenario's resolver fleet.
        index: usize,
    },
    /// Heal the partition around resolver `index`.
    HealPartition {
        /// Index into the scenario's resolver fleet.
        index: usize,
    },
    /// Unregister the resolver at `index` (the process died).
    KillResolver {
        /// Index into the scenario's resolver fleet.
        index: usize,
    },
    /// Reinstall the resolver at `index` with a cold cache (a replacement
    /// instance came up).
    ReviveResolver {
        /// Index into the scenario's resolver fleet.
        index: usize,
    },
    /// Reinstall the resolver at `index` as a compromised instance that
    /// inflates every pool answer with appended attacker addresses — the
    /// compromise Algorithm 1's truncation is built to absorb.
    CompromiseResolver {
        /// Index into the scenario's resolver fleet.
        index: usize,
    },
    /// Reinstall the resolver at `index` as an honest instance again.
    RestoreResolver {
        /// Index into the scenario's resolver fleet.
        index: usize,
    },
    /// Attach the off-path birthday spoofer racing every plain query for
    /// the pool zone with this many forged attempts.
    SpooferOn {
        /// Forged responses raced per query.
        attempts: u32,
    },
    /// Detach the off-path spoofer.
    SpooferOff,
    /// Step the campaign's local clock by this many seconds (a misset
    /// client clock the next synchronization must correct).
    ClockStep {
        /// Signed step in seconds.
        seconds: f64,
    },
    /// Jump simulated time forward by this many seconds
    /// (`SimClock::step`) — everything ages at once: cache entries, pool
    /// TTLs, refresh deadlines.
    TimeJump {
        /// Forward jump in whole seconds.
        seconds: u64,
    },
    /// Set the simulated clock's drift rate in parts per million
    /// (`SimClock::set_drift`); zero clears an active drift window.
    ClockDrift {
        /// Signed drift rate in ppm.
        rate_ppm: i64,
    },
    /// Publish a new serving-config epoch on the caching front end: the
    /// TTL and stale window change mid-campaign while cached entries stay
    /// put. The invariant monitor's age bound widens to the maximum
    /// horizon any applied epoch allowed. A no-op on the weak baseline,
    /// which has no serving cache to retune.
    Reconfigure {
        /// New pool TTL in seconds.
        ttl_secs: u64,
        /// New stale window in seconds.
        stale_secs: u64,
    },
}

impl Fault {
    /// Short category label used for fault accounting in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Fault::DegradeLinks { .. } => "degrade_links",
            Fault::HealLinks => "heal_links",
            Fault::PartitionResolver { .. } => "partition_resolver",
            Fault::HealPartition { .. } => "heal_partition",
            Fault::KillResolver { .. } => "kill_resolver",
            Fault::ReviveResolver { .. } => "revive_resolver",
            Fault::CompromiseResolver { .. } => "compromise_resolver",
            Fault::RestoreResolver { .. } => "restore_resolver",
            Fault::SpooferOn { .. } => "spoofer_on",
            Fault::SpooferOff => "spoofer_off",
            Fault::ClockStep { .. } => "clock_step",
            Fault::TimeJump { .. } => "time_jump",
            Fault::ClockDrift { .. } => "clock_drift",
            Fault::Reconfigure { .. } => "reconfigure",
        }
    }

    /// Human-readable description used in the event trace.
    pub fn describe(&self) -> String {
        match self {
            Fault::DegradeLinks {
                loss,
                duplicate,
                reorder,
                extra_latency_ms,
            } => format!(
                "degrade links loss={loss:.4} duplicate={duplicate:.4} \
                 reorder={reorder:.4} extra_latency={extra_latency_ms}ms"
            ),
            Fault::HealLinks => "heal links".to_string(),
            Fault::PartitionResolver { index } => format!("partition resolver {index}"),
            Fault::HealPartition { index } => format!("heal partition around resolver {index}"),
            Fault::KillResolver { index } => format!("kill resolver {index}"),
            Fault::ReviveResolver { index } => format!("revive resolver {index}"),
            Fault::CompromiseResolver { index } => format!("compromise resolver {index}"),
            Fault::RestoreResolver { index } => format!("restore resolver {index}"),
            Fault::SpooferOn { attempts } => format!("spoofer on ({attempts} attempts per query)"),
            Fault::SpooferOff => "spoofer off".to_string(),
            Fault::ClockStep { seconds } => format!("step local clock by {seconds:+.1}s"),
            Fault::TimeJump { seconds } => format!("jump simulated time forward {seconds}s"),
            Fault::ClockDrift { rate_ppm } => {
                if *rate_ppm == 0 {
                    "clear simulated clock drift".to_string()
                } else {
                    format!("drift simulated clock at {rate_ppm:+} ppm")
                }
            }
            Fault::Reconfigure {
                ttl_secs,
                stale_secs,
            } => format!("reconfigure serving: ttl={ttl_secs}s stale_window={stale_secs}s"),
        }
    }
}

/// A fault scheduled at a campaign step.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// The step (0-based) the fault is applied at, before that step's
    /// workload runs.
    pub step: u64,
    /// The fault itself.
    pub fault: Fault,
}

/// Per-step probabilities of *starting* each fault category. Window
/// durations are sampled by the planner; an active window suppresses new
/// starts of the same category (and resolver incidents suppress each
/// other).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultMix {
    /// Start a link-degradation window.
    pub degrade: f64,
    /// Start a resolver partition.
    pub partition: f64,
    /// Start a kill/revive churn incident.
    pub churn: f64,
    /// Start a compromise/restore incident.
    pub compromise: f64,
    /// Start an off-path spoofer window.
    pub spoofer: f64,
    /// One-shot local clock step.
    pub clock_step: f64,
    /// One-shot simulated time jump.
    pub time_jump: f64,
    /// Start a simulated clock-drift window.
    pub drift: f64,
    /// One-shot serving-config epoch switch (TTL / stale window).
    pub reconfigure: f64,
}

impl FaultMix {
    /// The mixed-adversary default: every category enabled at rates that
    /// overlap link faults, resolver incidents, an off-path attacker and
    /// clock trouble within a thousand-step campaign.
    pub fn mixed() -> Self {
        FaultMix {
            degrade: 0.05,
            partition: 0.02,
            churn: 0.02,
            compromise: 0.02,
            spoofer: 0.02,
            clock_step: 0.01,
            time_jump: 0.005,
            drift: 0.01,
            reconfigure: 0.01,
        }
    }

    /// No faults at all — a control campaign exercising only the workload
    /// and the invariant monitor.
    pub fn calm() -> Self {
        FaultMix {
            degrade: 0.0,
            partition: 0.0,
            churn: 0.0,
            compromise: 0.0,
            spoofer: 0.0,
            clock_step: 0.0,
            time_jump: 0.0,
            drift: 0.0,
            reconfigure: 0.0,
        }
    }
}

impl Default for FaultMix {
    fn default() -> Self {
        FaultMix::mixed()
    }
}

/// The complete, pre-computed fault schedule of a campaign.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Generates the schedule for a `steps`-step campaign over a
    /// `resolvers`-strong fleet. Deterministic: the same arguments always
    /// produce the same plan.
    pub fn generate(seed: u64, steps: u64, mix: &FaultMix, resolvers: usize) -> Self {
        let mut master = SimRng::seed_from_u64(seed ^ 0xC4A0_5000);
        // Independent streams per category, forked in fixed order, so the
        // schedule of one category never perturbs another's.
        let mut link_rng = master.fork("chaos-links");
        let mut incident_rng = master.fork("chaos-incidents");
        let mut spoofer_rng = master.fork("chaos-spoofer");
        let mut clock_rng = master.fork("chaos-clock");
        let mut reconfig_rng = master.fork("chaos-reconfig");

        let mut events = Vec::new();
        // Window-end faults pending at a future step; drained (in insertion
        // order) before new windows may start at that step.
        let mut pending: BTreeMap<u64, Vec<Fault>> = BTreeMap::new();
        let mut links_until: Option<u64> = None;
        let mut incident_until: Option<u64> = None;
        let mut spoofer_until: Option<u64> = None;
        let mut drift_until: Option<u64> = None;

        for step in 0..steps {
            if let Some(ends) = pending.remove(&step) {
                for fault in ends {
                    events.push(FaultEvent { step, fault });
                }
            }
            for until in [
                &mut links_until,
                &mut incident_until,
                &mut spoofer_until,
                &mut drift_until,
            ] {
                if until.is_some_and(|end| end <= step) {
                    *until = None;
                }
            }

            if links_until.is_none() && link_rng.chance(mix.degrade) {
                let loss = link_rng.range_u64(0, 3001) as f64 / 10_000.0;
                let duplicate = link_rng.range_u64(0, 3001) as f64 / 10_000.0;
                let reorder = link_rng.range_u64(0, 3001) as f64 / 10_000.0;
                let extra_latency_ms = link_rng.range_u64(0, 101);
                let end = step + link_rng.range_u64(3, 16);
                events.push(FaultEvent {
                    step,
                    fault: Fault::DegradeLinks {
                        loss,
                        duplicate,
                        reorder,
                        extra_latency_ms,
                    },
                });
                pending.entry(end).or_default().push(Fault::HealLinks);
                links_until = Some(end);
            }

            if incident_until.is_none() && resolvers > 0 {
                let index = incident_rng.range_u64(0, resolvers as u64) as usize; // sdoh-lint: allow(no-narrowing-cast, "usize to u64 never loses value on supported targets, and the draw is below resolvers")
                let duration = incident_rng.range_u64(5, 41);
                let incident = if incident_rng.chance(mix.partition) {
                    Some((
                        Fault::PartitionResolver { index },
                        Fault::HealPartition { index },
                    ))
                } else if incident_rng.chance(mix.churn) {
                    Some((
                        Fault::KillResolver { index },
                        Fault::ReviveResolver { index },
                    ))
                } else if incident_rng.chance(mix.compromise) {
                    Some((
                        Fault::CompromiseResolver { index },
                        Fault::RestoreResolver { index },
                    ))
                } else {
                    None
                };
                if let Some((start, end_fault)) = incident {
                    let end = step + duration;
                    events.push(FaultEvent { step, fault: start });
                    pending.entry(end).or_default().push(end_fault);
                    incident_until = Some(end);
                }
            }

            if spoofer_until.is_none() && spoofer_rng.chance(mix.spoofer) {
                let attempts = u32::try_from(spoofer_rng.range_u64(32, 129)).unwrap_or(u32::MAX);
                let end = step + spoofer_rng.range_u64(20, 61);
                events.push(FaultEvent {
                    step,
                    fault: Fault::SpooferOn { attempts },
                });
                pending.entry(end).or_default().push(Fault::SpooferOff);
                spoofer_until = Some(end);
            }

            if clock_rng.chance(mix.clock_step) {
                let magnitude = clock_rng.range_u64(5, 21) as f64;
                let seconds = if clock_rng.chance(0.5) {
                    magnitude
                } else {
                    -magnitude
                };
                events.push(FaultEvent {
                    step,
                    fault: Fault::ClockStep { seconds },
                });
            }
            if clock_rng.chance(mix.time_jump) {
                let seconds = clock_rng.range_u64(30, 301);
                events.push(FaultEvent {
                    step,
                    fault: Fault::TimeJump { seconds },
                });
            }
            if drift_until.is_none() && clock_rng.chance(mix.drift) {
                let magnitude = i64::try_from(clock_rng.range_u64(100, 2001)).unwrap_or(i64::MAX);
                let rate_ppm = if clock_rng.chance(0.5) {
                    magnitude
                } else {
                    -magnitude
                };
                let end = step + clock_rng.range_u64(5, 31);
                events.push(FaultEvent {
                    step,
                    fault: Fault::ClockDrift { rate_ppm },
                });
                pending
                    .entry(end)
                    .or_default()
                    .push(Fault::ClockDrift { rate_ppm: 0 });
                drift_until = Some(end);
            }
            if reconfig_rng.chance(mix.reconfigure) {
                // One-shot epoch switches; horizons from a 5 s hard TTL to
                // a 10 s TTL with a two-minute stale tail.
                let ttl_secs = reconfig_rng.range_u64(5, 121);
                let stale_secs = reconfig_rng.range_u64(0, 121);
                events.push(FaultEvent {
                    step,
                    fault: Fault::Reconfigure {
                        ttl_secs,
                        stale_secs,
                    },
                });
            }
        }

        FaultPlan { events }
    }

    /// Pins an extra fault into the schedule (stable-sorted by step, after
    /// any generated fault of the same step).
    pub fn push(&mut self, step: u64, fault: Fault) {
        self.events.push(FaultEvent { step, fault });
        self.events.sort_by_key(|event| event.step);
    }

    /// The scheduled events, ordered by step (ends of a step's expiring
    /// windows before that step's new starts).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Event counts per category label.
    pub fn counts(&self) -> BTreeMap<&'static str, u64> {
        let mut counts = BTreeMap::new();
        for event in &self.events {
            *counts.entry(event.fault.label()).or_insert(0) += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = FaultPlan::generate(11, 500, &FaultMix::mixed(), 3);
        let b = FaultPlan::generate(11, 500, &FaultMix::mixed(), 3);
        assert_eq!(a.events(), b.events());
        assert!(!a.is_empty());
        let c = FaultPlan::generate(12, 500, &FaultMix::mixed(), 3);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn calm_mix_schedules_nothing() {
        let plan = FaultPlan::generate(1, 1000, &FaultMix::calm(), 3);
        assert!(plan.is_empty());
    }

    #[test]
    fn windows_are_paired_and_incidents_never_overlap() {
        let plan = FaultPlan::generate(7, 2000, &FaultMix::mixed(), 3);
        let mut open_incidents: i64 = 0;
        let mut starts = 0u64;
        let mut ends = 0u64;
        for event in plan.events() {
            match event.fault {
                Fault::PartitionResolver { .. }
                | Fault::KillResolver { .. }
                | Fault::CompromiseResolver { .. } => {
                    starts += 1;
                    open_incidents += 1;
                    assert!(
                        open_incidents <= 1,
                        "two resolver incidents overlap at step {}",
                        event.step
                    );
                }
                Fault::HealPartition { .. }
                | Fault::ReviveResolver { .. }
                | Fault::RestoreResolver { .. } => {
                    ends += 1;
                    open_incidents -= 1;
                }
                _ => {}
            }
        }
        assert!(starts > 0, "mixed plan should schedule resolver incidents");
        // Every incident that ends within the horizon was opened before it.
        assert!(ends <= starts);
        assert!(starts - ends <= 1);
    }

    #[test]
    fn mixed_plan_covers_every_category() {
        let counts = FaultPlan::generate(42, 2000, &FaultMix::mixed(), 3).counts();
        for label in [
            "degrade_links",
            "heal_links",
            "spoofer_on",
            "clock_step",
            "time_jump",
            "clock_drift",
            "reconfigure",
        ] {
            assert!(counts.contains_key(label), "missing {label}: {counts:?}");
        }
        let incidents = counts.get("partition_resolver").copied().unwrap_or(0)
            + counts.get("kill_resolver").copied().unwrap_or(0)
            + counts.get("compromise_resolver").copied().unwrap_or(0);
        assert!(incidents > 0, "no resolver incidents scheduled: {counts:?}");
    }

    #[test]
    fn push_pins_extra_faults_in_step_order() {
        let mut plan = FaultPlan::generate(3, 100, &FaultMix::mixed(), 3);
        plan.push(0, Fault::SpooferOn { attempts: 64 });
        assert!(plan
            .events()
            .windows(2)
            .all(|pair| pair[0].step <= pair[1].step));
        assert!(plan
            .events()
            .iter()
            .any(|event| event.step == 0 && event.fault == Fault::SpooferOn { attempts: 64 }));
    }
}
