//! The invariant monitor: what a campaign checks after every step.
//!
//! The monitor owns the campaign ledger (queries issued / answered / lost
//! / denied, synchronizations, guarantee checks) and turns any breach of
//! the stack's safety properties into a recorded [`Violation`]:
//!
//! * **pool guarantee** — no served or synchronized-over pool may fail
//!   [`sdoh_core::check_guarantee`] against ground truth
//!   (`x = 1/2`), and a `NoError` answer with an empty address set counts
//!   as a breach too (an empty pool can never satisfy the guarantee);
//! * **clock discipline** — after every successful synchronization the
//!   local clock's `|offset_from_true|` must stay within the configured
//!   bound;
//! * **counter monotonicity** — neither the serving stack's
//!   [`ServeSnapshot`] counters nor the network's [`Metrics`] may ever
//!   decrease between successive observations;
//! * **cache age** — no live (non-dead) cache entry may be older than
//!   `TTL + stale window`;
//! * **accounting** — every issued query is answered, denied or lost:
//!   nothing vanishes and nothing is double-counted.
//!
//! Violations are counted exactly but only the first
//! [`MAX_RECORDED_VIOLATIONS`] are recorded in detail, keeping reports
//! bounded (and byte-identical) even when a weak stack fails thousands of
//! checks.

use sdoh_core::serve::{CacheEntryProbe, EntryState, ServeSnapshot};
use sdoh_core::{check_guarantee, AddressPool, GroundTruth};
use sdoh_netsim::Metrics;

/// Cap on violations recorded in detail (total counts stay exact).
pub const MAX_RECORDED_VIOLATIONS: usize = 100;

/// One invariant breach observed during a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The step the breach was observed at.
    pub step: u64,
    /// The invariant that failed.
    pub invariant: &'static str,
    /// Human-readable detail (what was observed, where).
    pub detail: String,
}

/// Tracks the campaign ledger and evaluates every invariant.
#[derive(Debug)]
pub struct InvariantMonitor {
    /// Bound on `|offset_from_true|` after a successful synchronization,
    /// in seconds.
    pub offset_bound: f64,
    /// Queries issued by the workload.
    pub queries_issued: u64,
    /// Queries answered with a `NoError` response.
    pub queries_answered: u64,
    /// Queries denied by the stack (error response codes).
    pub queries_denied: u64,
    /// Queries lost to the network (timeouts, partitions, dead services).
    pub queries_lost: u64,
    /// Guarantee checks evaluated.
    pub guarantee_checks: u64,
    /// Synchronization attempts.
    pub syncs: u64,
    /// Synchronization attempts that returned an error (the clock was left
    /// untouched — degraded availability, not a safety breach).
    pub sync_failures: u64,
    /// Largest `|offset_from_true|` seen right after a successful
    /// synchronization.
    pub max_abs_offset_after_sync: f64,
    violations: Vec<Violation>,
    total_violations: u64,
    last_snapshot: Option<ServeSnapshot>,
    last_net_metrics: Option<Metrics>,
    violations_counter: Option<sdoh_metrics::Counter>,
}

impl InvariantMonitor {
    /// Creates a monitor enforcing the given post-sync offset bound.
    pub fn new(offset_bound: f64) -> Self {
        InvariantMonitor {
            offset_bound,
            queries_issued: 0,
            queries_answered: 0,
            queries_denied: 0,
            queries_lost: 0,
            guarantee_checks: 0,
            syncs: 0,
            sync_failures: 0,
            max_abs_offset_after_sync: 0.0,
            violations: Vec::new(),
            total_violations: 0,
            last_snapshot: None,
            last_net_metrics: None,
            violations_counter: None,
        }
    }

    /// Registers the monitor's breach counter into `registry`: every
    /// recorded violation also bumps `sdoh_invariant_violations_total`, so
    /// a chaos campaign's safety breaches surface on the same `/metrics`
    /// endpoint (and fleet rollups) as the serving counters.
    pub fn register_metrics(&mut self, registry: &sdoh_metrics::Registry) {
        let (name, help) = sdoh_core::METRIC_INVARIANT_VIOLATIONS;
        self.violations_counter = Some(registry.counter(name, help));
    }

    /// Records a breach (counted always, detailed up to the cap).
    pub fn record_violation(&mut self, step: u64, invariant: &'static str, detail: String) {
        self.total_violations += 1;
        if let Some(counter) = &self.violations_counter {
            counter.inc();
        }
        if self.violations.len() < MAX_RECORDED_VIOLATIONS {
            self.violations.push(Violation {
                step,
                invariant,
                detail,
            });
        }
    }

    /// Checks a pool against ground truth (`x = 1/2`); an empty pool or a
    /// failing guarantee is a breach. Returns whether the check held.
    pub fn check_pool(
        &mut self,
        step: u64,
        pool: &AddressPool,
        truth: &GroundTruth,
        context: &str,
    ) -> bool {
        self.guarantee_checks += 1;
        let check = check_guarantee(pool, truth, 0.5);
        if !check.holds {
            self.record_violation(
                step,
                "pool_guarantee",
                format!(
                    "{context}: benign fraction {:.4} over {} addresses fails x=1/2",
                    check.benign_fraction,
                    pool.len()
                ),
            );
        }
        check.holds
    }

    /// Checks the post-sync clock offset against the bound.
    pub fn check_offset(&mut self, step: u64, offset: f64) {
        if offset.abs() > self.max_abs_offset_after_sync {
            self.max_abs_offset_after_sync = offset.abs();
        }
        if offset.abs() > self.offset_bound {
            self.record_violation(
                step,
                "clock_offset",
                format!(
                    "offset_from_true {offset:+.6}s exceeds bound {:.3}s after sync",
                    self.offset_bound
                ),
            );
        }
    }

    /// Checks serving-stack counter monotonicity against the previous
    /// snapshot.
    pub fn check_snapshot(&mut self, step: u64, snapshot: ServeSnapshot) {
        if let Some(earlier) = &self.last_snapshot {
            for name in snapshot.regressions(earlier) {
                self.record_violation(
                    step,
                    "serve_counter_regression",
                    format!("monotone counter {name} decreased"),
                );
            }
        }
        self.last_snapshot = Some(snapshot);
    }

    /// Checks network-metrics monotonicity against the previous reading.
    pub fn check_net_metrics(&mut self, step: u64, metrics: Metrics) {
        if let Some(earlier) = &self.last_net_metrics {
            let pairs: [(&'static str, u64, u64); 13] = [
                ("net.requests", earlier.requests, metrics.requests),
                ("net.responses", earlier.responses, metrics.responses),
                ("net.timeouts", earlier.timeouts, metrics.timeouts),
                ("net.unreachable", earlier.unreachable, metrics.unreachable),
                ("net.bytes_sent", earlier.bytes_sent, metrics.bytes_sent),
                (
                    "net.bytes_received",
                    earlier.bytes_received,
                    metrics.bytes_received,
                ),
                (
                    "net.plain_requests",
                    earlier.plain_requests,
                    metrics.plain_requests,
                ),
                (
                    "net.secure_requests",
                    earlier.secure_requests,
                    metrics.secure_requests,
                ),
                (
                    "net.forged_responses",
                    earlier.forged_responses,
                    metrics.forged_responses,
                ),
                (
                    "net.replaced_responses",
                    earlier.replaced_responses,
                    metrics.replaced_responses,
                ),
                (
                    "net.adversary_drops",
                    earlier.adversary_drops,
                    metrics.adversary_drops,
                ),
                (
                    "net.duplicated_requests",
                    earlier.duplicated_requests,
                    metrics.duplicated_requests,
                ),
                (
                    "net.reordered_responses",
                    earlier.reordered_responses,
                    metrics.reordered_responses,
                ),
            ];
            for (name, before, after) in pairs {
                if after < before {
                    self.record_violation(
                        step,
                        "net_counter_regression",
                        format!("monotone counter {name} decreased ({before} -> {after})"),
                    );
                }
            }
        }
        self.last_net_metrics = Some(metrics);
    }

    /// Checks that no live cache entry exceeds `TTL + stale window` in age.
    pub fn check_cache_ages(
        &mut self,
        step: u64,
        probes: &[CacheEntryProbe],
        max_age: std::time::Duration,
    ) {
        for probe in probes {
            if probe.state != EntryState::Dead && probe.age > max_age {
                self.record_violation(
                    step,
                    "cache_entry_overage",
                    format!(
                        "{} ({:?}) is {:?} old, past the {:?} serve horizon",
                        probe.key, probe.state, probe.age, max_age
                    ),
                );
            }
        }
    }

    /// Checks the workload ledger: issued = answered + denied + lost.
    pub fn check_accounting(&mut self, step: u64) {
        let accounted = self.queries_answered + self.queries_denied + self.queries_lost;
        if accounted != self.queries_issued {
            self.record_violation(
                step,
                "workload_accounting",
                format!(
                    "issued {} != answered {} + denied {} + lost {}",
                    self.queries_issued,
                    self.queries_answered,
                    self.queries_denied,
                    self.queries_lost
                ),
            );
        }
    }

    /// The recorded violations (first [`MAX_RECORDED_VIOLATIONS`]).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Exact number of breaches observed.
    pub fn total_violations(&self) -> u64 {
        self.total_violations
    }

    /// Whether the campaign is clean so far.
    pub fn ready(&self) -> bool {
        self.total_violations == 0
    }
}

#[cfg(test)]
mod tests {
    use std::net::IpAddr;

    use super::*;

    fn pool_of(addrs: &[[u8; 4]]) -> AddressPool {
        let mut pool = AddressPool::new();
        for a in addrs {
            pool.push(
                IpAddr::V4(std::net::Ipv4Addr::new(a[0], a[1], a[2], a[3])),
                "test",
            );
        }
        pool
    }

    #[test]
    fn guarantee_and_offset_checks_record_violations() {
        let mut monitor = InvariantMonitor::new(1.0);
        let truth = GroundTruth::with_malicious([IpAddr::V4(std::net::Ipv4Addr::new(9, 9, 9, 9))]);
        assert!(monitor.check_pool(1, &pool_of(&[[1, 1, 1, 1], [2, 2, 2, 2]]), &truth, "good"));
        assert!(!monitor.check_pool(2, &pool_of(&[[9, 9, 9, 9]]), &truth, "bad"));
        monitor.check_offset(3, 0.05);
        monitor.check_offset(4, -1000.25);
        assert_eq!(monitor.total_violations(), 2);
        assert_eq!(monitor.violations()[0].invariant, "pool_guarantee");
        assert_eq!(monitor.violations()[1].invariant, "clock_offset");
        assert!((monitor.max_abs_offset_after_sync - 1000.25).abs() < 1e-9);
        assert!(!monitor.ready());
    }

    #[test]
    fn empty_pool_fails_the_guarantee() {
        let mut monitor = InvariantMonitor::new(1.0);
        let truth = GroundTruth::default();
        assert!(!monitor.check_pool(0, &AddressPool::new(), &truth, "empty"));
    }

    #[test]
    fn net_metric_regressions_are_caught() {
        let mut monitor = InvariantMonitor::new(1.0);
        let mut metrics = Metrics::new();
        metrics.requests = 10;
        metrics.responses = 8;
        monitor.check_net_metrics(1, metrics);
        let mut later = metrics;
        later.responses = 7;
        monitor.check_net_metrics(2, later);
        assert_eq!(monitor.total_violations(), 1);
        assert_eq!(monitor.violations()[0].invariant, "net_counter_regression");
    }

    #[test]
    fn accounting_mismatch_is_a_violation() {
        let mut monitor = InvariantMonitor::new(1.0);
        monitor.queries_issued = 5;
        monitor.queries_answered = 3;
        monitor.queries_lost = 1;
        monitor.check_accounting(9);
        assert_eq!(monitor.total_violations(), 1);
        monitor.queries_denied = 1;
        monitor.check_accounting(10);
        assert_eq!(monitor.total_violations(), 1);
    }

    #[test]
    fn registered_counter_mirrors_total_violations() {
        let registry = sdoh_metrics::Registry::new();
        let mut monitor = InvariantMonitor::new(1.0);
        monitor.register_metrics(&registry);
        assert!(registry.lint().is_empty(), "violation counter carries help");
        monitor.record_violation(1, "pool_guarantee", "first".to_string());
        monitor.check_offset(2, 99.0);
        let exported = registry
            .gather()
            .into_iter()
            .find(|s| s.name == "sdoh_invariant_violations_total")
            .expect("counter exported");
        assert_eq!(
            exported.value,
            sdoh_metrics::SampleValue::Counter(monitor.total_violations())
        );
        assert_eq!(monitor.total_violations(), 2);
    }

    #[test]
    fn recorded_violations_are_capped_but_counted_exactly() {
        let mut monitor = InvariantMonitor::new(1.0);
        for step in 0..(MAX_RECORDED_VIOLATIONS as u64 + 50) {
            monitor.record_violation(step, "pool_guarantee", "overflow test".to_string());
        }
        assert_eq!(monitor.violations().len(), MAX_RECORDED_VIOLATIONS);
        assert_eq!(
            monitor.total_violations(),
            MAX_RECORDED_VIOLATIONS as u64 + 50
        );
    }
}
