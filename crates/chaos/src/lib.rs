//! Deterministic chaos campaigns for the secure-DoH stack.
//!
//! This crate composes the workspace's simulation substrates into a
//! chaos-engineering harness: a seeded **fault scheduler**
//! ([`FaultPlan`]), an **invariant monitor** ([`InvariantMonitor`])
//! evaluated after every step, and a **campaign runner**
//! ([`run_campaign`]) that drives the full serve + timesync pipeline
//! through thousands of faulty steps and emits a machine-readable
//! readiness report ([`ChaosReport`]).
//!
//! # Chaos campaigns
//!
//! A campaign is a pure function of its [`CampaignConfig`]: the same seed
//! produces the same fault schedule, the same workload, the same event
//! trace and a byte-identical report — so a failing campaign is replayed
//! exactly from one `u64`. The fault vocabulary covers the failure modes
//! the paper's pipeline must absorb:
//!
//! * **network weather** — packet loss, request duplication, response
//!   reordering and latency spikes on every link
//!   ([`Fault::DegradeLinks`]);
//! * **partitions** — a resolver cut off from the client and the serving
//!   front end, later healed ([`Fault::PartitionResolver`]);
//! * **resolver churn** — instances dying mid-generation and replaced
//!   with cold caches ([`Fault::KillResolver`]), or coming back
//!   compromised and inflating every pool answer with attacker addresses
//!   ([`Fault::CompromiseResolver`]);
//! * **an active off-path attacker** — the Kaminsky-style birthday
//!   spoofer racing forged answers against every plain pool-zone query
//!   ([`Fault::SpooferOn`]);
//! * **clock trouble** — misset local clocks ([`Fault::ClockStep`]),
//!   simulated-time jumps ([`Fault::TimeJump`]) and clock drift
//!   ([`Fault::ClockDrift`]).
//!
//! After every step the monitor checks that no served pool violates the
//! paper's `x = 1/2` guarantee, that the disciplined clock stays within
//! its offset bound after each synchronization, that serving and network
//! counters never regress, that no cache entry outlives
//! `TTL + stale window`, and that every issued query is accounted for.
//! The hardened stack ([`StackKind::Hardened`]) is expected to complete a
//! mixed-adversary campaign with **zero** violations; the weak baseline
//! ([`StackKind::WeakBaseline`]) exists to prove the monitor detects real
//! breaches — an off-path spoofer poisons its predictable-id resolver,
//! and the report records the guarantee and clock-offset violations.
//!
//! ```
//! use sdoh_chaos::{run_campaign, CampaignConfig};
//!
//! // A short mixed-adversary campaign against the hardened stack.
//! let config = CampaignConfig::hardened(7, 40);
//! let report = run_campaign(&config);
//! assert!(report.ready, "violations: {:?}", report.violations);
//!
//! // Same seed, same campaign: byte-identical report and trace.
//! let replay = run_campaign(&config);
//! assert_eq!(report.to_json("doc"), replay.to_json("doc"));
//! assert_eq!(report.trace_text(), replay.trace_text());
//! ```
//!
//! The `exp_chaos` binary in `sdoh-bench` wraps this into the E15
//! experiment (`BENCH_chaos.json`): a hardened and a weak-baseline
//! campaign over the same schedule, plus a determinism self-check.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod fault;
pub mod monitor;
pub mod report;

pub use campaign::{run_campaign, CampaignConfig, StackKind, WorkloadConfig};
pub use fault::{Fault, FaultEvent, FaultMix, FaultPlan};
pub use monitor::{InvariantMonitor, Violation, MAX_RECORDED_VIOLATIONS};
pub use report::{ChaosReport, TraceEvent};
