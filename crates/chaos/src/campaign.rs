//! The campaign runner: drive the serve + timesync stack through a seeded
//! fault schedule and evaluate every invariant after every step.
//!
//! A campaign wires up the full Figure 1 scenario (DNS hierarchy, DoH
//! resolver fleet, ISP resolver, NTP fleet), picks a stack under test
//! ([`StackKind`]), pre-computes a [`FaultPlan`] and then runs
//! `steps` one-second steps. Each step applies the faults due at it,
//! advances simulated time, issues client lookups, periodically runs a
//! secure time synchronization, pumps the serving stack's background
//! refreshes and evaluates the [`InvariantMonitor`]. The outcome is a
//! [`ChaosReport`] that is byte-identical for the same
//! [`CampaignConfig`].

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use sdoh_core::{CacheConfig, CachingPoolResolver, PoolConfig, ServeConfig};
use sdoh_dns_server::{ClientExchanger, HardeningConfig, ResolveError, StubResolver};
use sdoh_dns_wire::Ttl;
use sdoh_netsim::LinkConfig;
use sdoh_ntp::{
    ChronosClient, ChronosConfig, ConsensusFrontEnd, LocalClock, NtpClient, SecureTimeClient,
    SingleResolverPool,
};
use secure_doh::scenario::{
    address_pool, KaminskyPayload, NtpFleetConfig, ResolverCompromise, Scenario, ScenarioConfig,
    CLIENT_ADDR, FRONTEND_ADDR, ISP_RESOLVER,
};

use crate::fault::{Fault, FaultEvent, FaultMix, FaultPlan};
use crate::monitor::InvariantMonitor;
use crate::report::{ChaosReport, TraceEvent};

/// Wall-clock length of one campaign step.
const STEP_DURATION: Duration = Duration::from_secs(1);

/// Attacker addresses a compromised resolver appends to its honest
/// answer. Kept below the honest pool size so that even a worst-case
/// generation answered by the compromised resolver alone stays far from
/// the `x = 1/2` guarantee boundary.
const INFLATE_ADDRESSES: usize = 4;

/// The stack a campaign exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackKind {
    /// The paper's pipeline: fully hardened resolvers, the caching
    /// consensus front end serving clients, and a [`SecureTimeClient`]
    /// synchronizing through it. Expected to survive a mixed-adversary
    /// campaign with zero violations.
    Hardened,
    /// The vulnerable baseline: a single plain-DNS ISP resolver with
    /// predictable transaction ids serving both lookups and the time
    /// client's pool. Expected to *fail* under an off-path spoofer — the
    /// campaign demonstrates that the monitor detects real breaches.
    WeakBaseline,
}

impl StackKind {
    /// Stable label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            StackKind::Hardened => "hardened",
            StackKind::WeakBaseline => "weak-baseline",
        }
    }
}

/// The client workload a campaign applies between faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Pool lookups issued per step (spread round-robin over the
    /// scenario's pool domains).
    pub clients_per_step: u32,
    /// Steps between secure time synchronizations.
    pub sync_interval: u64,
    /// Bound on `|offset_from_true|` right after a successful sync,
    /// seconds.
    pub offset_bound: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            clients_per_step: 2,
            sync_interval: 25,
            offset_bound: 1.0,
        }
    }
}

/// Everything a campaign depends on. Two identical configs produce
/// byte-identical reports.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed for the scenario, the fault plan and every random
    /// choice in between.
    pub seed: u64,
    /// Number of one-second steps to run.
    pub steps: u64,
    /// The stack under test.
    pub stack: StackKind,
    /// Per-step fault start probabilities.
    pub fault_mix: FaultMix,
    /// The client workload.
    pub workload: WorkloadConfig,
    /// Extra faults pinned on top of the generated plan (e.g. a
    /// persistent spoofer from step 0).
    pub pinned_faults: Vec<FaultEvent>,
    /// DoH resolvers in the fleet.
    pub resolvers: usize,
    /// Benign NTP servers published in the pool domains.
    pub ntp_servers: usize,
    /// Pool domains the workload spreads lookups over.
    pub pool_domains: usize,
}

impl CampaignConfig {
    /// A mixed-adversary campaign against the hardened stack.
    pub fn hardened(seed: u64, steps: u64) -> Self {
        CampaignConfig {
            seed,
            steps,
            stack: StackKind::Hardened,
            fault_mix: FaultMix::mixed(),
            workload: WorkloadConfig::default(),
            pinned_faults: Vec::new(),
            resolvers: 3,
            ntp_servers: 16,
            pool_domains: 2,
        }
    }

    /// The same campaign against the weak baseline.
    pub fn weak_baseline(seed: u64, steps: u64) -> Self {
        CampaignConfig {
            stack: StackKind::WeakBaseline,
            ..CampaignConfig::hardened(seed, steps)
        }
    }

    /// Pins a persistent off-path spoofer racing every plain pool-zone
    /// query from step 0 for the whole campaign.
    pub fn with_persistent_spoofer(mut self, attempts: u32) -> Self {
        self.pinned_faults.push(FaultEvent {
            step: 0,
            fault: Fault::SpooferOn { attempts },
        });
        self
    }
}

/// Runs one campaign to completion and reports.
pub fn run_campaign(config: &CampaignConfig) -> ChaosReport {
    let baseline_link = LinkConfig::default();
    let isp_hardening = match config.stack {
        StackKind::Hardened => HardeningConfig::default(),
        StackKind::WeakBaseline => HardeningConfig::predictable_ids(),
    };
    let mut scenario = Scenario::build(ScenarioConfig {
        seed: config.seed,
        resolvers: config.resolvers,
        ntp_servers: config.ntp_servers,
        pool_domains: config.pool_domains,
        compromised: Vec::new(),
        attacker_time_shift: 1000.0,
        link_latency: baseline_link.latency,
        isp_hardening,
    });
    scenario.install_ntp_fleet(NtpFleetConfig::default());

    let cache_config = CacheConfig::default();
    // Widened by every Reconfigure fault: a served entry may be as old as
    // the *maximum* TTL + stale horizon any applied epoch allowed.
    let mut max_cache_age = cache_config.ttl.as_duration() + cache_config.stale_window;
    let mut serve_config = Arc::new(ServeConfig::new(cache_config).expect("default is valid")); // sdoh-lint: allow(no-panic, "the default cache config is statically valid")
    let frontend: Option<Arc<Mutex<CachingPoolResolver>>> = match config.stack {
        StackKind::Hardened => Some(
            scenario
                .install_caching_frontend(PoolConfig::algorithm1(), cache_config)
                .expect("valid pool configuration"), // sdoh-lint: allow(no-panic, "the Algorithm 1 defaults are statically valid")
        ),
        StackKind::WeakBaseline => None,
    };

    let chronos = ChronosClient::new(
        ChronosConfig::default(),
        NtpClient::new(CLIENT_ADDR.with_port(123)),
        config.seed ^ 0xC105_0C4A,
    )
    .expect("valid Chronos configuration"); // sdoh-lint: allow(no-panic, "the default Chronos config is statically valid")
    let mut time_client = match &frontend {
        Some(frontend) => SecureTimeClient::new(
            Box::new(ConsensusFrontEnd::new(Arc::clone(frontend))),
            scenario.pool_domain.clone(),
            chronos,
        ),
        None => SecureTimeClient::new(
            Box::new(SingleResolverPool::new(ISP_RESOLVER)),
            scenario.pool_domain.clone(),
            chronos,
        ),
    };
    let stub = match config.stack {
        StackKind::Hardened => StubResolver::new(FRONTEND_ADDR),
        StackKind::WeakBaseline => StubResolver::new(ISP_RESOLVER),
    };

    let mut plan = FaultPlan::generate(
        config.seed,
        config.steps,
        &config.fault_mix,
        config.resolvers,
    );
    for pinned in &config.pinned_faults {
        plan.push(pinned.step, pinned.fault.clone());
    }

    let truth = scenario.ground_truth();
    let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
    let mut refresh_exchanger = ClientExchanger::new(&scenario.net, FRONTEND_ADDR);
    let mut local_clock = LocalClock::new(scenario.net.clock(), 0.0);
    let mut monitor = InvariantMonitor::new(config.workload.offset_bound);
    let mut trace: Vec<TraceEvent> = Vec::new();
    let mut applied: BTreeMap<&'static str, u64> = BTreeMap::new();
    // The default link currently in force, so healing a partition restores
    // whatever (possibly degraded) link the rest of the fleet sees.
    let mut current_default = baseline_link;
    let mut traced_violations = 0usize;
    let mut query_counter: usize = 0;

    let events = plan.events().to_vec();
    let mut next_event = 0usize;

    for step in 0..config.steps {
        while let Some(event) = events.get(next_event).filter(|event| event.step <= step) {
            let fault = event.fault.clone();
            apply_fault(
                &mut FaultContext {
                    scenario: &scenario,
                    local_clock: &mut local_clock,
                    current_default: &mut current_default,
                    inflate_addresses: INFLATE_ADDRESSES,
                    frontend: frontend.as_ref(),
                    serve_config: &mut serve_config,
                    max_cache_age: &mut max_cache_age,
                },
                &fault,
            );
            *applied.entry(fault.label()).or_insert(0) += 1;
            trace.push(TraceEvent {
                step,
                kind: "fault",
                detail: fault.describe(),
            });
            next_event += 1;
        }

        scenario.net.clock().advance(STEP_DURATION);

        for _ in 0..config.workload.clients_per_step {
            let domain = &scenario.pool_domains[query_counter % scenario.pool_domains.len().max(1)]; // sdoh-lint: allow(no-panic, "the modulo keeps the index in range and max(1) avoids a zero divisor")
            query_counter += 1;
            monitor.queries_issued += 1;
            match stub.lookup_ipv4(&mut exchanger, domain) {
                Ok(addresses) => {
                    monitor.queries_answered += 1;
                    let pool = address_pool(&addresses, "served");
                    monitor.check_pool(step, &pool, &truth, &format!("served answer for {domain}"));
                }
                Err(ResolveError::ErrorResponse(_)) => monitor.queries_denied += 1,
                Err(_) => monitor.queries_lost += 1,
            }
        }

        if step % config.workload.sync_interval == 0 {
            monitor.syncs += 1;
            match time_client.sync(&scenario.net, &mut exchanger, &mut local_clock) {
                Ok(outcome) => {
                    let offset = local_clock.offset_from_true();
                    monitor.check_offset(step, offset);
                    let pool = address_pool(time_client.pool(), "timesync");
                    monitor.check_pool(step, &pool, &truth, "time-sync pool");
                    trace.push(TraceEvent {
                        step,
                        kind: "sync",
                        detail: format!(
                            "ok: offset {offset:+.6}s pool_size {} refreshed {}",
                            outcome.pool_size, outcome.pool_refreshed
                        ),
                    });
                }
                Err(error) => {
                    monitor.sync_failures += 1;
                    trace.push(TraceEvent {
                        step,
                        kind: "sync",
                        detail: format!("failed: {error}"),
                    });
                }
            }
        }

        if let Some(frontend) = &frontend {
            frontend.lock().run_due_refreshes(&mut refresh_exchanger);
            let guard = frontend.lock();
            monitor.check_snapshot(step, guard.snapshot());
            monitor.check_cache_ages(
                step,
                &guard.probe_entries(scenario.net.now()),
                max_cache_age,
            );
        }
        monitor.check_net_metrics(step, scenario.net.metrics());
        monitor.check_accounting(step);

        for violation in monitor.violations().get(traced_violations..).unwrap_or(&[]) {
            trace.push(TraceEvent {
                step,
                kind: "violation",
                detail: format!("{}: {}", violation.invariant, violation.detail),
            });
        }
        traced_violations = monitor.violations().len();
    }

    let ready = monitor.ready();
    ChaosReport {
        seed: config.seed,
        steps: config.steps,
        stack: config.stack.label().to_string(),
        queries_issued: monitor.queries_issued,
        queries_answered: monitor.queries_answered,
        queries_denied: monitor.queries_denied,
        queries_lost: monitor.queries_lost,
        guarantee_checks: monitor.guarantee_checks,
        syncs: monitor.syncs,
        sync_failures: monitor.sync_failures,
        pool_refreshes: time_client.pool_refreshes(),
        max_abs_offset_after_sync: monitor.max_abs_offset_after_sync,
        faults_applied: applied,
        total_violations: monitor.total_violations(),
        violations: monitor.violations().to_vec(),
        net: scenario.net.metrics(),
        trace,
        ready,
    }
}

/// The campaign state a fault may act on: the scenario's simulator
/// boundaries plus the knobs later faults must observe (the link currently
/// in force, the serve-config epoch, the widened cache-age horizon).
struct FaultContext<'a> {
    scenario: &'a Scenario,
    local_clock: &'a mut LocalClock,
    current_default: &'a mut LinkConfig,
    inflate_addresses: usize,
    frontend: Option<&'a Arc<Mutex<CachingPoolResolver>>>,
    serve_config: &'a mut Arc<ServeConfig>,
    max_cache_age: &'a mut Duration,
}

/// Applies one fault to the running scenario through the simulator's own
/// boundaries (links, service registry, adversary slot, clocks, the serve
/// config epoch).
fn apply_fault(ctx: &mut FaultContext<'_>, fault: &Fault) {
    let scenario = ctx.scenario;
    match fault {
        Fault::DegradeLinks {
            loss,
            duplicate,
            reorder,
            extra_latency_ms,
        } => {
            let degraded = LinkConfig::with_latency(
                LinkConfig::default().latency + Duration::from_millis(*extra_latency_ms),
            )
            .jitter(LinkConfig::default().jitter)
            .loss(*loss)
            .duplicate(*duplicate)
            .reorder(*reorder, Duration::from_millis(50));
            scenario.net.set_default_link(degraded);
            *ctx.current_default = degraded;
        }
        Fault::HealLinks => {
            scenario.net.set_default_link(LinkConfig::default());
            *ctx.current_default = LinkConfig::default();
        }
        Fault::PartitionResolver { index } => {
            let resolver = scenario.resolver_addr(*index).ip;
            let blocked = LinkConfig::default().blocked();
            scenario.net.set_link(CLIENT_ADDR.ip, resolver, blocked);
            scenario.net.set_link(FRONTEND_ADDR.ip, resolver, blocked);
        }
        Fault::HealPartition { index } => {
            let resolver = scenario.resolver_addr(*index).ip;
            scenario
                .net
                .set_link(CLIENT_ADDR.ip, resolver, *ctx.current_default);
            scenario
                .net
                .set_link(FRONTEND_ADDR.ip, resolver, *ctx.current_default);
        }
        Fault::KillResolver { index } => {
            scenario.kill_resolver(*index);
        }
        Fault::ReviveResolver { index } | Fault::RestoreResolver { index } => {
            scenario.install_resolver(*index, None);
        }
        Fault::CompromiseResolver { index } => {
            // Answer inflation, the compromise Algorithm 1's truncation is
            // built to absorb: the honest prefix survives, the appended
            // attacker tail is cut. A wholesale answer replacement would
            // sit exactly on the x = 1/2 guarantee boundary (16 honest +
            // 16 attacker slots) where Chronos capture becomes possible —
            // a finding E13 records, not a chaos-campaign regression.
            scenario.install_resolver(
                *index,
                Some(&ResolverCompromise::InflateWithAttackerAddresses(
                    ctx.inflate_addresses,
                )),
            );
        }
        Fault::SpooferOn { attempts } => {
            scenario.net.set_adversary(
                scenario.kaminsky_adversary(*attempts, KaminskyPayload::DirectAnswer),
            );
        }
        Fault::SpooferOff => {
            scenario.net.clear_adversary();
        }
        Fault::ClockStep { seconds } => {
            ctx.local_clock.adjust(*seconds);
        }
        Fault::TimeJump { seconds } => {
            scenario.net.clock().step(Duration::from_secs(*seconds));
        }
        Fault::ClockDrift { rate_ppm } => {
            scenario.net.clock().set_drift(*rate_ppm as f64 * 1e-6);
        }
        Fault::Reconfigure {
            ttl_secs,
            stale_secs,
        } => {
            // Weak baseline: no serving cache to retune — a recorded no-op.
            if let Some(frontend) = ctx.frontend {
                let cache = CacheConfig::default()
                    .with_ttl(Ttl::from_secs(u32::try_from(*ttl_secs).unwrap_or(u32::MAX)))
                    .with_stale_window(Duration::from_secs(*stale_secs));
                let retuned = ctx.serve_config.next(cache).expect("knobs are valid"); // sdoh-lint: allow(no-panic, "the fault generator only emits knobs inside the validated range")
                let next = Arc::new(retuned);
                frontend
                    .lock()
                    .apply_config(next.clone(), scenario.net.now());
                *ctx.serve_config = next;
                *ctx.max_cache_age =
                    (*ctx.max_cache_age).max(cache.ttl.as_duration() + cache.stale_window);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_labels_are_stable() {
        assert_eq!(StackKind::Hardened.label(), "hardened");
        assert_eq!(StackKind::WeakBaseline.label(), "weak-baseline");
    }

    #[test]
    fn calm_campaign_on_hardened_stack_is_clean() {
        let mut config = CampaignConfig::hardened(5, 60);
        config.fault_mix = FaultMix::calm();
        let report = run_campaign(&config);
        assert!(report.ready, "violations: {:?}", report.violations);
        assert_eq!(report.total_violations, 0);
        assert_eq!(report.queries_issued, 120);
        assert_eq!(
            report.queries_answered + report.queries_denied + report.queries_lost,
            report.queries_issued
        );
        assert!(report.syncs >= 2);
        assert!(report.max_abs_offset_after_sync < 1.0);
        assert!(report.faults_applied.is_empty());
    }

    #[test]
    fn reconfigure_faults_keep_the_hardened_stack_clean() {
        // Epoch switches mid-campaign: cached entries survive, the age
        // bound widens to the maximum applied horizon, and the guarantee
        // monitor stays clean throughout.
        let mut config = CampaignConfig::hardened(21, 150);
        config.fault_mix = FaultMix::calm();
        config.fault_mix.reconfigure = 0.15;
        let report = run_campaign(&config);
        assert!(report.ready, "violations: {:?}", report.violations);
        assert_eq!(report.total_violations, 0);
        let applied = report
            .faults_applied
            .get("reconfigure")
            .copied()
            .unwrap_or(0);
        assert!(applied > 0, "no reconfigure fault fired: {report:?}");
    }

    #[test]
    fn reconfigure_is_a_noop_on_the_weak_baseline() {
        // The weak baseline has no serving cache: the fault is applied
        // (and counted) but changes nothing, and the campaign still runs
        // to completion deterministically.
        let mut config = CampaignConfig::weak_baseline(22, 80);
        config.fault_mix = FaultMix::calm();
        config.fault_mix.reconfigure = 0.2;
        let first = run_campaign(&config);
        let second = run_campaign(&config);
        assert!(
            first
                .faults_applied
                .get("reconfigure")
                .copied()
                .unwrap_or(0)
                > 0
        );
        assert_eq!(first.queries_issued, second.queries_issued);
        assert_eq!(first.total_violations, second.total_violations);
        assert_eq!(first.trace.len(), second.trace.len());
    }

    #[test]
    fn persistent_spoofer_is_pinned_at_step_zero() {
        let config = CampaignConfig::weak_baseline(9, 10).with_persistent_spoofer(64);
        assert_eq!(
            config.pinned_faults,
            vec![FaultEvent {
                step: 0,
                fault: Fault::SpooferOn { attempts: 64 },
            }]
        );
    }
}
