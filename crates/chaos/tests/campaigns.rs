//! Acceptance campaigns: the hardened stack survives a thousand-step
//! mixed-adversary schedule with zero invariant violations, the weak
//! baseline fails the same schedule (proving the monitor detects real
//! breaches), and reports are byte-identical across re-runs of the same
//! seed.

use sdoh_chaos::{run_campaign, CampaignConfig};

/// The headline campaign: loss, duplication, reordering, latency spikes,
/// partitions, resolver churn and compromise, clock steps, time jumps,
/// drift — plus a persistent off-path spoofer racing every plain
/// pool-zone query from step 0.
fn mixed_adversary(seed: u64, steps: u64) -> CampaignConfig {
    CampaignConfig::hardened(seed, steps).with_persistent_spoofer(64)
}

#[test]
fn hardened_stack_survives_mixed_adversary_campaign() {
    let report = run_campaign(&mixed_adversary(42, 1000));
    assert!(
        report.ready,
        "hardened stack violated invariants: {:?}",
        report.violations
    );
    assert_eq!(report.total_violations, 0);
    assert_eq!(report.steps, 1000);
    assert_eq!(report.queries_issued, 2000);
    assert_eq!(
        report.queries_answered + report.queries_denied + report.queries_lost,
        report.queries_issued
    );
    // The campaign must actually have been adversarial: every fault
    // category applied, and the workload mostly survived it.
    for label in [
        "degrade_links",
        "heal_links",
        "spoofer_on",
        "clock_step",
        "time_jump",
        "clock_drift",
    ] {
        assert!(
            report.faults_applied.contains_key(label),
            "campaign never applied {label}: {:?}",
            report.faults_applied
        );
    }
    let incidents = ["partition_resolver", "kill_resolver", "compromise_resolver"]
        .iter()
        .filter_map(|label| report.faults_applied.get(label))
        .sum::<u64>();
    assert!(
        incidents > 0,
        "campaign never disturbed a resolver: {:?}",
        report.faults_applied
    );
    assert!(report.syncs >= 40);
    assert!(report.max_abs_offset_after_sync < 1.0);
    assert!(report.queries_answered > report.queries_issued / 2);
}

#[test]
fn weak_baseline_fails_the_same_campaign() {
    let mut config = mixed_adversary(42, 1000);
    config.stack = sdoh_chaos::StackKind::WeakBaseline;
    let report = run_campaign(&config);
    assert!(
        !report.ready,
        "the predictable-id baseline should be poisoned by the spoofer"
    );
    assert!(report.total_violations >= 1);
    let has_integrity_breach = report.violations.iter().any(|violation| {
        violation.invariant == "pool_guarantee" || violation.invariant == "clock_offset"
    });
    assert!(
        has_integrity_breach,
        "expected a guarantee or offset violation, got: {:?}",
        report.violations
    );
}

#[test]
fn same_seed_reproduces_reports_byte_for_byte() {
    let config = mixed_adversary(7, 300);
    let first = run_campaign(&config);
    let second = run_campaign(&config);
    assert_eq!(first.to_json("test"), second.to_json("test"));
    assert_eq!(first.trace_text(), second.trace_text());

    let different = run_campaign(&mixed_adversary(8, 300));
    assert_ne!(first.trace_text(), different.trace_text());
}
