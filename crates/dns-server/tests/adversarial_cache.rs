//! Adversarial resolver-cache suite: the regression tests for the four
//! classical poisoning vectors the hardened resolver closes, plus a
//! property test that nothing out of bailiwick is ever cached.
//!
//! Every test also exercises the weak
//! ([`HardeningConfig::predictable_ids`]) baseline to document that the
//! vulnerability is still reproducible on demand — that is what the E14
//! attack experiments measure.

use std::cell::Cell;
use std::net::IpAddr;
use std::rc::Rc;

use proptest::prelude::*;

use sdoh_dns_server::{
    Authority, Catalog, ClientExchanger, Credibility, Do53Service, FnHandler, HardeningConfig,
    RecursiveConfig, RecursiveResolver, ResolveError, Zone,
};
use sdoh_dns_wire::{Message, MessageBuilder, Name, RData, Rcode, Record, RrType};
use sdoh_netsim::{SimAddr, SimNet};

const ROOT: SimAddr = SimAddr {
    ip: IpAddr::V4(std::net::Ipv4Addr::new(198, 41, 0, 4)),
    port: 53,
};
const HONEST_NS: SimAddr = SimAddr {
    ip: IpAddr::V4(std::net::Ipv4Addr::new(192, 0, 2, 53)),
    port: 53,
};
const EVIL_NS: SimAddr = SimAddr {
    ip: IpAddr::V4(std::net::Ipv4Addr::new(198, 18, 254, 1)),
    port: 53,
};

fn resolver(net: &SimNet, hardening: HardeningConfig) -> RecursiveResolver {
    RecursiveResolver::new(
        RecursiveConfig {
            root_hints: vec![ROOT],
            hardening,
            ..RecursiveConfig::default()
        },
        net.clock(),
    )
}

fn client(net: &SimNet) -> ClientExchanger<'_> {
    ClientExchanger::new(net, SimAddr::v4(10, 0, 0, 1, 40000))
}

fn a_record(name: &str, addr: &str) -> Record {
    Record::address(name.parse().unwrap(), 300, addr.parse().unwrap())
}

/// Registers an honest root that delegates `example.` to [`HONEST_NS`]
/// with proper in-zone glue.
fn install_honest_root(net: &SimNet) {
    let mut root_zone = Zone::new(Name::root());
    root_zone.add_record(Record::new(
        "example".parse().unwrap(),
        86_400,
        RData::Ns("ns.example".parse().unwrap()),
    ));
    root_zone.add_record(Record::new(
        "ns.example".parse().unwrap(),
        86_400,
        RData::A("192.0.2.53".parse().unwrap()),
    ));
    let mut catalog = Catalog::new();
    catalog.add_zone(root_zone);
    net.register(ROOT, Do53Service::new(Authority::new(catalog)));
}

/// The attacker's name server: answers every address query with its own
/// addresses and counts how often it was consulted.
fn install_evil_server(net: &SimNet) -> Rc<Cell<u64>> {
    let queries = Rc::new(Cell::new(0u64));
    let seen = Rc::clone(&queries);
    net.register(
        EVIL_NS,
        Do53Service::new(FnHandler::new("evil", move |_ex, query: &Message| {
            seen.set(seen.get() + 1);
            let name = query.question().unwrap().name.clone();
            MessageBuilder::response_to(query)
                .authoritative(true)
                .answer(Record::address(name, 300, "198.18.0.99".parse().unwrap()))
                .build()
        })),
    );
    queries
}

// ---------------------------------------------------------------------------
// Satellite bugfix 1: out-of-bailiwick answer records
// ---------------------------------------------------------------------------

/// An authoritative server for `example.` that appends an A record for an
/// unrelated victim name to every answer.
fn install_poisoning_example_server(net: &SimNet) {
    net.register(
        HONEST_NS,
        Do53Service::new(FnHandler::new("poisoner", |_ex, query: &Message| {
            let name = query.question().unwrap().name.clone();
            MessageBuilder::response_to(query)
                .authoritative(true)
                .answer(Record::address(name, 300, "192.0.2.80".parse().unwrap()))
                // The poison: an answer record for a name this server has
                // no authority over.
                .answer(a_record("time.victim.net", "198.18.0.66"))
                .build()
        })),
    );
}

#[test]
fn out_of_bailiwick_answer_records_are_neither_returned_nor_cached() {
    let net = SimNet::new(201);
    install_honest_root(&net);
    install_poisoning_example_server(&net);

    let mut hardened = resolver(&net, HardeningConfig::full());
    let response = hardened
        .resolve(
            &mut client(&net),
            &"www.example".parse().unwrap(),
            RrType::A,
        )
        .unwrap();
    assert_eq!(response.answer_addresses().len(), 1);
    assert!(
        response
            .answers
            .iter()
            .all(|r| r.name == "www.example".parse::<Name>().unwrap()),
        "victim record must not be returned: {response}"
    );
    let victim: Name = "time.victim.net".parse().unwrap();
    assert!(
        hardened
            .cache()
            .iter()
            .all(|(name, _, answer)| *name != victim
                && answer.records.iter().all(|r| r.name != victim)),
        "victim record must not be cached"
    );
}

#[test]
fn weak_baseline_reproduces_answer_section_poisoning() {
    let net = SimNet::new(202);
    install_honest_root(&net);
    install_poisoning_example_server(&net);

    let mut weak = resolver(&net, HardeningConfig::predictable_ids());
    let response = weak
        .resolve(
            &mut client(&net),
            &"www.example".parse().unwrap(),
            RrType::A,
        )
        .unwrap();
    let victim: Name = "time.victim.net".parse().unwrap();
    assert!(
        response.answers.iter().any(|r| r.name == victim),
        "the weak baseline swallows the appended record"
    );
    assert!(
        weak.cache()
            .iter()
            .any(|(_, _, answer)| answer.records.iter().any(|r| r.name == victim)),
        "and caches it"
    );
}

// ---------------------------------------------------------------------------
// Satellite bugfix 2: blind glue
// ---------------------------------------------------------------------------

/// A root that delegates `example.` and attaches **forged glue**: either
/// an additional record for an unrelated name, or glue for an off-zone NS
/// target — both pointing at the attacker.
fn install_root_with_forged_glue(net: &SimNet, offzone_target: bool) {
    net.register(
        ROOT,
        Do53Service::new(FnHandler::new(
            "forging-root",
            move |_ex, query: &Message| {
                let name = query.question().unwrap().name.clone();
                // Address queries for NS hosts are answered directly (the
                // re-resolution path a hardened resolver takes).
                if name == "ns.example".parse::<Name>().unwrap()
                    || name == "ns.offsite.net".parse::<Name>().unwrap()
                {
                    return MessageBuilder::response_to(query)
                        .authoritative(true)
                        .answer(Record::address(name, 300, "192.0.2.53".parse().unwrap()))
                        .build();
                }
                let (ns_target, glue_name) = if offzone_target {
                    // NS target outside the delegated zone, glue matching it.
                    ("ns.offsite.net", "ns.offsite.net")
                } else {
                    // In-zone NS target, glue for a completely unrelated name.
                    ("ns.example", "unrelated.other.net")
                };
                MessageBuilder::response_to(query)
                    .authority(Record::new(
                        "example".parse().unwrap(),
                        86_400,
                        RData::Ns(ns_target.parse().unwrap()),
                    ))
                    .additional(Record::address(
                        glue_name.parse().unwrap(),
                        86_400,
                        EVIL_NS.ip,
                    ))
                    .build()
            },
        )),
    );
}

fn install_honest_example_server(net: &SimNet) {
    let mut zone = Zone::new("example".parse().unwrap());
    zone.add_record(a_record("www.example", "192.0.2.80"));
    zone.add_record(a_record("ns.example", "192.0.2.53"));
    let mut catalog = Catalog::new();
    catalog.add_zone(zone);
    net.register(HONEST_NS, Do53Service::new(Authority::new(catalog)));
}

#[test]
fn glue_for_unrelated_names_is_discarded_and_ns_target_re_resolved() {
    let net = SimNet::new(203);
    install_root_with_forged_glue(&net, false);
    install_honest_example_server(&net);
    let evil_queries = install_evil_server(&net);

    let mut hardened = resolver(&net, HardeningConfig::full());
    let response = hardened
        .resolve(
            &mut client(&net),
            &"www.example".parse().unwrap(),
            RrType::A,
        )
        .unwrap();
    assert_eq!(
        response.answer_addresses(),
        vec!["192.0.2.80".parse::<IpAddr>().unwrap()],
        "resolution goes through the honest server"
    );
    assert_eq!(evil_queries.get(), 0, "the attacker is never contacted");
}

#[test]
fn glue_for_offzone_ns_targets_is_discarded() {
    let net = SimNet::new(204);
    install_root_with_forged_glue(&net, true);
    // The off-zone NS host genuinely resolves to the honest server.
    install_honest_example_server(&net);
    let evil_queries = install_evil_server(&net);

    let mut hardened = resolver(&net, HardeningConfig::full());
    let response = hardened
        .resolve(
            &mut client(&net),
            &"www.example".parse().unwrap(),
            RrType::A,
        )
        .unwrap();
    assert_eq!(
        response.answer_addresses(),
        vec!["192.0.2.80".parse::<IpAddr>().unwrap()]
    );
    assert_eq!(evil_queries.get(), 0);
}

#[test]
fn weak_baseline_follows_blind_glue_to_the_attacker() {
    for offzone in [false, true] {
        let net = SimNet::new(205 + u64::from(offzone));
        install_root_with_forged_glue(&net, offzone);
        install_honest_example_server(&net);
        let evil_queries = install_evil_server(&net);

        let mut weak = resolver(&net, HardeningConfig::predictable_ids());
        let response = weak
            .resolve(
                &mut client(&net),
                &"www.example".parse().unwrap(),
                RrType::A,
            )
            .unwrap();
        assert_eq!(
            response.answer_addresses(),
            vec!["198.18.0.99".parse::<IpAddr>().unwrap()],
            "blind glue hands the lookup to the attacker (offzone={offzone})"
        );
        assert!(evil_queries.get() > 0);
    }
}

// ---------------------------------------------------------------------------
// Satellite bugfix 3: mid-chain NXDOMAIN caching key
// ---------------------------------------------------------------------------

/// Hierarchy with two zones: `example.` holds a CNAME pointing into
/// `other.`, where the target does not exist.
fn install_cname_chain_hierarchy(net: &SimNet) {
    let other_ns = SimAddr::v4(192, 0, 2, 54, 53);
    let mut root_zone = Zone::new(Name::root());
    for (zone, ns, addr) in [
        ("example", "ns.example", HONEST_NS),
        ("other", "ns.other", other_ns),
    ] {
        root_zone.add_record(Record::new(
            zone.parse().unwrap(),
            86_400,
            RData::Ns(ns.parse().unwrap()),
        ));
        root_zone.add_record(Record::address(ns.parse().unwrap(), 86_400, addr.ip));
    }
    let mut catalog = Catalog::new();
    catalog.add_zone(root_zone);
    net.register(ROOT, Do53Service::new(Authority::new(catalog)));

    let mut example = Zone::new("example".parse().unwrap());
    example.add_record(Record::new(
        "alias.example".parse().unwrap(),
        300,
        RData::Cname("gone.other".parse().unwrap()),
    ));
    let mut catalog = Catalog::new();
    catalog.add_zone(example);
    net.register(HONEST_NS, Do53Service::new(Authority::new(catalog)));

    let text = r#"
$TTL 300
@   IN SOA ns hostmaster 1 7200 900 1209600 300
@   IN NS  ns.other.
ns  IN A   192.0.2.54
www IN A   192.0.2.90
"#;
    let zone = sdoh_dns_server::parse_zone(&"other".parse().unwrap(), text).unwrap();
    let mut catalog = Catalog::new();
    catalog.add_zone(zone);
    net.register(other_ns, Do53Service::new(Authority::new(catalog)));
}

#[test]
fn midchain_nxdomain_is_cached_under_the_cname_target() {
    let net = SimNet::new(207);
    install_cname_chain_hierarchy(&net);

    let mut resolver = resolver(&net, HardeningConfig::full());
    let mut exchanger = client(&net);
    let response = resolver
        .resolve(&mut exchanger, &"alias.example".parse().unwrap(), RrType::A)
        .unwrap();
    assert_eq!(response.header.rcode, Rcode::NxDomain);
    assert!(
        response.answers.iter().any(|r| r.rtype() == RrType::Cname),
        "the CNAME survives in the chain answer"
    );

    // The negative entry belongs to the name that does not exist — the
    // CNAME target — so a direct lookup is answered from the cache alone.
    let requests_before = net.metrics().requests;
    let direct = resolver
        .resolve(&mut exchanger, &"gone.other".parse().unwrap(), RrType::A)
        .unwrap();
    assert_eq!(direct.header.rcode, Rcode::NxDomain);
    assert_eq!(
        net.metrics().requests,
        requests_before,
        "mid-chain NXDOMAIN must be negative-cached under the CNAME target"
    );

    // Sibling names in the healthy zone still resolve.
    let www = resolver
        .resolve(&mut exchanger, &"www.other".parse().unwrap(), RrType::A)
        .unwrap();
    assert_eq!(www.answer_addresses().len(), 1);
}

// ---------------------------------------------------------------------------
// Credibility ranking: glue can never displace an authoritative answer
// ---------------------------------------------------------------------------

/// A root whose referral for `www.example` carries glue that tries to
/// overwrite the (previously cached, authoritative) address of
/// `ns.example` with the attacker's.
fn install_overwriting_root(net: &SimNet) {
    net.register(
        ROOT,
        Do53Service::new(FnHandler::new("overwriter", move |_ex, query: &Message| {
            let name = query.question().unwrap().name.clone();
            if name == "ns.example".parse::<Name>().unwrap() {
                return MessageBuilder::response_to(query)
                    .authoritative(true)
                    .answer(Record::address(name, 3600, "192.0.2.53".parse().unwrap()))
                    .build();
            }
            MessageBuilder::response_to(query)
                .authority(Record::new(
                    "example".parse().unwrap(),
                    86_400,
                    RData::Ns("ns.example".parse().unwrap()),
                ))
                // In-zone glue — routable, but pointing at the attacker.
                .additional(Record::address(
                    "ns.example".parse().unwrap(),
                    86_400,
                    EVIL_NS.ip,
                ))
                .build()
        })),
    );
}

#[test]
fn referral_glue_cannot_overwrite_a_cached_authoritative_answer() {
    let net = SimNet::new(208);
    install_overwriting_root(&net);
    install_evil_server(&net);

    let mut resolver = resolver(&net, HardeningConfig::full());
    let mut exchanger = client(&net);

    // Step 1: the authoritative address of ns.example enters the cache.
    let honest = resolver
        .resolve(&mut exchanger, &"ns.example".parse().unwrap(), RrType::A)
        .unwrap();
    assert_eq!(
        honest.answer_addresses(),
        vec!["192.0.2.53".parse::<IpAddr>().unwrap()]
    );
    let ns_name: Name = "ns.example".parse().unwrap();
    assert_eq!(
        resolver.cache().credibility_of(&ns_name, RrType::A),
        Some(Credibility::AuthoritativeAnswer)
    );

    // Step 2: a later referral carries glue pointing ns.example at the
    // attacker. The glue may route *this* lookup (that is all glue is
    // for), but the cached authoritative answer must survive.
    let _ = resolver.resolve(&mut exchanger, &"www.example".parse().unwrap(), RrType::A);
    assert_eq!(
        resolver.cache().credibility_of(&ns_name, RrType::A),
        Some(Credibility::AuthoritativeAnswer),
        "glue-grade data must not displace the authoritative entry"
    );
    let requests_before = net.metrics().requests;
    let still_honest = resolver
        .resolve(&mut exchanger, &ns_name, RrType::A)
        .unwrap();
    assert_eq!(
        still_honest.answer_addresses(),
        vec!["192.0.2.53".parse::<IpAddr>().unwrap()]
    );
    assert_eq!(net.metrics().requests, requests_before, "served from cache");
}

// ---------------------------------------------------------------------------
// Forged-referral rejection
// ---------------------------------------------------------------------------

#[test]
fn out_of_bailiwick_delegations_are_rejected_outright() {
    // A malicious `example.` server tries to delegate `com.` (outside its
    // bailiwick) to the attacker.
    let net = SimNet::new(209);
    install_honest_root(&net);
    net.register(
        HONEST_NS,
        Do53Service::new(FnHandler::new("rogue-delegator", |_ex, query: &Message| {
            MessageBuilder::response_to(query)
                .authority(Record::new(
                    "com".parse().unwrap(),
                    86_400,
                    RData::Ns("ns.evil.com".parse().unwrap()),
                ))
                .additional(Record::address(
                    "ns.evil.com".parse().unwrap(),
                    86_400,
                    EVIL_NS.ip,
                ))
                .build()
        })),
    );
    let evil_queries = install_evil_server(&net);

    let mut hardened = resolver(&net, HardeningConfig::full());
    let err = hardened
        .resolve(
            &mut client(&net),
            &"www.example".parse().unwrap(),
            RrType::A,
        )
        .unwrap_err();
    assert_eq!(err, ResolveError::OutOfBailiwick);
    assert_eq!(evil_queries.get(), 0);

    let weak = SimNet::new(210);
    install_honest_root(&weak);
    // (Same rogue server on the weak net.)
    weak.register(
        HONEST_NS,
        Do53Service::new(FnHandler::new("rogue-delegator", |_ex, query: &Message| {
            MessageBuilder::response_to(query)
                .authority(Record::new(
                    "com".parse().unwrap(),
                    86_400,
                    RData::Ns("ns.evil.com".parse().unwrap()),
                ))
                .additional(Record::address(
                    "ns.evil.com".parse().unwrap(),
                    86_400,
                    EVIL_NS.ip,
                ))
                .build()
        })),
    );
    let evil_queries = install_evil_server(&weak);
    let mut weak_resolver = resolver(&weak, HardeningConfig::predictable_ids());
    let response = weak_resolver
        .resolve(
            &mut client(&weak),
            &"www.example".parse().unwrap(),
            RrType::A,
        )
        .unwrap();
    assert_eq!(
        response.answer_addresses(),
        vec!["198.18.0.99".parse::<IpAddr>().unwrap()],
        "the weak resolver follows the rogue delegation"
    );
    assert!(evil_queries.get() > 0);
}

// ---------------------------------------------------------------------------
// Mutually-referring glueless delegations must not recurse unboundedly
// ---------------------------------------------------------------------------

#[test]
fn mutual_glueless_referrals_error_instead_of_overflowing_the_stack() {
    // The root delegates a.test to a name server inside b.test and
    // b.test to a name server inside a.test, never with usable glue:
    // every referral forces a nested NS-address resolution. Without a
    // nesting cap this recursses one stack frame per referral until the
    // process aborts — an off-path attacker can force it with forged
    // glueless referrals. It must surface as TooManyIterations instead.
    for hardening in [HardeningConfig::full(), HardeningConfig::predictable_ids()] {
        let net = SimNet::new(211);
        net.register(
            ROOT,
            Do53Service::new(FnHandler::new("mutual-root", |_ex, query: &Message| {
                let name = query.question().unwrap().name.clone();
                let (zone, ns_target) = if name.is_subdomain_of(&"a.test".parse().unwrap()) {
                    ("a.test", "ns.b.test")
                } else {
                    ("b.test", "ns.a.test")
                };
                MessageBuilder::response_to(query)
                    .authority(Record::new(
                        zone.parse().unwrap(),
                        86_400,
                        RData::Ns(ns_target.parse().unwrap()),
                    ))
                    .build()
            })),
        );
        let mut resolver = resolver(&net, hardening);
        let err = resolver
            .resolve(&mut client(&net), &"www.a.test".parse().unwrap(), RrType::A)
            .unwrap_err();
        assert_eq!(err, ResolveError::TooManyIterations, "{hardening:?}");
    }
}

// ---------------------------------------------------------------------------
// Property: no cached record ever leaves the supplying server's bailiwick
// ---------------------------------------------------------------------------

/// One junk record the malicious `example.` server injects somewhere.
#[derive(Debug, Clone)]
struct Injection {
    /// Owner name of the injected record.
    name: Name,
    /// 0 = answer, 1 = authority, 2 = additional.
    section: u8,
    /// Whether the record is a CNAME (to the victim) instead of an A.
    cname: bool,
}

fn arb_injection() -> impl Strategy<Value = Injection> {
    (
        prop_oneof![
            // In-zone junk: allowed to be cached (the server owns it).
            proptest::string::string_regex("[a-z]{1,8}\\.example").unwrap(),
            // Out-of-zone poison: must never survive.
            proptest::string::string_regex("[a-z]{1,8}\\.attacker\\.net").unwrap(),
            Just("time.victim.net".to_string()),
        ],
        0u8..3,
        any::<bool>(),
    )
        .prop_map(|(name, section, cname)| Injection {
            name: name.parse().unwrap(),
            section,
            cname,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cached_records_never_leave_the_bailiwick(
        injections in proptest::collection::vec(arb_injection(), 0..6),
        answer_honestly in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let net = SimNet::new(1000 + seed);
        install_honest_root(&net);
        let injections_for_server = injections.clone();
        net.register(
            HONEST_NS,
            Do53Service::new(FnHandler::new("junk-injector", move |_ex, query: &Message| {
                let name = query.question().unwrap().name.clone();
                let mut builder = MessageBuilder::response_to(query).authoritative(true);
                if answer_honestly {
                    builder = builder.answer(Record::address(
                        name,
                        300,
                        "192.0.2.80".parse().unwrap(),
                    ));
                }
                for injection in &injections_for_server {
                    let record = if injection.cname {
                        Record::new(
                            injection.name.clone(),
                            300,
                            RData::Cname("time.victim.net".parse().unwrap()),
                        )
                    } else {
                        Record::address(
                            injection.name.clone(),
                            300,
                            "198.18.0.99".parse().unwrap(),
                        )
                    };
                    builder = match injection.section {
                        0 => builder.answer(record),
                        1 => builder.authority(record),
                        _ => builder.additional(record),
                    };
                }
                builder.build()
            })),
        );

        let mut hardened = resolver(&net, HardeningConfig::full());
        // The outcome may be Ok or Err (junk can make the response bogus);
        // the invariant is about what lands in the cache either way.
        let _ = hardened.resolve(
            &mut client(&net),
            &"www.example".parse().unwrap(),
            RrType::A,
        );

        let example: Name = "example".parse().unwrap();
        for (key, _, answer) in hardened.cache().iter() {
            prop_assert!(
                key.is_subdomain_of(&example),
                "cache key {key} escaped the bailiwick"
            );
            for record in &answer.records {
                prop_assert!(
                    record.name.is_subdomain_of(&example),
                    "cached record {} escaped the bailiwick (key {key})",
                    record.name
                );
            }
        }
    }
}
