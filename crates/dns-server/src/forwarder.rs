//! A forwarding resolver: relays recursive queries to an upstream resolver
//! and caches the answers.

use std::time::Duration;

use sdoh_dns_wire::{Message, MessageBuilder, Rcode};
use sdoh_netsim::{ChannelKind, SimAddr, SimClock};

use crate::cache::DnsCache;
use crate::client::DnsClient;
use crate::error::ResolveError;
use crate::exchange::Exchanger;
use crate::handler::QueryHandler;

/// A resolver that forwards every query to a single upstream resolver.
#[derive(Debug)]
pub struct ForwardingResolver {
    upstream: SimAddr,
    channel: ChannelKind,
    timeout: Duration,
    cache: DnsCache,
}

impl ForwardingResolver {
    /// Creates a forwarder towards `upstream` with a cache driven by `clock`.
    pub fn new(upstream: SimAddr, clock: SimClock) -> Self {
        ForwardingResolver {
            upstream,
            channel: ChannelKind::Plain,
            timeout: Duration::from_secs(3),
            cache: DnsCache::new(clock, 1024),
        }
    }

    /// Sets the channel used towards the upstream resolver.
    pub fn channel(mut self, channel: ChannelKind) -> Self {
        self.channel = channel;
        self
    }

    /// Sets the upstream query timeout.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The upstream resolver address.
    pub fn upstream(&self) -> SimAddr {
        self.upstream
    }

    /// Read access to the cache.
    pub fn cache(&self) -> &DnsCache {
        &self.cache
    }
}

impl QueryHandler for ForwardingResolver {
    fn handle_query(&mut self, exchanger: &mut dyn Exchanger, query: &Message) -> Message {
        let question = match query.question() {
            Some(q) => q.clone(),
            None => return Message::error_response(query, Rcode::FormErr),
        };

        if let Some(cached) = self.cache.get(&question.name, question.rtype) {
            let mut builder = MessageBuilder::response_to(query)
                .recursion_available(true)
                .rcode(cached.rcode);
            for record in cached.records {
                builder = builder.answer(record);
            }
            return builder.build();
        }

        let client = DnsClient::new(self.upstream)
            .channel(self.channel)
            .timeout(self.timeout)
            .recursion_desired(true);
        match client.query(exchanger, &question.name, question.rtype) {
            Ok(upstream_response) => {
                // An upstream recursive answer is never authoritative data.
                self.cache.insert_response(
                    &question.name,
                    question.rtype,
                    &upstream_response,
                    crate::cache::Credibility::Answer,
                );
                let mut response = Message::response_to(query);
                response.header.recursion_available = true;
                response.header.rcode = upstream_response.header.rcode;
                response.answers = upstream_response.answers;
                response.authorities = upstream_response.authorities;
                response
            }
            Err(ResolveError::ErrorResponse(rcode)) => Message::error_response(query, rcode),
            Err(_) => Message::error_response(query, Rcode::ServFail),
        }
    }

    fn handler_name(&self) -> &str {
        "forwarding-resolver"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::Authority;
    use crate::catalog::Catalog;
    use crate::client::DnsClient;
    use crate::exchange::ClientExchanger;
    use crate::service::Do53Service;
    use crate::zone::Zone;
    use sdoh_dns_wire::RrType;
    use sdoh_netsim::SimNet;

    fn setup() -> (SimNet, SimAddr, SimAddr) {
        let net = SimNet::new(77);
        let authority_addr = SimAddr::v4(198, 51, 100, 10, 53);
        let forwarder_addr = SimAddr::v4(10, 0, 0, 53, 53);

        let mut zone = Zone::new("corp.example".parse().unwrap());
        zone.add_address(
            "intranet.corp.example".parse().unwrap(),
            "192.0.2.10".parse().unwrap(),
        );
        let mut catalog = Catalog::new();
        catalog.add_zone(zone);
        net.register(authority_addr, Do53Service::new(Authority::new(catalog)));

        let forwarder = ForwardingResolver::new(authority_addr, net.clock());
        net.register(forwarder_addr, Do53Service::new(forwarder));
        (net, forwarder_addr, authority_addr)
    }

    #[test]
    fn forwards_and_caches() {
        let (net, forwarder_addr, _) = setup();
        let client = DnsClient::new(forwarder_addr);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let name = "intranet.corp.example".parse().unwrap();

        let first = client.query(&mut exchanger, &name, RrType::A).unwrap();
        assert_eq!(first.answer_addresses().len(), 1);
        let requests_after_first = net.metrics().requests;

        let second = client.query(&mut exchanger, &name, RrType::A).unwrap();
        assert_eq!(second.answer_addresses().len(), 1);
        // Only the client→forwarder request is added; no upstream query.
        assert_eq!(net.metrics().requests, requests_after_first + 1);
    }

    #[test]
    fn upstream_failure_becomes_servfail() {
        let net = SimNet::new(78);
        let forwarder_addr = SimAddr::v4(10, 0, 0, 53, 53);
        let missing_upstream = SimAddr::v4(203, 0, 113, 254, 53);
        let forwarder = ForwardingResolver::new(missing_upstream, net.clock())
            .timeout(Duration::from_millis(200));
        net.register(forwarder_addr, Do53Service::new(forwarder));

        let client = DnsClient::new(forwarder_addr);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let err = client
            .query(&mut exchanger, &"x.test".parse().unwrap(), RrType::A)
            .unwrap_err();
        assert_eq!(err, ResolveError::ErrorResponse(Rcode::ServFail));
    }

    #[test]
    fn builder_accessors() {
        let net = SimNet::new(79);
        let upstream = SimAddr::v4(9, 9, 9, 9, 53);
        let fwd = ForwardingResolver::new(upstream, net.clock())
            .channel(ChannelKind::Secure)
            .timeout(Duration::from_millis(100));
        assert_eq!(fwd.upstream(), upstream);
        assert_eq!(fwd.cache().len(), 0);
        assert_eq!(fwd.handler_name(), "forwarding-resolver");
    }
}
