//! DNS serving and resolution engines for the *Secure Consensus Generation
//! with Distributed DoH* reproduction.
//!
//! This crate provides every DNS component of the paper's Figure 1 that is
//! not the DoH transport itself:
//!
//! * authoritative zones ([`Zone`], [`Catalog`], [`Authority`]) and a
//!   zone-file parser ([`parse_zone`]) — the `c/d/e.ntpns.org` name servers,
//! * an iterative [`RecursiveResolver`] with a TTL-respecting [`DnsCache`] —
//!   the engine behind each public DoH resolver,
//! * a [`ForwardingResolver`] and a [`StubResolver`] — the plain-DNS
//!   baseline the paper improves on,
//! * compromised-resolver behaviours ([`PoisonedResolver`], [`PoisonMode`])
//!   used by the attack experiments,
//! * adapters ([`Do53Service`], [`QueryHandler`], [`Exchanger`]) that plug
//!   all of the above into the deterministic network simulator.
//!
//! # Threat model: the Do53 leg
//!
//! The paper's premise is that the *unprotected plain-DNS leg* is what
//! lets an off-path attacker capture NTP: even when clients reach their
//! resolver over authenticated DoH, the resolver's own queries to the
//! authoritative servers travel as plain UDP. An attacker who cannot
//! observe that traffic can still race forged responses against it; a
//! forgery is accepted if it arrives first and matches every identifier
//! the resolver checks. The attack surface is therefore exactly the
//! entropy of those identifiers, plus how much a single accepted forgery
//! is allowed to poison:
//!
//! * a **weak resolver** ([`HardeningConfig::predictable_ids`]) allocates
//!   transaction ids sequentially, queries from its fixed service port and
//!   believes every record a response carries — one guessed packet hands
//!   the attacker the whole cache (the Kaminsky attack, modelled by
//!   `sdoh_netsim::BirthdaySpoofer`);
//! * a **hardened resolver** (the [`RecursiveConfig`] default) randomizes
//!   transaction ids and source ports (32 bits), encodes queries with 0x20
//!   mixed casing verified on the echo ([`DnsClient::use_0x20`], one bit
//!   per letter), and enforces **bailiwick**: answer records outside the
//!   zone of the server that supplied them are dropped, referrals must
//!   delegate within that zone, glue is trusted only for NS targets inside
//!   the delegated zone, and cached data carries an RFC 2181 credibility
//!   rank ([`Credibility`]) so glue can never displace an authoritative
//!   answer. Identifier entropy pushes the race win rate to the birthday
//!   floor; bailiwick bounds the damage of the races that are won to the
//!   single query raced.
//!
//! Configure the weak baseline only to reproduce the attack experiments:
//!
//! ```
//! use sdoh_dns_server::{HardeningConfig, RecursiveConfig};
//!
//! let hardened = RecursiveConfig::default(); // every defense on
//! assert!(hardened.hardening.enforce_bailiwick);
//!
//! let weak = RecursiveConfig {
//!     hardening: HardeningConfig::predictable_ids(),
//!     ..RecursiveConfig::default()
//! };
//! assert!(!weak.hardening.randomize_txid);
//! ```
//!
//! # Example: serving and resolving a pool domain
//!
//! ```
//! use sdoh_dns_server::{Authority, Catalog, ClientExchanger, DnsClient, Do53Service, Zone};
//! use sdoh_dns_wire::RrType;
//! use sdoh_netsim::{SimAddr, SimNet};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = SimNet::new(1);
//! let server = SimAddr::v4(198, 51, 100, 53, 53);
//!
//! let mut zone = Zone::new("ntp.org".parse()?);
//! zone.add_address("pool.ntp.org".parse()?, "203.0.113.1".parse().unwrap());
//! let mut catalog = Catalog::new();
//! catalog.add_zone(zone);
//! net.register(server, Do53Service::new(Authority::new(catalog)));
//!
//! let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
//! let response = DnsClient::new(server)
//!     .query(&mut exchanger, &"pool.ntp.org".parse()?, RrType::A)?;
//! assert_eq!(response.answer_addresses().len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod authority;
mod cache;
mod catalog;
mod client;
mod error;
mod exchange;
mod forwarder;
mod handler;
mod poison;
mod recursive;
mod service;
mod stub;
mod zone;
mod zonefile;

pub use authority::Authority;
pub use cache::{CachedAnswer, Credibility, DnsCache};
pub use catalog::Catalog;
pub use client::{DnsClient, PreparedDnsQuery, QueryIdentifiers, DEFAULT_TIMEOUT};
pub use error::{ResolveError, ResolveResult, ZoneFileError};
pub use exchange::{ClientExchanger, ExchangeOutcome, ExchangeRequest, Exchanger};
pub use forwarder::ForwardingResolver;
pub use handler::{FnHandler, QueryHandler};
pub use poison::{PoisonConfig, PoisonMode, PoisonedResolver};
pub use recursive::{HardeningConfig, RecursiveConfig, RecursiveResolver};
pub use service::{serve_do53_payload, Do53Service};
pub use stub::StubResolver;
pub use zone::{Zone, ZoneLookup};
pub use zonefile::parse_zone;
