//! Error types for DNS serving and resolution.

use std::error::Error;
use std::fmt;

use sdoh_dns_wire::{Rcode, WireError};
use sdoh_netsim::NetError;

/// Errors produced while resolving a name or serving zone data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// The transport failed (timeout, unreachable endpoint, partition).
    Network(NetError),
    /// A message could not be encoded or decoded.
    Wire(WireError),
    /// The upstream server answered with a non-success response code.
    ErrorResponse(Rcode),
    /// The response did not match the query (wrong id or question), which a
    /// validating client rejects.
    Mismatched,
    /// Resolution required more steps than the configured limit (e.g. a
    /// delegation or CNAME loop).
    TooManyIterations,
    /// Every relevant record of a response fell outside the bailiwick of
    /// the server that sent it — a poisoning attempt, rejected by a
    /// hardened resolver.
    OutOfBailiwick,
    /// A zone or configuration problem made the request unanswerable.
    Configuration(String),
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::Network(e) => write!(f, "network error: {e}"),
            ResolveError::Wire(e) => write!(f, "wire format error: {e}"),
            ResolveError::ErrorResponse(rcode) => write!(f, "upstream answered {rcode}"),
            ResolveError::Mismatched => write!(f, "response does not match query"),
            ResolveError::TooManyIterations => write!(f, "too many resolution steps"),
            ResolveError::OutOfBailiwick => {
                write!(f, "response records fall outside the server's bailiwick")
            }
            ResolveError::Configuration(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl Error for ResolveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ResolveError::Network(e) => Some(e),
            ResolveError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for ResolveError {
    fn from(e: NetError) -> Self {
        ResolveError::Network(e)
    }
}

impl From<WireError> for ResolveError {
    fn from(e: WireError) -> Self {
        ResolveError::Wire(e)
    }
}

/// Result alias used throughout the crate.
pub type ResolveResult<T> = Result<T, ResolveError>;

/// Errors produced while parsing zone file text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneFileError {
    /// A line could not be parsed.
    Syntax {
        /// Line number (1-based).
        line: usize,
        /// Explanation of the problem.
        message: String,
    },
    /// A record's owner name is outside the zone origin.
    OutOfZone {
        /// Line number (1-based).
        line: usize,
        /// The offending owner name.
        name: String,
    },
    /// The zone has no SOA record.
    MissingSoa,
}

impl fmt::Display for ZoneFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZoneFileError::Syntax { line, message } => {
                write!(f, "zone file syntax error on line {line}: {message}")
            }
            ZoneFileError::OutOfZone { line, name } => {
                write!(f, "record on line {line} is out of zone: {name}")
            }
            ZoneFileError::MissingSoa => write!(f, "zone has no SOA record"),
        }
    }
}

impl Error for ZoneFileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let cases: Vec<ResolveError> = vec![
            ResolveError::Network(NetError::Timeout),
            ResolveError::Wire(WireError::EmptyLabel),
            ResolveError::ErrorResponse(Rcode::ServFail),
            ResolveError::Mismatched,
            ResolveError::TooManyIterations,
            ResolveError::OutOfBailiwick,
            ResolveError::Configuration("no roots".into()),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn sources_are_chained() {
        let e = ResolveError::Network(NetError::Timeout);
        assert!(e.source().is_some());
        assert!(ResolveError::Mismatched.source().is_none());
    }

    #[test]
    fn conversions() {
        let e: ResolveError = NetError::Timeout.into();
        assert_eq!(e, ResolveError::Network(NetError::Timeout));
        let e: ResolveError = WireError::EmptyLabel.into();
        assert_eq!(e, ResolveError::Wire(WireError::EmptyLabel));
    }

    #[test]
    fn zone_file_errors_display() {
        let e = ZoneFileError::Syntax {
            line: 3,
            message: "bad record".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(!ZoneFileError::MissingSoa.to_string().is_empty());
    }
}
