//! Authoritative zone data and lookup semantics.

use std::collections::BTreeMap;
use std::net::IpAddr;

use sdoh_dns_wire::{Name, RData, Record, RrType, Soa};

/// Outcome of looking a name and type up in a zone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneLookup {
    /// Matching records exist; they are returned in zone order.
    Answer(Vec<Record>),
    /// The name exists and is an alias; the CNAME record is returned and the
    /// caller should chase the target.
    Cname(Record),
    /// The name falls below a zone cut; the NS records of the delegation and
    /// any in-zone glue addresses are returned.
    Delegation {
        /// NS records describing the child zone's servers.
        ns_records: Vec<Record>,
        /// A/AAAA glue records for those servers, when present in this zone.
        glue: Vec<Record>,
    },
    /// The name exists but has no records of the requested type.
    NoRecords,
    /// The name does not exist in this zone.
    NxDomain,
}

/// An authoritative zone: an origin name, an SOA and a set of records.
///
/// # Examples
///
/// ```
/// use sdoh_dns_server::Zone;
/// use sdoh_dns_wire::{Name, RData, Record};
///
/// let mut zone = Zone::new("ntpns.org".parse().unwrap());
/// zone.add_record(Record::new(
///     "a.pool.ntpns.org".parse().unwrap(),
///     300,
///     RData::A("203.0.113.1".parse().unwrap()),
/// ));
/// assert_eq!(zone.records().count(), 2); // SOA + A
/// ```
#[derive(Debug, Clone)]
pub struct Zone {
    origin: Name,
    /// Records grouped by owner name for efficient lookup.
    records: BTreeMap<Name, Vec<Record>>,
    default_ttl: u32,
}

impl Zone {
    /// Creates a zone with a synthetic SOA record at the origin.
    pub fn new(origin: Name) -> Self {
        let soa = Record::new(
            origin.clone(),
            3600,
            RData::Soa(Soa::new(
                origin.child("ns1").unwrap_or_else(|_| origin.clone()),
                origin
                    .child("hostmaster")
                    .unwrap_or_else(|_| origin.clone()),
                1,
            )),
        );
        let mut records = BTreeMap::new();
        records.insert(origin.clone(), vec![soa]);
        Zone {
            origin,
            records,
            default_ttl: 300,
        }
    }

    /// Creates a zone without the synthetic SOA (used by the zone-file
    /// parser, which requires an explicit SOA).
    pub fn empty(origin: Name) -> Self {
        Zone {
            origin,
            records: BTreeMap::new(),
            default_ttl: 300,
        }
    }

    /// The zone origin (apex name).
    pub fn origin(&self) -> &Name {
        &self.origin
    }

    /// Default TTL applied by convenience record constructors.
    pub fn default_ttl(&self) -> u32 {
        self.default_ttl
    }

    /// Sets the default TTL used by [`Zone::add_address`].
    pub fn set_default_ttl(&mut self, ttl: u32) {
        self.default_ttl = ttl;
    }

    /// Returns `true` when `name` is at or below the zone origin.
    pub fn contains(&self, name: &Name) -> bool {
        name.is_subdomain_of(&self.origin)
    }

    /// Adds a record. Records whose owner is outside the zone are ignored
    /// and `false` is returned.
    pub fn add_record(&mut self, record: Record) -> bool {
        if !self.contains(&record.name) {
            return false;
        }
        self.records
            .entry(record.name.clone())
            .or_default()
            .push(record);
        true
    }

    /// Convenience: adds an A or AAAA record with the default TTL.
    pub fn add_address(&mut self, name: Name, addr: IpAddr) -> bool {
        let ttl = self.default_ttl;
        self.add_record(Record::address(name, ttl, addr))
    }

    /// Iterates over every record in the zone.
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.records.values().flatten()
    }

    /// Number of records in the zone.
    pub fn len(&self) -> usize {
        self.records.values().map(Vec::len).sum()
    }

    /// Returns `true` when the zone holds no records at all.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The zone's SOA record, if present.
    pub fn soa(&self) -> Option<&Record> {
        self.records
            .get(&self.origin)
            .and_then(|rs| rs.iter().find(|r| r.rtype() == RrType::Soa))
    }

    /// All records with the given owner name.
    pub fn records_at(&self, name: &Name) -> &[Record] {
        self.records.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Looks up `name`/`rtype` following RFC 1034 §4.3.2 semantics within a
    /// single zone: exact match, CNAME, delegation, wildcard, NODATA or
    /// NXDOMAIN.
    pub fn lookup(&self, name: &Name, rtype: RrType) -> ZoneLookup {
        if !self.contains(name) {
            return ZoneLookup::NxDomain;
        }

        // Check for a zone cut strictly between the origin and the name.
        if let Some(delegation) = self.find_delegation(name) {
            return delegation;
        }

        if let Some(records) = self.records.get(name) {
            // Exact owner-name match.
            let matching: Vec<Record> = records
                .iter()
                .filter(|r| rtype == RrType::Any || r.rtype() == rtype)
                .cloned()
                .collect();
            if !matching.is_empty() {
                return ZoneLookup::Answer(matching);
            }
            if rtype != RrType::Cname {
                if let Some(cname) = records.iter().find(|r| r.rtype() == RrType::Cname) {
                    return ZoneLookup::Cname(cname.clone());
                }
            }
            return ZoneLookup::NoRecords;
        }

        // Wildcard synthesis: *.parent matching.
        if let Some(answer) = self.wildcard_lookup(name, rtype) {
            return answer;
        }

        // Empty non-terminal: a name that exists only as an ancestor of other
        // records gets NODATA instead of NXDOMAIN.
        let is_empty_non_terminal = self
            .records
            .keys()
            .any(|owner| owner != name && owner.is_subdomain_of(name));
        if is_empty_non_terminal {
            return ZoneLookup::NoRecords;
        }

        ZoneLookup::NxDomain
    }

    fn find_delegation(&self, name: &Name) -> Option<ZoneLookup> {
        // Walk from just below the origin down towards the name, looking for
        // NS record sets at intermediate owners (zone cuts).
        let origin_labels = self.origin.num_labels();
        let name_labels = name.num_labels();
        for depth in (origin_labels + 1)..name_labels {
            let candidate = name.suffix(depth);
            let records = self.records.get(&candidate)?;
            let ns_records: Vec<Record> = records
                .iter()
                .filter(|r| r.rtype() == RrType::Ns)
                .cloned()
                .collect();
            if !ns_records.is_empty() {
                let glue = self.glue_for(&ns_records);
                return Some(ZoneLookup::Delegation { ns_records, glue });
            }
        }
        None
    }

    fn glue_for(&self, ns_records: &[Record]) -> Vec<Record> {
        let mut glue = Vec::new();
        for ns in ns_records {
            if let RData::Ns(target) = &ns.rdata {
                for r in self.records_at(target) {
                    if r.rtype().is_address() {
                        glue.push(r.clone());
                    }
                }
            }
        }
        glue
    }

    fn wildcard_lookup(&self, name: &Name, rtype: RrType) -> Option<ZoneLookup> {
        let mut ancestor = name.parent()?;
        loop {
            if !ancestor.is_subdomain_of(&self.origin) {
                return None;
            }
            let wildcard = ancestor.child("*").ok()?;
            if let Some(records) = self.records.get(&wildcard) {
                let matching: Vec<Record> = records
                    .iter()
                    .filter(|r| rtype == RrType::Any || r.rtype() == rtype)
                    .map(|r| {
                        let mut synthesized = r.clone();
                        synthesized.name = name.clone();
                        synthesized
                    })
                    .collect();
                if !matching.is_empty() {
                    return Some(ZoneLookup::Answer(matching));
                }
                return Some(ZoneLookup::NoRecords);
            }
            ancestor = ancestor.parent()?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_zone() -> Zone {
        let mut zone = Zone::new("ntpns.org".parse().unwrap());
        for (host, addr) in [
            ("a.pool.ntpns.org", "203.0.113.1"),
            ("b.pool.ntpns.org", "203.0.113.2"),
            ("c.pool.ntpns.org", "203.0.113.3"),
        ] {
            zone.add_address(host.parse().unwrap(), addr.parse().unwrap());
        }
        zone.add_record(Record::new(
            "alias.ntpns.org".parse().unwrap(),
            300,
            RData::Cname("a.pool.ntpns.org".parse().unwrap()),
        ));
        zone.add_record(Record::new(
            "child.ntpns.org".parse().unwrap(),
            300,
            RData::Ns("ns.child.ntpns.org".parse().unwrap()),
        ));
        zone.add_address(
            "ns.child.ntpns.org".parse().unwrap(),
            "198.51.100.53".parse().unwrap(),
        );
        zone.add_record(Record::new(
            "*.wild.ntpns.org".parse().unwrap(),
            300,
            RData::A("192.0.2.99".parse().unwrap()),
        ));
        zone
    }

    #[test]
    fn new_zone_has_soa() {
        let zone = Zone::new("example.org".parse().unwrap());
        assert!(zone.soa().is_some());
        assert_eq!(zone.len(), 1);
        assert!(!zone.is_empty());
    }

    #[test]
    fn exact_match_answer() {
        let zone = pool_zone();
        match zone.lookup(&"a.pool.ntpns.org".parse().unwrap(), RrType::A) {
            ZoneLookup::Answer(records) => {
                assert_eq!(records.len(), 1);
                assert_eq!(records[0].ip_addr().unwrap().to_string(), "203.0.113.1");
            }
            other => panic!("expected answer, got {other:?}"),
        }
    }

    #[test]
    fn any_query_returns_all_types() {
        let mut zone = pool_zone();
        zone.add_record(Record::new(
            "a.pool.ntpns.org".parse().unwrap(),
            300,
            RData::Txt(vec![b"x".to_vec()]),
        ));
        match zone.lookup(&"a.pool.ntpns.org".parse().unwrap(), RrType::Any) {
            ZoneLookup::Answer(records) => assert_eq!(records.len(), 2),
            other => panic!("expected answer, got {other:?}"),
        }
    }

    #[test]
    fn nodata_for_missing_type() {
        let zone = pool_zone();
        assert_eq!(
            zone.lookup(&"a.pool.ntpns.org".parse().unwrap(), RrType::Aaaa),
            ZoneLookup::NoRecords
        );
    }

    #[test]
    fn nxdomain_for_missing_name() {
        let zone = pool_zone();
        assert_eq!(
            zone.lookup(&"missing.ntpns.org".parse().unwrap(), RrType::A),
            ZoneLookup::NxDomain
        );
    }

    #[test]
    fn out_of_zone_is_nxdomain_and_rejected_on_add() {
        let mut zone = pool_zone();
        assert_eq!(
            zone.lookup(&"example.com".parse().unwrap(), RrType::A),
            ZoneLookup::NxDomain
        );
        assert!(!zone.add_address(
            "www.example.com".parse().unwrap(),
            "198.51.100.1".parse().unwrap()
        ));
    }

    #[test]
    fn cname_is_surfaced() {
        let zone = pool_zone();
        match zone.lookup(&"alias.ntpns.org".parse().unwrap(), RrType::A) {
            ZoneLookup::Cname(record) => {
                assert_eq!(record.rtype(), RrType::Cname);
            }
            other => panic!("expected cname, got {other:?}"),
        }
        // Asking for the CNAME itself returns it as the answer.
        match zone.lookup(&"alias.ntpns.org".parse().unwrap(), RrType::Cname) {
            ZoneLookup::Answer(records) => assert_eq!(records.len(), 1),
            other => panic!("expected answer, got {other:?}"),
        }
    }

    #[test]
    fn delegation_below_zone_cut() {
        let zone = pool_zone();
        match zone.lookup(&"host.child.ntpns.org".parse().unwrap(), RrType::A) {
            ZoneLookup::Delegation { ns_records, glue } => {
                assert_eq!(ns_records.len(), 1);
                assert_eq!(glue.len(), 1);
                assert_eq!(glue[0].ip_addr().unwrap().to_string(), "198.51.100.53");
            }
            other => panic!("expected delegation, got {other:?}"),
        }
    }

    #[test]
    fn wildcard_synthesis() {
        let zone = pool_zone();
        match zone.lookup(&"anything.wild.ntpns.org".parse().unwrap(), RrType::A) {
            ZoneLookup::Answer(records) => {
                assert_eq!(records[0].name, "anything.wild.ntpns.org".parse().unwrap());
                assert_eq!(records[0].ip_addr().unwrap().to_string(), "192.0.2.99");
            }
            other => panic!("expected wildcard answer, got {other:?}"),
        }
        assert_eq!(
            zone.lookup(&"anything.wild.ntpns.org".parse().unwrap(), RrType::Aaaa),
            ZoneLookup::NoRecords
        );
    }

    #[test]
    fn empty_non_terminal_is_nodata() {
        let zone = pool_zone();
        assert_eq!(
            zone.lookup(&"pool.ntpns.org".parse().unwrap(), RrType::A),
            ZoneLookup::NoRecords
        );
    }

    #[test]
    fn default_ttl_is_applied() {
        let mut zone = Zone::new("x.org".parse().unwrap());
        zone.set_default_ttl(42);
        zone.add_address("h.x.org".parse().unwrap(), "192.0.2.1".parse().unwrap());
        let records = zone.records_at(&"h.x.org".parse().unwrap());
        assert_eq!(records[0].ttl, 42);
        assert_eq!(zone.default_ttl(), 42);
    }
}
