//! An iterative ("recursive") resolver engine: starts at root hints, follows
//! referrals and CNAMEs, and caches what it learns.
//!
//! This is the engine running inside each simulated public DoH resolver
//! (dns.google, cloudflare-dns.com, dns.quad9.net in the paper's Figure 1):
//! it receives recursive queries from clients and issues non-recursive
//! queries to authoritative servers.

use std::time::Duration;

use sdoh_dns_wire::{Message, MessageBuilder, Name, RData, Rcode, Record, RrType};
use sdoh_netsim::{ChannelKind, SimAddr, SimClock};

use crate::cache::DnsCache;
use crate::client::DnsClient;
use crate::error::{ResolveError, ResolveResult};
use crate::exchange::Exchanger;
use crate::handler::QueryHandler;

/// Limit on referral hops, CNAME links and nested NS-address resolutions for
/// a single query.
const MAX_STEPS: usize = 24;

/// Configuration for a [`RecursiveResolver`].
#[derive(Debug, Clone)]
pub struct RecursiveConfig {
    /// Addresses of the root name servers (root hints).
    pub root_hints: Vec<SimAddr>,
    /// Channel used for upstream (non-recursive) queries. Authoritative
    /// traffic is plain UDP in the real DNS, and that is the default.
    pub upstream_channel: ChannelKind,
    /// Timeout for each upstream query.
    pub upstream_timeout: Duration,
    /// Capacity of the resolver cache.
    pub cache_capacity: usize,
}

impl Default for RecursiveConfig {
    fn default() -> Self {
        RecursiveConfig {
            root_hints: Vec::new(),
            upstream_channel: ChannelKind::Plain,
            upstream_timeout: Duration::from_secs(2),
            cache_capacity: 4096,
        }
    }
}

/// An iterative resolver with a cache.
#[derive(Debug)]
pub struct RecursiveResolver {
    config: RecursiveConfig,
    cache: DnsCache,
}

impl RecursiveResolver {
    /// Creates a resolver with the given configuration, using `clock` for
    /// cache TTL accounting.
    pub fn new(config: RecursiveConfig, clock: SimClock) -> Self {
        let cache = DnsCache::new(clock, config.cache_capacity);
        RecursiveResolver { config, cache }
    }

    /// Read access to the cache (e.g. for inspecting hit rates).
    pub fn cache(&self) -> &DnsCache {
        &self.cache
    }

    /// Resolves `name`/`rtype`, following referrals from the root.
    ///
    /// # Errors
    ///
    /// Returns [`ResolveError::Configuration`] when no root hints are
    /// configured, [`ResolveError::TooManyIterations`] on referral or CNAME
    /// loops, and transport/upstream errors otherwise.
    pub fn resolve(
        &mut self,
        exchanger: &mut dyn Exchanger,
        name: &Name,
        rtype: RrType,
    ) -> ResolveResult<Message> {
        if self.config.root_hints.is_empty() {
            return Err(ResolveError::Configuration(
                "no root hints configured".into(),
            ));
        }
        if let Some(cached) = self.cache.get(name, rtype) {
            let query = Message::query(0, name.clone(), rtype);
            let mut builder = MessageBuilder::response_to(&query)
                .recursion_available(true)
                .rcode(cached.rcode);
            for record in cached.records {
                builder = builder.answer(record);
            }
            return Ok(builder.build());
        }

        let mut answer_records: Vec<Record> = Vec::new();
        let mut current_name = name.clone();
        let mut servers = self.config.root_hints.clone();
        let mut steps = 0usize;

        loop {
            steps += 1;
            if steps > MAX_STEPS {
                return Err(ResolveError::TooManyIterations);
            }

            let response =
                self.query_first_responsive(exchanger, &servers, &current_name, rtype)?;

            if response.header.rcode == Rcode::NxDomain {
                let mut result = response.clone();
                result.answers = answer_records;
                result.answers.extend(response.answers.clone());
                self.cache.insert_response(name, rtype, &result);
                return Ok(result);
            }

            // Any addresses (or requested records) for the current name?
            let direct: Vec<Record> = response
                .answers
                .iter()
                .filter(|r| r.name == current_name && r.rtype() == rtype)
                .cloned()
                .collect();
            if !direct.is_empty() {
                answer_records.extend(response.answers.iter().cloned());
                let query = Message::query(0, name.clone(), rtype);
                let mut builder = MessageBuilder::response_to(&query).recursion_available(true);
                for record in dedup_records(answer_records) {
                    builder = builder.answer(record);
                }
                let result = builder.build();
                self.cache.insert_response(name, rtype, &result);
                return Ok(result);
            }

            // CNAME for the current name?
            if let Some(cname) = response
                .answers
                .iter()
                .find(|r| r.name == current_name && r.rtype() == RrType::Cname)
            {
                answer_records.push(cname.clone());
                if let RData::Cname(target) = &cname.rdata {
                    current_name = target.clone();
                    servers = self.config.root_hints.clone();
                    continue;
                }
            }

            // Referral?
            let ns_records: Vec<&Record> = response
                .authorities
                .iter()
                .filter(|r| r.rtype() == RrType::Ns)
                .collect();
            if !ns_records.is_empty() {
                let glue: Vec<SimAddr> = response
                    .additionals
                    .iter()
                    .filter_map(Record::ip_addr)
                    .map(|ip| SimAddr::new(ip, sdoh_netsim::ports::DNS))
                    .collect();
                if !glue.is_empty() {
                    servers = glue;
                    continue;
                }
                // No glue: resolve the first NS target's address.
                let ns_name = ns_records
                    .iter()
                    .find_map(|r| r.rdata.target_name().cloned());
                match ns_name {
                    Some(ns_name) => {
                        let ns_answer = self.resolve(exchanger, &ns_name, RrType::A)?;
                        let addrs: Vec<SimAddr> = ns_answer
                            .answer_addresses()
                            .into_iter()
                            .map(|ip| SimAddr::new(ip, sdoh_netsim::ports::DNS))
                            .collect();
                        if addrs.is_empty() {
                            return Err(ResolveError::TooManyIterations);
                        }
                        servers = addrs;
                        continue;
                    }
                    None => return Err(ResolveError::TooManyIterations),
                }
            }

            // NODATA: nothing more to follow.
            let query = Message::query(0, name.clone(), rtype);
            let mut builder = MessageBuilder::response_to(&query).recursion_available(true);
            for record in dedup_records(answer_records) {
                builder = builder.answer(record);
            }
            let result = builder.build();
            self.cache.insert_response(name, rtype, &result);
            return Ok(result);
        }
    }

    fn query_first_responsive(
        &self,
        exchanger: &mut dyn Exchanger,
        servers: &[SimAddr],
        name: &Name,
        rtype: RrType,
    ) -> ResolveResult<Message> {
        let mut last_err = ResolveError::Configuration("empty server list".into());
        for &server in servers {
            let client = DnsClient::new(server)
                .channel(self.config.upstream_channel)
                .timeout(self.config.upstream_timeout)
                .recursion_desired(false);
            match client.query(exchanger, name, rtype) {
                Ok(response) => return Ok(response),
                Err(err) => last_err = err,
            }
        }
        Err(last_err)
    }
}

fn dedup_records(records: Vec<Record>) -> Vec<Record> {
    let mut seen = Vec::new();
    for r in records {
        if !seen.contains(&r) {
            seen.push(r);
        }
    }
    seen
}

impl QueryHandler for RecursiveResolver {
    fn handle_query(&mut self, exchanger: &mut dyn Exchanger, query: &Message) -> Message {
        let question = match query.question() {
            Some(q) => q.clone(),
            None => return Message::error_response(query, Rcode::FormErr),
        };
        if !query.header.recursion_desired {
            // A pure recursive resolver refuses iterative queries.
            return Message::error_response(query, Rcode::Refused);
        }
        match self.resolve(exchanger, &question.name, question.rtype) {
            Ok(mut resolved) => {
                // Re-stamp the response onto the incoming query (id, question).
                let mut response = Message::response_to(query);
                response.header.recursion_available = true;
                response.header.rcode = resolved.header.rcode;
                response.answers = std::mem::take(&mut resolved.answers);
                response.authorities = std::mem::take(&mut resolved.authorities);
                response
            }
            Err(ResolveError::ErrorResponse(rcode)) => Message::error_response(query, rcode),
            Err(_) => Message::error_response(query, Rcode::ServFail),
        }
    }

    fn handler_name(&self) -> &str {
        "recursive-resolver"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::Authority;
    use crate::catalog::Catalog;
    use crate::exchange::ClientExchanger;
    use crate::service::Do53Service;
    use crate::zone::Zone;
    use crate::zonefile::parse_zone;
    use sdoh_netsim::SimNet;

    /// Builds a miniature DNS hierarchy:
    ///  - a root server delegating `org.` to an org server,
    ///  - an org server delegating `ntpns.org.` to three pool name servers,
    ///  - pool servers answering `pool.ntpns.org` with four addresses.
    fn build_hierarchy(net: &SimNet) -> Vec<SimAddr> {
        let root_addr = SimAddr::v4(198, 41, 0, 4, 53);
        let org_addr = SimAddr::v4(199, 19, 56, 1, 53);
        let ntpns_addr = SimAddr::v4(198, 51, 100, 3, 53);

        // Root zone: delegate org.
        let mut root_zone = Zone::new(Name::root());
        root_zone.add_record(Record::new(
            "org".parse().unwrap(),
            86400,
            RData::Ns("a0.org-servers.net".parse().unwrap()),
        ));
        root_zone.add_record(Record::new(
            "a0.org-servers.net".parse().unwrap(),
            86400,
            RData::A("199.19.56.1".parse().unwrap()),
        ));
        let mut root_catalog = Catalog::new();
        root_catalog.add_zone(root_zone);
        net.register(root_addr, Do53Service::new(Authority::new(root_catalog)));

        // org zone: delegate ntpns.org.
        let mut org_zone = Zone::new("org".parse().unwrap());
        org_zone.add_record(Record::new(
            "ntpns.org".parse().unwrap(),
            86400,
            RData::Ns("c.ntpns.org".parse().unwrap()),
        ));
        org_zone.add_record(Record::new(
            "c.ntpns.org".parse().unwrap(),
            86400,
            RData::A("198.51.100.3".parse().unwrap()),
        ));
        let mut org_catalog = Catalog::new();
        org_catalog.add_zone(org_zone);
        net.register(org_addr, Do53Service::new(Authority::new(org_catalog)));

        // ntpns.org zone with the pool records.
        let text = r#"
$TTL 300
@    IN SOA ns1 hostmaster 1 7200 900 1209600 300
@    IN NS  c.ntpns.org.
c    IN A   198.51.100.3
pool IN A 203.0.113.1
pool IN A 203.0.113.2
pool IN A 203.0.113.3
pool IN A 203.0.113.4
alias IN CNAME pool
"#;
        let zone = parse_zone(&"ntpns.org".parse().unwrap(), text).unwrap();
        let mut catalog = Catalog::new();
        catalog.add_zone(zone);
        net.register(ntpns_addr, Do53Service::new(Authority::new(catalog)));

        vec![root_addr]
    }

    #[test]
    fn resolves_through_delegations() {
        let net = SimNet::new(100);
        let roots = build_hierarchy(&net);
        let mut resolver = RecursiveResolver::new(
            RecursiveConfig {
                root_hints: roots,
                ..RecursiveConfig::default()
            },
            net.clock(),
        );
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(8, 8, 8, 8, 33000));
        let response = resolver
            .resolve(
                &mut exchanger,
                &"pool.ntpns.org".parse().unwrap(),
                RrType::A,
            )
            .unwrap();
        assert_eq!(response.answer_addresses().len(), 4);
    }

    #[test]
    fn follows_cnames() {
        let net = SimNet::new(101);
        let roots = build_hierarchy(&net);
        let mut resolver = RecursiveResolver::new(
            RecursiveConfig {
                root_hints: roots,
                ..RecursiveConfig::default()
            },
            net.clock(),
        );
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(8, 8, 8, 8, 33000));
        let response = resolver
            .resolve(
                &mut exchanger,
                &"alias.ntpns.org".parse().unwrap(),
                RrType::A,
            )
            .unwrap();
        assert_eq!(response.answer_addresses().len(), 4);
        assert!(response.answers.iter().any(|r| r.rtype() == RrType::Cname));
    }

    #[test]
    fn caches_results() {
        let net = SimNet::new(102);
        let roots = build_hierarchy(&net);
        let mut resolver = RecursiveResolver::new(
            RecursiveConfig {
                root_hints: roots,
                ..RecursiveConfig::default()
            },
            net.clock(),
        );
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(8, 8, 8, 8, 33000));
        let name: Name = "pool.ntpns.org".parse().unwrap();
        resolver.resolve(&mut exchanger, &name, RrType::A).unwrap();
        let requests_before = net.metrics().requests;
        let response = resolver.resolve(&mut exchanger, &name, RrType::A).unwrap();
        assert_eq!(response.answer_addresses().len(), 4);
        assert_eq!(
            net.metrics().requests,
            requests_before,
            "second resolution is served from cache"
        );
        assert!(resolver.cache().hits() >= 1);
    }

    #[test]
    fn nxdomain_propagates() {
        let net = SimNet::new(103);
        let roots = build_hierarchy(&net);
        let mut resolver = RecursiveResolver::new(
            RecursiveConfig {
                root_hints: roots,
                ..RecursiveConfig::default()
            },
            net.clock(),
        );
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(8, 8, 8, 8, 33000));
        let response = resolver
            .resolve(
                &mut exchanger,
                &"missing.ntpns.org".parse().unwrap(),
                RrType::A,
            )
            .unwrap();
        assert_eq!(response.header.rcode, Rcode::NxDomain);
    }

    #[test]
    fn no_roots_is_a_configuration_error() {
        let net = SimNet::new(104);
        let mut resolver = RecursiveResolver::new(RecursiveConfig::default(), net.clock());
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(8, 8, 8, 8, 33000));
        let err = resolver
            .resolve(&mut exchanger, &"x.test".parse().unwrap(), RrType::A)
            .unwrap_err();
        assert!(matches!(err, ResolveError::Configuration(_)));
    }

    #[test]
    fn acts_as_query_handler_for_stub_clients() {
        let net = SimNet::new(105);
        let roots = build_hierarchy(&net);
        let resolver = RecursiveResolver::new(
            RecursiveConfig {
                root_hints: roots,
                ..RecursiveConfig::default()
            },
            net.clock(),
        );
        let resolver_addr = SimAddr::v4(8, 8, 8, 8, 53);
        net.register(resolver_addr, Do53Service::new(resolver));

        let client = DnsClient::new(resolver_addr);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let response = client
            .query(
                &mut exchanger,
                &"pool.ntpns.org".parse().unwrap(),
                RrType::A,
            )
            .unwrap();
        assert_eq!(response.answer_addresses().len(), 4);
        assert!(response.header.recursion_available);
    }

    #[test]
    fn refuses_non_recursive_queries() {
        let net = SimNet::new(106);
        let roots = build_hierarchy(&net);
        let resolver = RecursiveResolver::new(
            RecursiveConfig {
                root_hints: roots,
                ..RecursiveConfig::default()
            },
            net.clock(),
        );
        let resolver_addr = SimAddr::v4(8, 8, 8, 8, 53);
        net.register(resolver_addr, Do53Service::new(resolver));

        let client = DnsClient::new(resolver_addr).recursion_desired(false);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let err = client
            .query(
                &mut exchanger,
                &"pool.ntpns.org".parse().unwrap(),
                RrType::A,
            )
            .unwrap_err();
        assert_eq!(err, ResolveError::ErrorResponse(Rcode::Refused));
    }
}
