//! An iterative ("recursive") resolver engine: starts at root hints, follows
//! referrals and CNAMEs, and caches what it learns.
//!
//! This is the engine running inside each simulated public DoH resolver
//! (dns.google, cloudflare-dns.com, dns.quad9.net in the paper's Figure 1):
//! it receives recursive queries from clients and issues non-recursive
//! queries to authoritative servers.
//!
//! # Hardening against the off-path attacker
//!
//! The resolver's upstream leg is plain Do53 — the unprotected path the
//! paper's attacker races forged responses onto. [`HardeningConfig`]
//! selects which classical defenses are active (all of them by default):
//!
//! * **randomized transaction ids** — a weak resolver allocates them
//!   sequentially, so one observed query predicts every later id;
//! * **ephemeral source ports** — a weak resolver queries from its fixed
//!   service port, surrendering 16 bits of the forgery search space;
//! * **0x20 mixed-case encoding** — query-name letter casing is randomized
//!   and verified on the echoed question ([`DnsClient::use_0x20`]);
//! * **bailiwick enforcement** — only records inside the zone of the
//!   server that supplied them are believed: out-of-zone answer records
//!   are dropped, referrals must delegate within the queried server's
//!   bailiwick, and glue is accepted only for NS targets inside the
//!   delegated zone (anything else is re-resolved from the roots). Cached
//!   data carries an RFC 2181 credibility rank
//!   ([`Credibility`](crate::cache::Credibility)) so glue can never
//!   displace an authoritative answer.
//!
//! [`HardeningConfig::predictable_ids`] reproduces the weak baseline the
//! paper attacks; experiment E14 sweeps the defense gradient in between.

use std::collections::HashSet;
use std::time::Duration;

use sdoh_dns_wire::{Message, MessageBuilder, Name, RData, Rcode, Record, RrType, Ttl};
use sdoh_netsim::{ChannelKind, SimAddr, SimClock};

use crate::cache::{CachedAnswer, Credibility, DnsCache};
use crate::client::{DnsClient, QueryIdentifiers};
use crate::error::{ResolveError, ResolveResult};
use crate::exchange::Exchanger;
use crate::handler::QueryHandler;

/// Limit on referral hops, CNAME links and nested NS-address resolutions for
/// a single query.
const MAX_STEPS: usize = 24;

/// Limit on *nested* resolutions (resolving an NS target's address to
/// follow a glueless — or glue-discarded — referral). Each nesting level
/// is a fresh iteration loop with its own `MAX_STEPS` budget, so without
/// this cap two zones delegating to name servers inside each other would
/// recurse until the stack overflows — an off-path attacker could force
/// exactly that with forged glueless referrals.
const MAX_NS_DEPTH: usize = 6;

/// Which defenses against off-path response forgery are active on the
/// resolver's upstream (plain Do53) queries. The default enables all of
/// them; [`HardeningConfig::predictable_ids`] is the weak baseline the
/// paper's attacker exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardeningConfig {
    /// Draw a fresh random transaction id per upstream query. Off, ids are
    /// allocated sequentially — one observed query predicts all later ids.
    pub randomize_txid: bool,
    /// Send each upstream query from a fresh ephemeral source port. Off,
    /// queries depart from the resolver's fixed (well-known) port.
    pub randomize_source_port: bool,
    /// Encode upstream query names with 0x20 mixed casing and verify the
    /// echoed question case-exactly.
    pub encode_0x20: bool,
    /// Discard out-of-bailiwick records, validate referrals and glue, and
    /// rank cached data by credibility.
    pub enforce_bailiwick: bool,
}

impl Default for HardeningConfig {
    fn default() -> Self {
        HardeningConfig::full()
    }
}

impl HardeningConfig {
    /// Every defense enabled — the secure default.
    pub fn full() -> Self {
        HardeningConfig {
            randomize_txid: true,
            randomize_source_port: true,
            encode_0x20: true,
            enforce_bailiwick: true,
        }
    }

    /// No defenses: sequential transaction ids, fixed source port, no
    /// 0x20, no bailiwick checks. This reproduces the weak resolver of the
    /// paper's off-path attack (and of this crate before hardening).
    pub fn predictable_ids() -> Self {
        HardeningConfig {
            randomize_txid: false,
            randomize_source_port: false,
            encode_0x20: false,
            enforce_bailiwick: false,
        }
    }

    /// Toggles transaction-id randomization.
    pub fn randomize_txid(mut self, on: bool) -> Self {
        self.randomize_txid = on;
        self
    }

    /// Toggles source-port randomization.
    pub fn randomize_source_port(mut self, on: bool) -> Self {
        self.randomize_source_port = on;
        self
    }

    /// Toggles 0x20 mixed-case encoding.
    pub fn encode_0x20(mut self, on: bool) -> Self {
        self.encode_0x20 = on;
        self
    }

    /// Toggles bailiwick enforcement and credibility ranking.
    pub fn enforce_bailiwick(mut self, on: bool) -> Self {
        self.enforce_bailiwick = on;
        self
    }

    /// The identifier entropy (bits) an off-path forger must overcome per
    /// upstream query **once its predictors are warm** (it has observed at
    /// least one earlier query from the victim): 16 for a random
    /// transaction id, 16 for a random source port, plus the 0x20 case
    /// bits of the query name.
    pub fn identifier_entropy_bits(&self, qname_case_bits: u8) -> u8 {
        let mut bits: u16 = 0;
        if self.randomize_txid {
            bits += 16;
        }
        if self.randomize_source_port {
            bits += 16;
        }
        if self.encode_0x20 {
            bits += u16::from(qname_case_bits);
        }
        u8::try_from(bits.min(255)).unwrap_or(u8::MAX)
    }
}

/// Configuration for a [`RecursiveResolver`].
#[derive(Debug, Clone)]
pub struct RecursiveConfig {
    /// Addresses of the root name servers (root hints).
    pub root_hints: Vec<SimAddr>,
    /// Channel used for upstream (non-recursive) queries. Authoritative
    /// traffic is plain UDP in the real DNS, and that is the default.
    pub upstream_channel: ChannelKind,
    /// Timeout for each upstream query.
    pub upstream_timeout: Duration,
    /// Capacity of the resolver cache.
    pub cache_capacity: usize,
    /// Off-path defenses of the upstream leg (all enabled by default).
    pub hardening: HardeningConfig,
}

impl Default for RecursiveConfig {
    fn default() -> Self {
        RecursiveConfig {
            root_hints: Vec::new(),
            upstream_channel: ChannelKind::Plain,
            upstream_timeout: Duration::from_secs(2),
            cache_capacity: 4096,
            hardening: HardeningConfig::default(),
        }
    }
}

/// An iterative resolver with a cache.
#[derive(Debug)]
pub struct RecursiveResolver {
    config: RecursiveConfig,
    cache: DnsCache,
    /// Next sequential transaction id, used when `randomize_txid` is off.
    next_seq_txid: u16,
}

impl RecursiveResolver {
    /// Creates a resolver with the given configuration, using `clock` for
    /// cache TTL accounting.
    pub fn new(config: RecursiveConfig, clock: SimClock) -> Self {
        let cache = DnsCache::new(clock, config.cache_capacity);
        RecursiveResolver {
            config,
            cache,
            next_seq_txid: 0,
        }
    }

    /// Read access to the cache (e.g. for inspecting hit rates).
    pub fn cache(&self) -> &DnsCache {
        &self.cache
    }

    /// The active defense configuration.
    pub fn hardening(&self) -> HardeningConfig {
        self.config.hardening
    }

    /// Resolves `name`/`rtype`, following referrals from the root.
    ///
    /// # Errors
    ///
    /// Returns [`ResolveError::Configuration`] when no root hints are
    /// configured, [`ResolveError::TooManyIterations`] on referral or CNAME
    /// loops, [`ResolveError::OutOfBailiwick`] when bailiwick enforcement
    /// rejects every record of a response, and transport/upstream errors
    /// otherwise.
    pub fn resolve(
        &mut self,
        exchanger: &mut dyn Exchanger,
        name: &Name,
        rtype: RrType,
    ) -> ResolveResult<Message> {
        self.resolve_at_depth(exchanger, name, rtype, 0)
    }

    fn resolve_at_depth(
        &mut self,
        exchanger: &mut dyn Exchanger,
        name: &Name,
        rtype: RrType,
        ns_depth: usize,
    ) -> ResolveResult<Message> {
        if self.config.root_hints.is_empty() {
            return Err(ResolveError::Configuration(
                "no root hints configured".into(),
            ));
        }
        if ns_depth > MAX_NS_DEPTH {
            return Err(ResolveError::TooManyIterations);
        }
        if let Some(cached) = self.cache.get(name, rtype) {
            let query = Message::query(0, name.clone(), rtype);
            let mut builder = MessageBuilder::response_to(&query)
                .recursion_available(true)
                .rcode(cached.rcode);
            for record in cached.records {
                builder = builder.answer(record);
            }
            return Ok(builder.build());
        }

        let enforce = self.config.hardening.enforce_bailiwick;
        let mut answer_records: Vec<Record> = Vec::new();
        let mut current_name = name.clone();
        let mut servers = self.config.root_hints.clone();
        // The zone the current servers are authoritative for (or were
        // delegated): the only namespace their records are believed in.
        let mut bailiwick = Name::root();
        let mut steps = 0usize;

        loop {
            steps += 1;
            if steps > MAX_STEPS {
                return Err(ResolveError::TooManyIterations);
            }

            let response =
                self.query_first_responsive(exchanger, &servers, &current_name, rtype)?;
            let credibility = Credibility::of_answer(response.header.authoritative);

            if response.header.rcode == Rcode::NxDomain {
                // Negative-cache under the name that actually does not
                // exist: mid-chain NXDOMAIN (for a CNAME target) must be
                // keyed by the target, not the original query name. Only
                // in-bailiwick records of the negative response survive.
                let negative = sanitize_response(&response, &bailiwick, enforce);
                self.cache
                    .insert_response(&current_name, rtype, &negative, credibility);
                let mut result = negative.clone();
                result.answers = dedup_records(
                    answer_records
                        .into_iter()
                        .chain(negative.answers.iter().cloned())
                        .collect(),
                );
                if current_name != *name && !result.answers.is_empty() {
                    // The full chain is a complete (negative) answer for
                    // the original name too.
                    self.cache
                        .insert_response(name, rtype, &result, credibility);
                }
                return Ok(result);
            }

            // Records this response may contribute: inside the bailiwick of
            // the server that supplied them, or everything in weak mode.
            let usable: Vec<&Record> = response
                .answers
                .iter()
                .filter(|r| !enforce || r.name.is_subdomain_of(&bailiwick))
                .collect();

            // Walk the answer chain inside this response: direct records
            // for the current name, following CNAME links that the same
            // message resolves.
            let mut chain: Vec<Record> = Vec::new();
            let mut chain_name = current_name.clone();
            let direct: Vec<Record> = loop {
                let direct: Vec<Record> = usable
                    .iter()
                    .filter(|r| r.name == chain_name && r.rtype() == rtype)
                    .map(|r| (*r).clone())
                    .collect();
                if !direct.is_empty() {
                    break direct;
                }
                match usable
                    .iter()
                    .find(|r| r.name == chain_name && r.rtype() == RrType::Cname)
                {
                    Some(cname) => {
                        chain.push((*cname).clone());
                        if chain.len() > MAX_STEPS {
                            return Err(ResolveError::TooManyIterations);
                        }
                        match &cname.rdata {
                            RData::Cname(target) => chain_name = target.clone(),
                            _ => break Vec::new(),
                        }
                    }
                    None => break Vec::new(),
                }
            };

            if !direct.is_empty() {
                if enforce {
                    // Only the records that answer the query chain are
                    // believed; unrelated records a malicious server
                    // appended never reach the caller or the cache.
                    answer_records.extend(chain);
                    answer_records.extend(direct);
                } else {
                    // The historical permissive behaviour (the
                    // vulnerability): keep every record the server sent.
                    answer_records.extend(chain);
                    answer_records.extend(response.answers.iter().cloned());
                }
                let query = Message::query(0, name.clone(), rtype);
                let mut builder = MessageBuilder::response_to(&query).recursion_available(true);
                for record in dedup_records(answer_records) {
                    builder = builder.answer(record);
                }
                let result = builder.build();
                self.cache
                    .insert_response(name, rtype, &result, credibility);
                return Ok(result);
            }

            // The chain advanced but its tail lives elsewhere: restart the
            // iteration from the roots for the target.
            if chain_name != current_name {
                answer_records.extend(chain);
                current_name = chain_name;
                servers = self.config.root_hints.clone();
                bailiwick = Name::root();
                continue;
            }

            // Referral?
            let all_ns: Vec<&Record> = response
                .authorities
                .iter()
                .filter(|r| r.rtype() == RrType::Ns)
                .collect();
            let ns_records: Vec<&Record> = all_ns
                .iter()
                .copied()
                .filter(|r| {
                    // A server may only delegate within its own bailiwick,
                    // and only towards the name being resolved.
                    !enforce
                        || (r.name.is_subdomain_of(&bailiwick)
                            && current_name.is_subdomain_of(&r.name))
                })
                .collect();
            if !all_ns.is_empty() && ns_records.is_empty() {
                // Every NS record was out of bailiwick: the response is
                // bogus (a poisoning attempt), not a usable referral.
                return Err(ResolveError::OutOfBailiwick);
            }
            if !ns_records.is_empty() {
                // A referral delegates exactly one zone. When the filtered
                // NS records name several candidate zones, pin the
                // **deepest** one (the most restrictive bailiwick) and
                // only believe the NS records of that zone, so glue trust
                // and the narrowed bailiwick are judged consistently
                // against the zone the next servers actually serve.
                let zone = ns_records
                    .iter()
                    .map(|r| r.name.clone())
                    .max_by_key(Name::num_labels)
                    .expect("ns_records is non-empty"); // sdoh-lint: allow(no-panic, "the surrounding branch runs only when ns_records is non-empty")
                let ns_records: Vec<&Record> =
                    ns_records.into_iter().filter(|r| r.name == zone).collect();
                let glue = if enforce {
                    self.trusted_glue(&response, &ns_records, &zone)
                } else {
                    // Blind glue (the vulnerability): every additional-
                    // section address is used verbatim, no matter which
                    // name it claims to belong to.
                    response
                        .additionals
                        .iter()
                        .filter_map(Record::ip_addr)
                        .map(|ip| SimAddr::new(ip, sdoh_netsim::ports::DNS))
                        .collect::<Vec<_>>()
                };
                if !glue.is_empty() {
                    servers = glue;
                    if enforce {
                        bailiwick = zone;
                    }
                    continue;
                }
                // No (trustworthy) glue: resolve an NS target's address.
                let ns_name = ns_records
                    .iter()
                    .find_map(|r| r.rdata.target_name().cloned());
                match ns_name {
                    Some(ns_name) => {
                        let ns_answer =
                            self.resolve_at_depth(exchanger, &ns_name, RrType::A, ns_depth + 1)?;
                        let addrs: Vec<SimAddr> = ns_answer
                            .answer_addresses()
                            .into_iter()
                            .map(|ip| SimAddr::new(ip, sdoh_netsim::ports::DNS))
                            .collect();
                        if addrs.is_empty() {
                            return Err(ResolveError::TooManyIterations);
                        }
                        servers = addrs;
                        if enforce {
                            bailiwick = zone;
                        }
                        continue;
                    }
                    None => return Err(ResolveError::TooManyIterations),
                }
            }

            if enforce && !response.answers.is_empty() && usable.is_empty() {
                // The response carried only out-of-bailiwick answers: a
                // poisoning attempt, not a NODATA answer.
                return Err(ResolveError::OutOfBailiwick);
            }

            // NODATA: nothing more to follow.
            if current_name != *name {
                // Negative-cache the chain tail under its own name.
                let negative = sanitize_response(&response, &bailiwick, enforce);
                self.cache
                    .insert_response(&current_name, rtype, &negative, credibility);
            }
            let query = Message::query(0, name.clone(), rtype);
            let mut builder = MessageBuilder::response_to(&query).recursion_available(true);
            for record in dedup_records(answer_records) {
                builder = builder.answer(record);
            }
            let result = builder.build();
            self.cache
                .insert_response(name, rtype, &result, credibility);
            return Ok(result);
        }
    }

    /// Collects glue addresses for the NS targets of a validated referral,
    /// trusting only targets **inside the delegated zone** — glue for any
    /// other name is discarded (and the NS target re-resolved from the
    /// roots by the caller). Trusted glue is cached at the lowest
    /// credibility rank so it can serve future NS lookups but can never
    /// displace better data.
    fn trusted_glue(
        &mut self,
        response: &Message,
        ns_records: &[&Record],
        zone: &Name,
    ) -> Vec<SimAddr> {
        let mut glue = Vec::new();
        for ns in ns_records {
            let target = match ns.rdata.target_name() {
                Some(target) => target,
                None => continue,
            };
            if !target.is_subdomain_of(zone) {
                // Off-zone NS target: the delegating server has no
                // authority over its address. Never trust glue for it.
                continue;
            }
            for rt in [RrType::A, RrType::Aaaa] {
                let records: Vec<Record> = response
                    .additionals
                    .iter()
                    .filter(|r| r.name == *target && r.rtype() == rt)
                    .cloned()
                    .collect();
                if records.is_empty() {
                    continue;
                }
                glue.extend(
                    records
                        .iter()
                        .filter_map(Record::ip_addr)
                        .map(|ip| SimAddr::new(ip, sdoh_netsim::ports::DNS)),
                );
                let ttl = records
                    .iter()
                    .map(|r| Ttl::from_secs(r.ttl))
                    .min()
                    .unwrap_or(Ttl::ZERO);
                self.cache.insert_with_ttl(
                    target.clone(),
                    rt,
                    CachedAnswer {
                        records,
                        rcode: Rcode::NoError,
                    },
                    ttl,
                    Credibility::Additional,
                );
            }
        }
        glue
    }

    fn query_first_responsive(
        &mut self,
        exchanger: &mut dyn Exchanger,
        servers: &[SimAddr],
        name: &Name,
        rtype: RrType,
    ) -> ResolveResult<Message> {
        let hardening = self.config.hardening;
        let mut last_err = ResolveError::Configuration("empty server list".into());
        for &server in servers {
            let client = DnsClient::new(server)
                .channel(self.config.upstream_channel)
                .timeout(self.config.upstream_timeout)
                .recursion_desired(false)
                .use_0x20(hardening.encode_0x20);
            let txid = if hardening.randomize_txid {
                exchanger.next_id()
            } else {
                self.next_seq_txid = self.next_seq_txid.wrapping_add(1);
                self.next_seq_txid
            };
            let source_port = hardening
                .randomize_source_port
                .then(|| 1024 + exchanger.next_id() % 64512);
            let case_seed = hardening
                .encode_0x20
                .then(|| QueryIdentifiers::draw_case_seed(exchanger));
            let identifiers = QueryIdentifiers {
                txid,
                source_port,
                case_seed,
            };
            match client.query_with(exchanger, name, rtype, identifiers) {
                Ok(response) => return Ok(response),
                Err(err) => last_err = err,
            }
        }
        Err(last_err)
    }
}

/// Strips every record outside `bailiwick` from a response before it is
/// cached or surfaced (no-op in weak mode).
fn sanitize_response(response: &Message, bailiwick: &Name, enforce: bool) -> Message {
    let mut sanitized = response.clone();
    if enforce {
        sanitized
            .answers
            .retain(|r| r.name.is_subdomain_of(bailiwick));
        sanitized
            .authorities
            .retain(|r| r.name.is_subdomain_of(bailiwick));
        sanitized
            .additionals
            .retain(|r| r.name.is_subdomain_of(bailiwick));
    }
    sanitized
}

/// Order-preserving record deduplication, hash-keyed so a large (or
/// maliciously inflated) answer costs O(n) instead of the O(n²) a
/// `Vec::contains` scan would.
fn dedup_records(records: Vec<Record>) -> Vec<Record> {
    let mut seen: HashSet<Record> = HashSet::with_capacity(records.len());
    let mut out = Vec::with_capacity(records.len());
    for r in records {
        if seen.insert(r.clone()) {
            out.push(r);
        }
    }
    out
}

impl QueryHandler for RecursiveResolver {
    fn handle_query(&mut self, exchanger: &mut dyn Exchanger, query: &Message) -> Message {
        let question = match query.question() {
            Some(q) => q.clone(),
            None => return Message::error_response(query, Rcode::FormErr),
        };
        if !query.header.recursion_desired {
            // A pure recursive resolver refuses iterative queries.
            return Message::error_response(query, Rcode::Refused);
        }
        match self.resolve(exchanger, &question.name, question.rtype) {
            Ok(mut resolved) => {
                // Re-stamp the response onto the incoming query (id, question).
                let mut response = Message::response_to(query);
                response.header.recursion_available = true;
                response.header.rcode = resolved.header.rcode;
                response.answers = std::mem::take(&mut resolved.answers);
                response.authorities = std::mem::take(&mut resolved.authorities);
                response
            }
            Err(ResolveError::ErrorResponse(rcode)) => Message::error_response(query, rcode),
            Err(_) => Message::error_response(query, Rcode::ServFail),
        }
    }

    fn handler_name(&self) -> &str {
        "recursive-resolver"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::Authority;
    use crate::catalog::Catalog;
    use crate::exchange::ClientExchanger;
    use crate::service::Do53Service;
    use crate::zone::Zone;
    use crate::zonefile::parse_zone;
    use sdoh_netsim::{NetResult, SimInstant, SimNet};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Builds a miniature DNS hierarchy:
    ///  - a root server delegating `org.` to an org server,
    ///  - an org server delegating `ntpns.org.` to three pool name servers,
    ///  - pool servers answering `pool.ntpns.org` with four addresses.
    fn build_hierarchy(net: &SimNet) -> Vec<SimAddr> {
        let root_addr = SimAddr::v4(198, 41, 0, 4, 53);
        let org_addr = SimAddr::v4(199, 19, 56, 1, 53);
        let ntpns_addr = SimAddr::v4(198, 51, 100, 3, 53);

        // Root zone: delegate org.
        let mut root_zone = Zone::new(Name::root());
        root_zone.add_record(Record::new(
            "org".parse().unwrap(),
            86400,
            RData::Ns("a0.org-servers.net".parse().unwrap()),
        ));
        root_zone.add_record(Record::new(
            "a0.org-servers.net".parse().unwrap(),
            86400,
            RData::A("199.19.56.1".parse().unwrap()),
        ));
        let mut root_catalog = Catalog::new();
        root_catalog.add_zone(root_zone);
        net.register(root_addr, Do53Service::new(Authority::new(root_catalog)));

        // org zone: delegate ntpns.org.
        let mut org_zone = Zone::new("org".parse().unwrap());
        org_zone.add_record(Record::new(
            "ntpns.org".parse().unwrap(),
            86400,
            RData::Ns("c.ntpns.org".parse().unwrap()),
        ));
        org_zone.add_record(Record::new(
            "c.ntpns.org".parse().unwrap(),
            86400,
            RData::A("198.51.100.3".parse().unwrap()),
        ));
        let mut org_catalog = Catalog::new();
        org_catalog.add_zone(org_zone);
        net.register(org_addr, Do53Service::new(Authority::new(org_catalog)));

        // ntpns.org zone with the pool records.
        let text = r#"
$TTL 300
@    IN SOA ns1 hostmaster 1 7200 900 1209600 300
@    IN NS  c.ntpns.org.
c    IN A   198.51.100.3
pool IN A 203.0.113.1
pool IN A 203.0.113.2
pool IN A 203.0.113.3
pool IN A 203.0.113.4
alias IN CNAME pool
"#;
        let zone = parse_zone(&"ntpns.org".parse().unwrap(), text).unwrap();
        let mut catalog = Catalog::new();
        catalog.add_zone(zone);
        net.register(ntpns_addr, Do53Service::new(Authority::new(catalog)));

        vec![root_addr]
    }

    fn resolver_with(
        net: &SimNet,
        roots: Vec<SimAddr>,
        hardening: HardeningConfig,
    ) -> RecursiveResolver {
        RecursiveResolver::new(
            RecursiveConfig {
                root_hints: roots,
                hardening,
                ..RecursiveConfig::default()
            },
            net.clock(),
        )
    }

    #[test]
    fn resolves_through_delegations() {
        for hardening in [HardeningConfig::full(), HardeningConfig::predictable_ids()] {
            let net = SimNet::new(100);
            let roots = build_hierarchy(&net);
            let mut resolver = resolver_with(&net, roots, hardening);
            let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(8, 8, 8, 8, 33000));
            let response = resolver
                .resolve(
                    &mut exchanger,
                    &"pool.ntpns.org".parse().unwrap(),
                    RrType::A,
                )
                .unwrap();
            assert_eq!(response.answer_addresses().len(), 4, "{hardening:?}");
        }
    }

    #[test]
    fn follows_cnames() {
        let net = SimNet::new(101);
        let roots = build_hierarchy(&net);
        let mut resolver = RecursiveResolver::new(
            RecursiveConfig {
                root_hints: roots,
                ..RecursiveConfig::default()
            },
            net.clock(),
        );
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(8, 8, 8, 8, 33000));
        let response = resolver
            .resolve(
                &mut exchanger,
                &"alias.ntpns.org".parse().unwrap(),
                RrType::A,
            )
            .unwrap();
        assert_eq!(response.answer_addresses().len(), 4);
        assert!(response.answers.iter().any(|r| r.rtype() == RrType::Cname));
    }

    #[test]
    fn caches_results() {
        let net = SimNet::new(102);
        let roots = build_hierarchy(&net);
        let mut resolver = RecursiveResolver::new(
            RecursiveConfig {
                root_hints: roots,
                ..RecursiveConfig::default()
            },
            net.clock(),
        );
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(8, 8, 8, 8, 33000));
        let name: Name = "pool.ntpns.org".parse().unwrap();
        resolver.resolve(&mut exchanger, &name, RrType::A).unwrap();
        let requests_before = net.metrics().requests;
        let response = resolver.resolve(&mut exchanger, &name, RrType::A).unwrap();
        assert_eq!(response.answer_addresses().len(), 4);
        assert_eq!(
            net.metrics().requests,
            requests_before,
            "second resolution is served from cache"
        );
        assert!(resolver.cache().hits() >= 1);
    }

    #[test]
    fn nxdomain_propagates() {
        let net = SimNet::new(103);
        let roots = build_hierarchy(&net);
        let mut resolver = RecursiveResolver::new(
            RecursiveConfig {
                root_hints: roots,
                ..RecursiveConfig::default()
            },
            net.clock(),
        );
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(8, 8, 8, 8, 33000));
        let response = resolver
            .resolve(
                &mut exchanger,
                &"missing.ntpns.org".parse().unwrap(),
                RrType::A,
            )
            .unwrap();
        assert_eq!(response.header.rcode, Rcode::NxDomain);
    }

    #[test]
    fn no_roots_is_a_configuration_error() {
        let net = SimNet::new(104);
        let mut resolver = RecursiveResolver::new(RecursiveConfig::default(), net.clock());
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(8, 8, 8, 8, 33000));
        let err = resolver
            .resolve(&mut exchanger, &"x.test".parse().unwrap(), RrType::A)
            .unwrap_err();
        assert!(matches!(err, ResolveError::Configuration(_)));
    }

    #[test]
    fn acts_as_query_handler_for_stub_clients() {
        let net = SimNet::new(105);
        let roots = build_hierarchy(&net);
        let resolver = RecursiveResolver::new(
            RecursiveConfig {
                root_hints: roots,
                ..RecursiveConfig::default()
            },
            net.clock(),
        );
        let resolver_addr = SimAddr::v4(8, 8, 8, 8, 53);
        net.register(resolver_addr, Do53Service::new(resolver));

        let client = DnsClient::new(resolver_addr);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let response = client
            .query(
                &mut exchanger,
                &"pool.ntpns.org".parse().unwrap(),
                RrType::A,
            )
            .unwrap();
        assert_eq!(response.answer_addresses().len(), 4);
        assert!(response.header.recursion_available);
    }

    #[test]
    fn refuses_non_recursive_queries() {
        let net = SimNet::new(106);
        let roots = build_hierarchy(&net);
        let resolver = RecursiveResolver::new(
            RecursiveConfig {
                root_hints: roots,
                ..RecursiveConfig::default()
            },
            net.clock(),
        );
        let resolver_addr = SimAddr::v4(8, 8, 8, 8, 53);
        net.register(resolver_addr, Do53Service::new(resolver));

        let client = DnsClient::new(resolver_addr).recursion_desired(false);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let err = client
            .query(
                &mut exchanger,
                &"pool.ntpns.org".parse().unwrap(),
                RrType::A,
            )
            .unwrap_err();
        assert_eq!(err, ResolveError::ErrorResponse(Rcode::Refused));
    }

    /// An exchanger wrapper recording the transaction id and source port
    /// of every upstream query — the attacker's view of the resolver's
    /// identifier hygiene.
    struct Recording<'a> {
        inner: ClientExchanger<'a>,
        txids: Rc<RefCell<Vec<u16>>>,
        ports: Rc<RefCell<Vec<Option<u16>>>>,
        cased: Rc<RefCell<Vec<bool>>>,
    }

    impl<'a> Recording<'a> {
        fn new(inner: ClientExchanger<'a>) -> Self {
            Recording {
                inner,
                txids: Rc::new(RefCell::new(Vec::new())),
                ports: Rc::new(RefCell::new(Vec::new())),
                cased: Rc::new(RefCell::new(Vec::new())),
            }
        }

        fn record(&self, payload: &[u8], port: Option<u16>) {
            if let Ok(query) = Message::decode(payload) {
                self.txids.borrow_mut().push(query.header.id);
                self.ports.borrow_mut().push(port);
                if let Some(q) = query.question() {
                    self.cased
                        .borrow_mut()
                        .push(!q.name.is_canonical_lowercase());
                }
            }
        }
    }

    impl Exchanger for Recording<'_> {
        fn exchange(
            &mut self,
            dst: SimAddr,
            channel: ChannelKind,
            payload: &[u8],
            timeout: Duration,
        ) -> NetResult<Vec<u8>> {
            self.record(payload, None);
            self.inner.exchange(dst, channel, payload, timeout)
        }

        fn exchange_from_port(
            &mut self,
            src_port: u16,
            dst: SimAddr,
            channel: ChannelKind,
            payload: &[u8],
            timeout: Duration,
        ) -> NetResult<Vec<u8>> {
            self.record(payload, Some(src_port));
            self.inner
                .exchange_from_port(src_port, dst, channel, payload, timeout)
        }

        fn next_id(&mut self) -> u16 {
            self.inner.next_id()
        }

        fn now(&self) -> SimInstant {
            self.inner.now()
        }
    }

    #[test]
    fn weak_config_exposes_sequential_txids_and_a_fixed_port() {
        let net = SimNet::new(107);
        let roots = build_hierarchy(&net);
        let mut resolver = resolver_with(&net, roots, HardeningConfig::predictable_ids());
        let mut exchanger =
            Recording::new(ClientExchanger::new(&net, SimAddr::v4(8, 8, 8, 8, 33000)));
        resolver
            .resolve(
                &mut exchanger,
                &"pool.ntpns.org".parse().unwrap(),
                RrType::A,
            )
            .unwrap();
        let txids = exchanger.txids.borrow();
        assert!(txids.len() >= 3, "root, org, ntpns legs");
        assert!(
            txids.windows(2).all(|w| w[1] == w[0].wrapping_add(1)),
            "sequential ids: {txids:?}"
        );
        assert!(
            exchanger.ports.borrow().iter().all(Option::is_none),
            "weak resolver keeps its fixed source port"
        );
        assert!(
            exchanger.cased.borrow().iter().all(|c| !c),
            "no 0x20 casing in the weak baseline"
        );
    }

    #[test]
    fn hardened_config_randomizes_every_identifier() {
        let net = SimNet::new(108);
        let roots = build_hierarchy(&net);
        let mut resolver = resolver_with(&net, roots, HardeningConfig::full());
        let mut exchanger =
            Recording::new(ClientExchanger::new(&net, SimAddr::v4(8, 8, 8, 8, 33000)));
        resolver
            .resolve(
                &mut exchanger,
                &"pool.ntpns.org".parse().unwrap(),
                RrType::A,
            )
            .unwrap();
        let txids = exchanger.txids.borrow();
        assert!(txids.len() >= 3);
        assert!(
            !txids.windows(2).all(|w| w[1] == w[0].wrapping_add(1)),
            "random ids must not be sequential: {txids:?}"
        );
        let ports = exchanger.ports.borrow();
        assert!(ports.iter().all(Option::is_some), "every query ephemeral");
        assert!(ports.iter().all(|p| p.unwrap() >= 1024));
        let distinct: std::collections::HashSet<_> = ports.iter().copied().collect();
        assert!(distinct.len() > 1, "ports vary: {ports:?}");
        assert!(
            exchanger.cased.borrow().iter().any(|&c| c),
            "0x20 casing applied"
        );
    }

    #[test]
    fn hardening_entropy_accounting() {
        let full = HardeningConfig::full();
        assert_eq!(full.identifier_entropy_bits(12), 44);
        assert_eq!(
            HardeningConfig::predictable_ids().identifier_entropy_bits(12),
            0
        );
        assert_eq!(
            HardeningConfig::predictable_ids()
                .randomize_txid(true)
                .identifier_entropy_bits(12),
            16
        );
        assert_eq!(
            HardeningConfig::predictable_ids()
                .randomize_txid(true)
                .randomize_source_port(true)
                .identifier_entropy_bits(12),
            32
        );
        assert_eq!(full.encode_0x20(false).identifier_entropy_bits(12), 32);
        assert_eq!(full.enforce_bailiwick(false), full.enforce_bailiwick(false));
    }

    #[test]
    fn dedup_preserves_first_occurrence_order() {
        let a = Record::address(
            "a.example".parse().unwrap(),
            60,
            "192.0.2.1".parse().unwrap(),
        );
        let b = Record::address(
            "b.example".parse().unwrap(),
            60,
            "192.0.2.2".parse().unwrap(),
        );
        let deduped = dedup_records(vec![a.clone(), b.clone(), a.clone(), b.clone()]);
        assert_eq!(deduped, vec![a, b]);
    }

    #[test]
    fn dedup_handles_inflated_answers_in_linear_time() {
        // Regression for the O(n²) `Vec::contains` scan: a maliciously
        // inflated answer (30k records, half duplicates) must dedup in
        // well under a second even unoptimized; the quadratic version
        // needs ~4.5e8 record comparisons here and takes minutes.
        let name: Name = "pool.ntpns.org".parse().unwrap();
        let records: Vec<Record> = (0..30_000u32)
            .map(|i| {
                let i = i % 15_000;
                Record::address(
                    name.clone(),
                    300,
                    std::net::IpAddr::V4(std::net::Ipv4Addr::new(
                        10,
                        (i >> 16) as u8,
                        (i >> 8) as u8,
                        i as u8,
                    )),
                )
            })
            .collect();
        let started = std::time::Instant::now();
        let deduped = dedup_records(records);
        assert_eq!(deduped.len(), 15_000);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "dedup took {:?}",
            started.elapsed()
        );
    }
}
