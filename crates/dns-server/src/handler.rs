//! The [`QueryHandler`] trait: anything that can turn a DNS query message
//! into a response message, possibly by querying other servers.

use sdoh_dns_wire::Message;

use crate::authority::Authority;
use crate::exchange::Exchanger;

/// A DNS query-answering component.
///
/// Authoritative servers answer from zone data, recursive resolvers answer
/// by iterating over the delegation tree, forwarders answer by asking an
/// upstream resolver, and compromised resolvers answer with whatever the
/// attacker configured.
pub trait QueryHandler {
    /// Produces a response for `query`, using `exchanger` for any upstream
    /// queries this handler needs to make.
    fn handle_query(&mut self, exchanger: &mut dyn Exchanger, query: &Message) -> Message;

    /// Human-readable name used in diagnostics.
    fn handler_name(&self) -> &str {
        "query-handler"
    }
}

impl<H: QueryHandler + ?Sized> QueryHandler for Box<H> {
    fn handle_query(&mut self, exchanger: &mut dyn Exchanger, query: &Message) -> Message {
        (**self).handle_query(exchanger, query)
    }

    fn handler_name(&self) -> &str {
        (**self).handler_name()
    }
}

/// A shared handler within one thread: lets the same component be
/// registered as a network service *and* kept on the driver's side of the
/// simulation. A query arriving while the handler is already borrowed (a
/// handler transitively querying itself) is answered SERVFAIL rather than
/// supporting re-entrancy.
///
/// Prefer [`Arc<Mutex<H>>`](std::sync::Arc) — the thread-safe shared
/// handler below — for new code: it works identically inside the
/// single-threaded simulator and additionally crosses threads, which the
/// real-socket serving runtime requires. This `Rc` impl remains for
/// callers that cannot pay for atomics.
impl<H: QueryHandler> QueryHandler for std::rc::Rc<std::cell::RefCell<H>> {
    fn handle_query(&mut self, exchanger: &mut dyn Exchanger, query: &Message) -> Message {
        match self.try_borrow_mut() {
            Ok(mut handler) => handler.handle_query(exchanger, query),
            Err(_) => Message::error_response(query, sdoh_dns_wire::Rcode::ServFail),
        }
    }

    fn handler_name(&self) -> &str {
        "shared-query-handler"
    }
}

/// A **thread-safe** shared handler: the sharing primitive of the
/// real-socket serving runtime, and a drop-in replacement for the
/// `Rc<RefCell<_>>` handles the scenario helpers used to return.
///
/// Each query locks the handler for the duration of `handle_query`, so a
/// handler shared between a registered service and a driver (or between a
/// worker thread and a stats thread) serializes its queries. A handler
/// transitively querying itself would deadlock where the `Rc` impl answers
/// SERVFAIL; none of the in-tree handlers re-enter themselves.
impl<H: QueryHandler> QueryHandler for std::sync::Arc<parking_lot::Mutex<H>> {
    fn handle_query(&mut self, exchanger: &mut dyn Exchanger, query: &Message) -> Message {
        self.lock().handle_query(exchanger, query)
    }

    fn handler_name(&self) -> &str {
        "shared-query-handler"
    }
}

impl QueryHandler for Authority {
    fn handle_query(&mut self, _exchanger: &mut dyn Exchanger, query: &Message) -> Message {
        self.answer(query)
    }

    fn handler_name(&self) -> &str {
        "authority"
    }
}

/// A handler built from a closure, convenient for tests and for modelling
/// arbitrarily misbehaving servers.
pub struct FnHandler<F> {
    name: String,
    f: F,
}

impl<F> FnHandler<F>
where
    F: FnMut(&mut dyn Exchanger, &Message) -> Message,
{
    /// Creates a handler from a closure.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnHandler {
            name: name.into(),
            f,
        }
    }
}

impl<F> QueryHandler for FnHandler<F>
where
    F: FnMut(&mut dyn Exchanger, &Message) -> Message,
{
    fn handle_query(&mut self, exchanger: &mut dyn Exchanger, query: &Message) -> Message {
        (self.f)(exchanger, query)
    }

    fn handler_name(&self) -> &str {
        &self.name
    }
}

impl<F> std::fmt::Debug for FnHandler<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnHandler")
            .field("name", &self.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::exchange::ClientExchanger;
    use crate::zone::Zone;
    use sdoh_dns_wire::{Rcode, RrType};
    use sdoh_netsim::{SimAddr, SimNet};

    #[test]
    fn authority_is_a_query_handler() {
        let mut catalog = Catalog::new();
        let mut zone = Zone::new("example.org".parse().unwrap());
        zone.add_address(
            "www.example.org".parse().unwrap(),
            "192.0.2.80".parse().unwrap(),
        );
        catalog.add_zone(zone);
        let mut authority = Authority::new(catalog);
        assert_eq!(authority.handler_name(), "authority");

        let net = SimNet::new(1);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 1000));
        let query = Message::query(9, "www.example.org".parse().unwrap(), RrType::A);
        let response = authority.handle_query(&mut exchanger, &query);
        assert_eq!(response.answer_addresses().len(), 1);
    }

    #[test]
    fn arc_mutex_handler_is_shared_and_send() {
        let mut catalog = Catalog::new();
        let mut zone = Zone::new("example.org".parse().unwrap());
        zone.add_address(
            "www.example.org".parse().unwrap(),
            "192.0.2.80".parse().unwrap(),
        );
        catalog.add_zone(zone);
        let shared = std::sync::Arc::new(parking_lot::Mutex::new(Authority::new(catalog)));
        fn assert_send<T: Send>(_: &T) {}
        assert_send(&shared);

        let mut handle = std::sync::Arc::clone(&shared);
        assert_eq!(handle.handler_name(), "shared-query-handler");
        let net = SimNet::new(3);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 1000));
        let query = Message::query(9, "www.example.org".parse().unwrap(), RrType::A);
        let response = handle.handle_query(&mut exchanger, &query);
        assert_eq!(response.answer_addresses().len(), 1);
        // The original handle observes the state the clone served through.
        assert_eq!(shared.lock().handler_name(), "authority");
    }

    #[test]
    fn fn_handler_wraps_closures() {
        let mut handler = FnHandler::new("servfail", |_ex: &mut dyn Exchanger, q: &Message| {
            Message::error_response(q, Rcode::ServFail)
        });
        assert_eq!(handler.handler_name(), "servfail");
        let net = SimNet::new(2);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 1000));
        let query = Message::query(1, "x.test".parse().unwrap(), RrType::A);
        let response = handler.handle_query(&mut exchanger, &query);
        assert_eq!(response.header.rcode, Rcode::ServFail);
        assert!(!format!("{handler:?}").is_empty());
    }
}
