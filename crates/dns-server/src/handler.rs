//! The [`QueryHandler`] trait: anything that can turn a DNS query message
//! into a response message, possibly by querying other servers.

use sdoh_dns_wire::Message;

use crate::authority::Authority;
use crate::exchange::Exchanger;

/// A DNS query-answering component.
///
/// Authoritative servers answer from zone data, recursive resolvers answer
/// by iterating over the delegation tree, forwarders answer by asking an
/// upstream resolver, and compromised resolvers answer with whatever the
/// attacker configured.
pub trait QueryHandler {
    /// Produces a response for `query`, using `exchanger` for any upstream
    /// queries this handler needs to make.
    fn handle_query(&mut self, exchanger: &mut dyn Exchanger, query: &Message) -> Message;

    /// Human-readable name used in diagnostics.
    fn handler_name(&self) -> &str {
        "query-handler"
    }
}

impl<H: QueryHandler + ?Sized> QueryHandler for Box<H> {
    fn handle_query(&mut self, exchanger: &mut dyn Exchanger, query: &Message) -> Message {
        (**self).handle_query(exchanger, query)
    }

    fn handler_name(&self) -> &str {
        (**self).handler_name()
    }
}

/// A shared handler: lets the same component be registered as a network
/// service *and* kept on the driver's side of the simulation — e.g. a
/// caching resolver whose background refreshes the experiment pumps and
/// whose metrics it inspects while clients query it over the network.
///
/// The simulator is single-threaded, so `Rc<RefCell<_>>` is the right
/// sharing primitive. A query arriving while the handler is already
/// borrowed (a handler transitively querying itself) is answered SERVFAIL
/// rather than supporting re-entrancy.
impl<H: QueryHandler> QueryHandler for std::rc::Rc<std::cell::RefCell<H>> {
    fn handle_query(&mut self, exchanger: &mut dyn Exchanger, query: &Message) -> Message {
        match self.try_borrow_mut() {
            Ok(mut handler) => handler.handle_query(exchanger, query),
            Err(_) => Message::error_response(query, sdoh_dns_wire::Rcode::ServFail),
        }
    }

    fn handler_name(&self) -> &str {
        "shared-query-handler"
    }
}

impl QueryHandler for Authority {
    fn handle_query(&mut self, _exchanger: &mut dyn Exchanger, query: &Message) -> Message {
        self.answer(query)
    }

    fn handler_name(&self) -> &str {
        "authority"
    }
}

/// A handler built from a closure, convenient for tests and for modelling
/// arbitrarily misbehaving servers.
pub struct FnHandler<F> {
    name: String,
    f: F,
}

impl<F> FnHandler<F>
where
    F: FnMut(&mut dyn Exchanger, &Message) -> Message,
{
    /// Creates a handler from a closure.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnHandler {
            name: name.into(),
            f,
        }
    }
}

impl<F> QueryHandler for FnHandler<F>
where
    F: FnMut(&mut dyn Exchanger, &Message) -> Message,
{
    fn handle_query(&mut self, exchanger: &mut dyn Exchanger, query: &Message) -> Message {
        (self.f)(exchanger, query)
    }

    fn handler_name(&self) -> &str {
        &self.name
    }
}

impl<F> std::fmt::Debug for FnHandler<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnHandler")
            .field("name", &self.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::exchange::ClientExchanger;
    use crate::zone::Zone;
    use sdoh_dns_wire::{Rcode, RrType};
    use sdoh_netsim::{SimAddr, SimNet};

    #[test]
    fn authority_is_a_query_handler() {
        let mut catalog = Catalog::new();
        let mut zone = Zone::new("example.org".parse().unwrap());
        zone.add_address(
            "www.example.org".parse().unwrap(),
            "192.0.2.80".parse().unwrap(),
        );
        catalog.add_zone(zone);
        let mut authority = Authority::new(catalog);
        assert_eq!(authority.handler_name(), "authority");

        let net = SimNet::new(1);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 1000));
        let query = Message::query(9, "www.example.org".parse().unwrap(), RrType::A);
        let response = authority.handle_query(&mut exchanger, &query);
        assert_eq!(response.answer_addresses().len(), 1);
    }

    #[test]
    fn fn_handler_wraps_closures() {
        let mut handler = FnHandler::new("servfail", |_ex: &mut dyn Exchanger, q: &Message| {
            Message::error_response(q, Rcode::ServFail)
        });
        assert_eq!(handler.handler_name(), "servfail");
        let net = SimNet::new(2);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 1000));
        let query = Message::query(1, "x.test".parse().unwrap(), RrType::A);
        let response = handler.handle_query(&mut exchanger, &query);
        assert_eq!(response.header.rcode, Rcode::ServFail);
        assert!(!format!("{handler:?}").is_empty());
    }
}
