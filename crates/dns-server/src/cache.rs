//! A TTL-respecting resolver cache driven by the simulation clock, with
//! RFC 2181 §5.4.1-style trust ranking of cached data.

use std::collections::HashMap;

use sdoh_dns_wire::{Message, Name, Rcode, Record, RrType, Ttl};
use sdoh_netsim::{SimClock, SimInstant};

/// How trustworthy a piece of cached data is, by the response section and
/// server role it came from (RFC 2181 §5.4.1).
///
/// An insert never replaces a live entry of **higher** credibility: a
/// cached authoritative answer cannot be overwritten by referral glue or
/// other unchecked additional-section data a later response happened to
/// carry — the cache-overwrite half of classic poisoning attacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Credibility {
    /// Unchecked additional-section data, e.g. referral glue addresses.
    Additional,
    /// Authority-section data from a referral response.
    Authority,
    /// Answer-section data from a non-authoritative (cached/recursive)
    /// response.
    Answer,
    /// Answer-section data from the zone's authoritative server.
    AuthoritativeAnswer,
}

impl Credibility {
    /// The credibility of an answer section given the response's AA bit.
    pub fn of_answer(authoritative: bool) -> Self {
        if authoritative {
            Credibility::AuthoritativeAnswer
        } else {
            Credibility::Answer
        }
    }
}

/// A cached answer: either a set of records or a negative result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedAnswer {
    /// Records from the answer section (empty for negative entries).
    pub records: Vec<Record>,
    /// Response code of the original answer.
    pub rcode: Rcode,
}

impl CachedAnswer {
    /// Returns `true` when this entry represents NXDOMAIN or NODATA.
    pub fn is_negative(&self) -> bool {
        self.records.is_empty() || self.rcode != Rcode::NoError
    }
}

#[derive(Debug, Clone)]
struct Entry {
    answer: CachedAnswer,
    credibility: Credibility,
    expires_at: SimInstant,
}

/// A bounded, TTL-respecting DNS cache keyed by `(name, type)`.
#[derive(Debug, Clone)]
pub struct DnsCache {
    clock: SimClock,
    entries: HashMap<(Name, RrType), Entry>,
    capacity: usize,
    /// TTL used for negative entries when the response carries no SOA.
    negative_ttl: Ttl,
    hits: u64,
    misses: u64,
}

impl DnsCache {
    /// Creates a cache bound to the given clock with the given capacity.
    pub fn new(clock: SimClock, capacity: usize) -> Self {
        DnsCache {
            clock,
            entries: HashMap::new(),
            capacity: capacity.max(1),
            negative_ttl: Ttl::from_secs(60),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of (possibly expired) entries currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cache hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Looks up a fresh entry for `(name, rtype)`.
    pub fn get(&mut self, name: &Name, rtype: RrType) -> Option<CachedAnswer> {
        let now = self.clock.now();
        let key = (name.clone(), rtype);
        match self.entries.get(&key) {
            Some(entry) if entry.expires_at > now => {
                self.hits += 1;
                Some(entry.answer.clone())
            }
            Some(_) => {
                self.entries.remove(&key);
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up the credibility of the live entry for `(name, rtype)`
    /// without touching the hit/miss counters.
    pub fn credibility_of(&self, name: &Name, rtype: RrType) -> Option<Credibility> {
        let now = self.clock.now();
        self.entries
            .get(&(name.clone(), rtype))
            .filter(|e| e.expires_at > now)
            .map(|e| e.credibility)
    }

    /// Iterates over every (possibly expired) entry: the inspection hook
    /// the adversarial test suite uses to assert that nothing out of
    /// bailiwick was ever cached.
    pub fn iter(&self) -> impl Iterator<Item = (&Name, RrType, &CachedAnswer)> + '_ {
        self.entries
            .iter()
            .map(|((name, rtype), entry)| (name, *rtype, &entry.answer))
    }

    /// Stores the answer section of `response` under `(name, rtype)` with
    /// the given credibility.
    ///
    /// The entry lives for the minimum answer TTL; negative answers use the
    /// SOA minimum when present, or the configured negative TTL.
    pub fn insert_response(
        &mut self,
        name: &Name,
        rtype: RrType,
        response: &Message,
        credibility: Credibility,
    ) {
        let records: Vec<Record> = response.answers.clone();
        let ttl = if records.is_empty() {
            response
                .authorities
                .iter()
                .find_map(|r| match &r.rdata {
                    sdoh_dns_wire::RData::Soa(soa) => {
                        Some(Ttl::from_secs(soa.minimum).min(Ttl::from_secs(r.ttl)))
                    }
                    _ => None,
                })
                .unwrap_or(self.negative_ttl)
        } else {
            records
                .iter()
                .map(|r| Ttl::from_secs(r.ttl))
                .min()
                .unwrap_or(Ttl::ZERO)
        };
        self.insert_with_ttl(
            name.clone(),
            rtype,
            CachedAnswer {
                records,
                rcode: response.header.rcode,
            },
            ttl,
            credibility,
        );
    }

    /// Stores an answer with an explicit TTL and credibility.
    ///
    /// The insert is **refused** when a live entry of strictly higher
    /// credibility already exists under the key: lower-trust data (glue,
    /// additional records) can never displace a cached authoritative
    /// answer. Equal or higher credibility replaces the entry (a refresh).
    pub fn insert_with_ttl(
        &mut self,
        name: Name,
        rtype: RrType,
        answer: CachedAnswer,
        ttl: Ttl,
        credibility: Credibility,
    ) {
        if ttl.is_zero() {
            return;
        }
        let key = (name, rtype);
        let now = self.clock.now();
        if let Some(existing) = self.entries.get(&key) {
            if existing.expires_at > now && existing.credibility > credibility {
                return;
            }
        } else if self.entries.len() >= self.capacity {
            self.evict_one();
        }
        let expires_at = now.saturating_add(ttl.as_duration());
        self.entries.insert(
            key,
            Entry {
                answer,
                credibility,
                expires_at,
            },
        );
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Removes expired entries and returns how many were dropped.
    pub fn purge_expired(&mut self) -> usize {
        let now = self.clock.now();
        let before = self.entries.len();
        self.entries.retain(|_, e| e.expires_at > now);
        before - self.entries.len()
    }

    fn evict_one(&mut self) {
        // Evict the entry closest to expiry (cheap approximation of LRU that
        // does not need per-access bookkeeping).
        if let Some(key) = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.expires_at)
            .map(|(k, _)| k.clone())
        {
            self.entries.remove(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdoh_dns_wire::{MessageBuilder, RData};
    use std::time::Duration;

    fn response_with_addresses(name: &Name, ttl: u32, count: u8) -> Message {
        let query = Message::query(1, name.clone(), RrType::A);
        let mut builder = MessageBuilder::response_to(&query);
        for i in 0..count {
            builder = builder.answer(Record::new(
                name.clone(),
                ttl,
                RData::A(std::net::Ipv4Addr::new(203, 0, 113, i + 1)),
            ));
        }
        builder.build()
    }

    #[test]
    fn insert_and_hit() {
        let clock = SimClock::new();
        let mut cache = DnsCache::new(clock.clone(), 16);
        let name: Name = "pool.ntp.org".parse().unwrap();
        cache.insert_response(
            &name,
            RrType::A,
            &response_with_addresses(&name, 300, 3),
            Credibility::Answer,
        );
        let hit = cache.get(&name, RrType::A).unwrap();
        assert_eq!(hit.records.len(), 3);
        assert!(!hit.is_negative());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn expires_after_ttl() {
        let clock = SimClock::new();
        let mut cache = DnsCache::new(clock.clone(), 16);
        let name: Name = "pool.ntp.org".parse().unwrap();
        cache.insert_response(
            &name,
            RrType::A,
            &response_with_addresses(&name, 10, 1),
            Credibility::Answer,
        );
        clock.advance(Duration::from_secs(9));
        assert!(cache.get(&name, RrType::A).is_some());
        clock.advance(Duration::from_secs(2));
        assert!(cache.get(&name, RrType::A).is_none());
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn negative_entries_use_soa_minimum() {
        let clock = SimClock::new();
        let mut cache = DnsCache::new(clock.clone(), 16);
        let name: Name = "missing.ntp.org".parse().unwrap();
        let query = Message::query(2, name.clone(), RrType::A);
        let mut response = Message::error_response(&query, Rcode::NxDomain);
        response.add_authority(Record::new(
            "ntp.org".parse().unwrap(),
            30,
            RData::Soa(sdoh_dns_wire::Soa::new(
                "ns.ntp.org".parse().unwrap(),
                "host.ntp.org".parse().unwrap(),
                1,
            )),
        ));
        cache.insert_response(
            &name,
            RrType::A,
            &response,
            Credibility::AuthoritativeAnswer,
        );
        let hit = cache.get(&name, RrType::A).unwrap();
        assert!(hit.is_negative());
        assert_eq!(hit.rcode, Rcode::NxDomain);
        // SOA record TTL (30s) bounds the negative TTL (SOA minimum is 300).
        clock.advance(Duration::from_secs(31));
        assert!(cache.get(&name, RrType::A).is_none());
    }

    #[test]
    fn zero_ttl_is_not_cached() {
        let clock = SimClock::new();
        let mut cache = DnsCache::new(clock, 16);
        let name: Name = "zero.ntp.org".parse().unwrap();
        cache.insert_response(
            &name,
            RrType::A,
            &response_with_addresses(&name, 0, 1),
            Credibility::Answer,
        );
        assert!(cache.get(&name, RrType::A).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_is_enforced() {
        let clock = SimClock::new();
        let mut cache = DnsCache::new(clock, 4);
        for i in 0..10 {
            let name: Name = format!("host{i}.example").parse().unwrap();
            cache.insert_response(
                &name,
                RrType::A,
                &response_with_addresses(&name, 300, 1),
                Credibility::Answer,
            );
        }
        assert!(cache.len() <= 4);
    }

    #[test]
    fn purge_and_clear() {
        let clock = SimClock::new();
        let mut cache = DnsCache::new(clock.clone(), 16);
        for i in 0..4 {
            let name: Name = format!("host{i}.example").parse().unwrap();
            cache.insert_response(
                &name,
                RrType::A,
                &response_with_addresses(&name, 10 * (i + 1), 1),
                Credibility::Answer,
            );
        }
        clock.advance(Duration::from_secs(15));
        let purged = cache.purge_expired();
        assert_eq!(purged, 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn lower_credibility_cannot_overwrite_live_entry() {
        let clock = SimClock::new();
        let mut cache = DnsCache::new(clock.clone(), 16);
        let name: Name = "ns.ntpns.org".parse().unwrap();
        cache.insert_response(
            &name,
            RrType::A,
            &response_with_addresses(&name, 300, 1),
            Credibility::AuthoritativeAnswer,
        );
        assert_eq!(
            cache.credibility_of(&name, RrType::A),
            Some(Credibility::AuthoritativeAnswer)
        );

        // Glue-grade data must bounce off the authoritative entry...
        let forged = response_with_addresses(&name, 3600, 3);
        cache.insert_response(&name, RrType::A, &forged, Credibility::Additional);
        let hit = cache.get(&name, RrType::A).unwrap();
        assert_eq!(hit.records.len(), 1, "authoritative answer survives");

        // ...and so must non-authoritative answers.
        cache.insert_response(&name, RrType::A, &forged, Credibility::Answer);
        assert_eq!(cache.get(&name, RrType::A).unwrap().records.len(), 1);

        // Equal credibility refreshes the entry.
        cache.insert_response(&name, RrType::A, &forged, Credibility::AuthoritativeAnswer);
        assert_eq!(cache.get(&name, RrType::A).unwrap().records.len(), 3);
    }

    #[test]
    fn expired_entries_accept_any_credibility() {
        let clock = SimClock::new();
        let mut cache = DnsCache::new(clock.clone(), 16);
        let name: Name = "ns.ntpns.org".parse().unwrap();
        cache.insert_response(
            &name,
            RrType::A,
            &response_with_addresses(&name, 10, 1),
            Credibility::AuthoritativeAnswer,
        );
        clock.advance(Duration::from_secs(11));
        assert_eq!(cache.credibility_of(&name, RrType::A), None);
        cache.insert_response(
            &name,
            RrType::A,
            &response_with_addresses(&name, 300, 2),
            Credibility::Additional,
        );
        assert_eq!(cache.get(&name, RrType::A).unwrap().records.len(), 2);
        assert_eq!(
            cache.credibility_of(&name, RrType::A),
            Some(Credibility::Additional)
        );
    }

    #[test]
    fn higher_credibility_upgrades_the_entry() {
        let clock = SimClock::new();
        let mut cache = DnsCache::new(clock, 16);
        let name: Name = "ns.ntpns.org".parse().unwrap();
        cache.insert_response(
            &name,
            RrType::A,
            &response_with_addresses(&name, 300, 1),
            Credibility::Additional,
        );
        cache.insert_response(
            &name,
            RrType::A,
            &response_with_addresses(&name, 300, 2),
            Credibility::AuthoritativeAnswer,
        );
        assert_eq!(cache.get(&name, RrType::A).unwrap().records.len(), 2);
    }

    #[test]
    fn iter_exposes_entries() {
        let clock = SimClock::new();
        let mut cache = DnsCache::new(clock, 16);
        let name: Name = "pool.ntp.org".parse().unwrap();
        cache.insert_response(
            &name,
            RrType::A,
            &response_with_addresses(&name, 300, 2),
            Credibility::Answer,
        );
        let entries: Vec<_> = cache.iter().collect();
        assert_eq!(entries.len(), 1);
        let (entry_name, rtype, answer) = &entries[0];
        assert_eq!(*entry_name, &name);
        assert_eq!(*rtype, RrType::A);
        assert_eq!(answer.records.len(), 2);
    }

    #[test]
    fn credibility_ordering_matches_rfc2181() {
        assert!(Credibility::AuthoritativeAnswer > Credibility::Answer);
        assert!(Credibility::Answer > Credibility::Authority);
        assert!(Credibility::Authority > Credibility::Additional);
        assert_eq!(
            Credibility::of_answer(true),
            Credibility::AuthoritativeAnswer
        );
        assert_eq!(Credibility::of_answer(false), Credibility::Answer);
    }

    #[test]
    fn distinct_types_are_distinct_keys() {
        let clock = SimClock::new();
        let mut cache = DnsCache::new(clock, 16);
        let name: Name = "dual.example".parse().unwrap();
        cache.insert_response(
            &name,
            RrType::A,
            &response_with_addresses(&name, 300, 1),
            Credibility::Answer,
        );
        assert!(cache.get(&name, RrType::A).is_some());
        assert!(cache.get(&name, RrType::Aaaa).is_none());
    }
}
