//! A TTL-respecting resolver cache driven by the simulation clock.

use std::collections::HashMap;

use sdoh_dns_wire::{Message, Name, Rcode, Record, RrType, Ttl};
use sdoh_netsim::{SimClock, SimInstant};

/// A cached answer: either a set of records or a negative result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedAnswer {
    /// Records from the answer section (empty for negative entries).
    pub records: Vec<Record>,
    /// Response code of the original answer.
    pub rcode: Rcode,
}

impl CachedAnswer {
    /// Returns `true` when this entry represents NXDOMAIN or NODATA.
    pub fn is_negative(&self) -> bool {
        self.records.is_empty() || self.rcode != Rcode::NoError
    }
}

#[derive(Debug, Clone)]
struct Entry {
    answer: CachedAnswer,
    expires_at: SimInstant,
}

/// A bounded, TTL-respecting DNS cache keyed by `(name, type)`.
#[derive(Debug, Clone)]
pub struct DnsCache {
    clock: SimClock,
    entries: HashMap<(Name, RrType), Entry>,
    capacity: usize,
    /// TTL used for negative entries when the response carries no SOA.
    negative_ttl: Ttl,
    hits: u64,
    misses: u64,
}

impl DnsCache {
    /// Creates a cache bound to the given clock with the given capacity.
    pub fn new(clock: SimClock, capacity: usize) -> Self {
        DnsCache {
            clock,
            entries: HashMap::new(),
            capacity: capacity.max(1),
            negative_ttl: Ttl::from_secs(60),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of (possibly expired) entries currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cache hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Looks up a fresh entry for `(name, rtype)`.
    pub fn get(&mut self, name: &Name, rtype: RrType) -> Option<CachedAnswer> {
        let now = self.clock.now();
        let key = (name.clone(), rtype);
        match self.entries.get(&key) {
            Some(entry) if entry.expires_at > now => {
                self.hits += 1;
                Some(entry.answer.clone())
            }
            Some(_) => {
                self.entries.remove(&key);
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores the answer section of `response` under `(name, rtype)`.
    ///
    /// The entry lives for the minimum answer TTL; negative answers use the
    /// SOA minimum when present, or the configured negative TTL.
    pub fn insert_response(&mut self, name: &Name, rtype: RrType, response: &Message) {
        let records: Vec<Record> = response.answers.clone();
        let ttl = if records.is_empty() {
            response
                .authorities
                .iter()
                .find_map(|r| match &r.rdata {
                    sdoh_dns_wire::RData::Soa(soa) => {
                        Some(Ttl::from_secs(soa.minimum).min(Ttl::from_secs(r.ttl)))
                    }
                    _ => None,
                })
                .unwrap_or(self.negative_ttl)
        } else {
            records
                .iter()
                .map(|r| Ttl::from_secs(r.ttl))
                .min()
                .unwrap_or(Ttl::ZERO)
        };
        self.insert_with_ttl(
            name.clone(),
            rtype,
            CachedAnswer {
                records,
                rcode: response.header.rcode,
            },
            ttl,
        );
    }

    /// Stores an answer with an explicit TTL.
    pub fn insert_with_ttl(&mut self, name: Name, rtype: RrType, answer: CachedAnswer, ttl: Ttl) {
        if ttl.is_zero() {
            return;
        }
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&(name.clone(), rtype))
        {
            self.evict_one();
        }
        let expires_at = self.clock.now().saturating_add(ttl.as_duration());
        self.entries
            .insert((name, rtype), Entry { answer, expires_at });
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Removes expired entries and returns how many were dropped.
    pub fn purge_expired(&mut self) -> usize {
        let now = self.clock.now();
        let before = self.entries.len();
        self.entries.retain(|_, e| e.expires_at > now);
        before - self.entries.len()
    }

    fn evict_one(&mut self) {
        // Evict the entry closest to expiry (cheap approximation of LRU that
        // does not need per-access bookkeeping).
        if let Some(key) = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.expires_at)
            .map(|(k, _)| k.clone())
        {
            self.entries.remove(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdoh_dns_wire::{MessageBuilder, RData};
    use std::time::Duration;

    fn response_with_addresses(name: &Name, ttl: u32, count: u8) -> Message {
        let query = Message::query(1, name.clone(), RrType::A);
        let mut builder = MessageBuilder::response_to(&query);
        for i in 0..count {
            builder = builder.answer(Record::new(
                name.clone(),
                ttl,
                RData::A(std::net::Ipv4Addr::new(203, 0, 113, i + 1)),
            ));
        }
        builder.build()
    }

    #[test]
    fn insert_and_hit() {
        let clock = SimClock::new();
        let mut cache = DnsCache::new(clock.clone(), 16);
        let name: Name = "pool.ntp.org".parse().unwrap();
        cache.insert_response(&name, RrType::A, &response_with_addresses(&name, 300, 3));
        let hit = cache.get(&name, RrType::A).unwrap();
        assert_eq!(hit.records.len(), 3);
        assert!(!hit.is_negative());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn expires_after_ttl() {
        let clock = SimClock::new();
        let mut cache = DnsCache::new(clock.clone(), 16);
        let name: Name = "pool.ntp.org".parse().unwrap();
        cache.insert_response(&name, RrType::A, &response_with_addresses(&name, 10, 1));
        clock.advance(Duration::from_secs(9));
        assert!(cache.get(&name, RrType::A).is_some());
        clock.advance(Duration::from_secs(2));
        assert!(cache.get(&name, RrType::A).is_none());
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn negative_entries_use_soa_minimum() {
        let clock = SimClock::new();
        let mut cache = DnsCache::new(clock.clone(), 16);
        let name: Name = "missing.ntp.org".parse().unwrap();
        let query = Message::query(2, name.clone(), RrType::A);
        let mut response = Message::error_response(&query, Rcode::NxDomain);
        response.add_authority(Record::new(
            "ntp.org".parse().unwrap(),
            30,
            RData::Soa(sdoh_dns_wire::Soa::new(
                "ns.ntp.org".parse().unwrap(),
                "host.ntp.org".parse().unwrap(),
                1,
            )),
        ));
        cache.insert_response(&name, RrType::A, &response);
        let hit = cache.get(&name, RrType::A).unwrap();
        assert!(hit.is_negative());
        assert_eq!(hit.rcode, Rcode::NxDomain);
        // SOA record TTL (30s) bounds the negative TTL (SOA minimum is 300).
        clock.advance(Duration::from_secs(31));
        assert!(cache.get(&name, RrType::A).is_none());
    }

    #[test]
    fn zero_ttl_is_not_cached() {
        let clock = SimClock::new();
        let mut cache = DnsCache::new(clock, 16);
        let name: Name = "zero.ntp.org".parse().unwrap();
        cache.insert_response(&name, RrType::A, &response_with_addresses(&name, 0, 1));
        assert!(cache.get(&name, RrType::A).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_is_enforced() {
        let clock = SimClock::new();
        let mut cache = DnsCache::new(clock, 4);
        for i in 0..10 {
            let name: Name = format!("host{i}.example").parse().unwrap();
            cache.insert_response(&name, RrType::A, &response_with_addresses(&name, 300, 1));
        }
        assert!(cache.len() <= 4);
    }

    #[test]
    fn purge_and_clear() {
        let clock = SimClock::new();
        let mut cache = DnsCache::new(clock.clone(), 16);
        for i in 0..4 {
            let name: Name = format!("host{i}.example").parse().unwrap();
            cache.insert_response(
                &name,
                RrType::A,
                &response_with_addresses(&name, 10 * (i + 1), 1),
            );
        }
        clock.advance(Duration::from_secs(15));
        let purged = cache.purge_expired();
        assert_eq!(purged, 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn distinct_types_are_distinct_keys() {
        let clock = SimClock::new();
        let mut cache = DnsCache::new(clock, 16);
        let name: Name = "dual.example".parse().unwrap();
        cache.insert_response(&name, RrType::A, &response_with_addresses(&name, 300, 1));
        assert!(cache.get(&name, RrType::A).is_some());
        assert!(cache.get(&name, RrType::Aaaa).is_none());
    }
}
