//! A catalog of authoritative zones served by one name server.

use sdoh_dns_wire::Name;

use crate::zone::Zone;

/// A set of zones; lookups are routed to the zone with the longest matching
/// origin (the closest enclosing zone).
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    zones: Vec<Zone>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Adds a zone. If a zone with the same origin exists it is replaced.
    pub fn add_zone(&mut self, zone: Zone) {
        self.zones.retain(|z| z.origin() != zone.origin());
        self.zones.push(zone);
    }

    /// Number of zones in the catalog.
    pub fn len(&self) -> usize {
        self.zones.len()
    }

    /// Returns `true` when the catalog holds no zones.
    pub fn is_empty(&self) -> bool {
        self.zones.is_empty()
    }

    /// Iterates over all zones.
    pub fn zones(&self) -> impl Iterator<Item = &Zone> {
        self.zones.iter()
    }

    /// Finds the zone whose origin is the longest suffix of `name`.
    pub fn find(&self, name: &Name) -> Option<&Zone> {
        self.zones
            .iter()
            .filter(|z| name.is_subdomain_of(z.origin()))
            .max_by_key(|z| z.origin().num_labels())
    }

    /// Finds a zone by its exact origin.
    pub fn find_exact(&self, origin: &Name) -> Option<&Zone> {
        self.zones.iter().find(|z| z.origin() == origin)
    }

    /// Mutable access to a zone by its exact origin.
    pub fn find_exact_mut(&mut self, origin: &Name) -> Option<&mut Zone> {
        self.zones.iter_mut().find(|z| z.origin() == origin)
    }
}

impl FromIterator<Zone> for Catalog {
    fn from_iter<T: IntoIterator<Item = Zone>>(iter: T) -> Self {
        let mut catalog = Catalog::new();
        for zone in iter {
            catalog.add_zone(zone);
        }
        catalog
    }
}

impl Extend<Zone> for Catalog {
    fn extend<T: IntoIterator<Item = Zone>>(&mut self, iter: T) {
        for zone in iter {
            self.add_zone(zone);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longest_match_wins() {
        let mut catalog = Catalog::new();
        catalog.add_zone(Zone::new("org".parse().unwrap()));
        catalog.add_zone(Zone::new("ntpns.org".parse().unwrap()));
        catalog.add_zone(Zone::new("pool.ntpns.org".parse().unwrap()));

        let found = catalog.find(&"a.pool.ntpns.org".parse().unwrap()).unwrap();
        assert_eq!(found.origin(), &"pool.ntpns.org".parse::<Name>().unwrap());

        let found = catalog.find(&"other.ntpns.org".parse().unwrap()).unwrap();
        assert_eq!(found.origin(), &"ntpns.org".parse::<Name>().unwrap());

        assert!(catalog.find(&"example.com".parse().unwrap()).is_none());
    }

    #[test]
    fn replace_zone_with_same_origin() {
        let mut catalog = Catalog::new();
        catalog.add_zone(Zone::new("x.org".parse().unwrap()));
        catalog.add_zone(Zone::new("x.org".parse().unwrap()));
        assert_eq!(catalog.len(), 1);
    }

    #[test]
    fn collect_and_extend() {
        let mut catalog: Catalog = [
            Zone::new("a.test".parse().unwrap()),
            Zone::new("b.test".parse().unwrap()),
        ]
        .into_iter()
        .collect();
        assert_eq!(catalog.len(), 2);
        catalog.extend([Zone::new("c.test".parse().unwrap())]);
        assert_eq!(catalog.len(), 3);
        assert!(!catalog.is_empty());
        assert!(catalog.find_exact(&"b.test".parse().unwrap()).is_some());
        assert!(catalog.find_exact_mut(&"c.test".parse().unwrap()).is_some());
        assert_eq!(catalog.zones().count(), 3);
    }
}
