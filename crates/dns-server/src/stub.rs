//! A stub resolver: what an application host uses to look names up through
//! a single configured recursive resolver.
//!
//! This is the *baseline* the paper improves on: a plain DNS lookup through
//! one resolver, acceptable to an off-path attacker who wins the response
//! race.

use std::net::IpAddr;
use std::time::Duration;

use sdoh_dns_wire::{Name, Rcode, RrType};
use sdoh_netsim::{ChannelKind, SimAddr};

use crate::client::DnsClient;
use crate::error::{ResolveError, ResolveResult};
use crate::exchange::Exchanger;

/// A stub resolver bound to one upstream recursive resolver.
#[derive(Debug, Clone)]
pub struct StubResolver {
    client: DnsClient,
}

impl StubResolver {
    /// Creates a stub resolver using the given recursive resolver over a
    /// plain channel (classic `/etc/resolv.conf` behaviour).
    pub fn new(resolver: SimAddr) -> Self {
        StubResolver {
            client: DnsClient::new(resolver).recursion_desired(true),
        }
    }

    /// Switches the transport channel (e.g. to model DNS over a secure
    /// channel to the same resolver).
    pub fn channel(mut self, channel: ChannelKind) -> Self {
        self.client = self.client.channel(channel);
        self
    }

    /// Sets the query timeout.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.client = self.client.timeout(timeout);
        self
    }

    /// The configured recursive resolver.
    pub fn resolver(&self) -> SimAddr {
        self.client.server()
    }

    /// Looks up IPv4 addresses for `name`.
    ///
    /// # Errors
    ///
    /// Returns [`ResolveError::ErrorResponse`] with [`Rcode::NxDomain`] when
    /// the name does not exist, and transport errors otherwise.
    pub fn lookup_ipv4(
        &self,
        exchanger: &mut dyn Exchanger,
        name: &Name,
    ) -> ResolveResult<Vec<IpAddr>> {
        self.lookup(exchanger, name, RrType::A)
    }

    /// Looks up IPv6 addresses for `name`.
    ///
    /// # Errors
    ///
    /// Same as [`StubResolver::lookup_ipv4`].
    pub fn lookup_ipv6(
        &self,
        exchanger: &mut dyn Exchanger,
        name: &Name,
    ) -> ResolveResult<Vec<IpAddr>> {
        self.lookup(exchanger, name, RrType::Aaaa)
    }

    fn lookup(
        &self,
        exchanger: &mut dyn Exchanger,
        name: &Name,
        rtype: RrType,
    ) -> ResolveResult<Vec<IpAddr>> {
        let response = self.client.query(exchanger, name, rtype)?;
        if response.header.rcode == Rcode::NxDomain {
            return Err(ResolveError::ErrorResponse(Rcode::NxDomain));
        }
        Ok(response.answer_addresses())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::Authority;
    use crate::catalog::Catalog;
    use crate::exchange::ClientExchanger;
    use crate::service::Do53Service;
    use crate::zone::Zone;
    use sdoh_netsim::SimNet;

    fn setup() -> (SimNet, SimAddr) {
        let net = SimNet::new(55);
        let resolver_addr = SimAddr::v4(10, 0, 0, 53, 53);
        let mut zone = Zone::new("ntp.org".parse().unwrap());
        for i in 1..=3u8 {
            zone.add_address(
                "pool.ntp.org".parse().unwrap(),
                format!("203.0.113.{i}").parse().unwrap(),
            );
        }
        zone.add_address(
            "pool.ntp.org".parse().unwrap(),
            "2001:db8::1".parse().unwrap(),
        );
        let mut catalog = Catalog::new();
        catalog.add_zone(zone);
        // The authority doubles as a "recursive" resolver for this test.
        net.register(resolver_addr, Do53Service::new(Authority::new(catalog)));
        (net, resolver_addr)
    }

    #[test]
    fn lookup_both_families() {
        let (net, resolver) = setup();
        let stub = StubResolver::new(resolver);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let v4 = stub
            .lookup_ipv4(&mut exchanger, &"pool.ntp.org".parse().unwrap())
            .unwrap();
        assert_eq!(v4.len(), 3);
        assert!(v4.iter().all(|a| a.is_ipv4()));
        let v6 = stub
            .lookup_ipv6(&mut exchanger, &"pool.ntp.org".parse().unwrap())
            .unwrap();
        assert_eq!(v6.len(), 1);
        assert!(v6[0].is_ipv6());
    }

    #[test]
    fn nxdomain_is_an_error_for_stubs() {
        let (net, resolver) = setup();
        let stub = StubResolver::new(resolver);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let err = stub
            .lookup_ipv4(&mut exchanger, &"missing.ntp.org".parse().unwrap())
            .unwrap_err();
        assert_eq!(err, ResolveError::ErrorResponse(Rcode::NxDomain));
    }

    #[test]
    fn builder_setters() {
        let stub = StubResolver::new(SimAddr::v4(9, 9, 9, 9, 53))
            .channel(ChannelKind::Secure)
            .timeout(Duration::from_millis(750));
        assert_eq!(stub.resolver(), SimAddr::v4(9, 9, 9, 9, 53));
    }
}
