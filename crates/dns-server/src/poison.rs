//! Compromised / poisoning resolver behaviours.
//!
//! The paper's security analysis assumes an attacker can compromise each
//! DoH resolver independently with probability `p_attack`. A compromised
//! resolver answers queries for the target domain with attacker-chosen
//! data. This module wraps any [`QueryHandler`] with such behaviour, and
//! also models the two attacks discussed around Algorithm 1:
//!
//! * **answer inflation** — returning more addresses than usual to
//!   overwhelm the combined pool (defeated by truncation to the shortest
//!   list),
//! * **empty answers** — returning nothing at all, the residual DoS vector
//!   the paper acknowledges in footnote 2.

use std::net::IpAddr;

use sdoh_dns_wire::{Message, MessageBuilder, Name, Rcode, Record};

use crate::exchange::Exchanger;
use crate::handler::QueryHandler;

/// What a compromised resolver does with queries for the target domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoisonMode {
    /// Replace all answers with the given attacker-controlled addresses.
    ReplaceAddresses(Vec<IpAddr>),
    /// Answer with the genuine addresses *plus* the given attacker
    /// addresses appended (answer inflation).
    InflateWith(Vec<IpAddr>),
    /// Return a NOERROR answer with no records at all (empty-answer DoS).
    EmptyAnswer,
    /// Claim the name does not exist.
    NxDomain,
    /// Fail the query with SERVFAIL.
    ServFail,
}

/// Configuration of a poisoning resolver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoisonConfig {
    /// Queries for this name (or its subdomains) are poisoned.
    pub target: Name,
    /// The poisoning behaviour.
    pub mode: PoisonMode,
    /// TTL used for fabricated records.
    pub ttl: u32,
}

impl PoisonConfig {
    /// Creates a configuration poisoning `target` with `mode`.
    pub fn new(target: Name, mode: PoisonMode) -> Self {
        PoisonConfig {
            target,
            mode,
            ttl: 300,
        }
    }

    /// Returns `true` when a query for `name` should be poisoned.
    pub fn applies_to(&self, name: &Name) -> bool {
        name.is_subdomain_of(&self.target)
    }
}

/// A resolver wrapper that answers honestly except for the target domain.
#[derive(Debug)]
pub struct PoisonedResolver<H> {
    inner: H,
    config: PoisonConfig,
    poisoned_queries: u64,
}

impl<H: QueryHandler> PoisonedResolver<H> {
    /// Wraps `inner` with the poisoning behaviour in `config`.
    pub fn new(inner: H, config: PoisonConfig) -> Self {
        PoisonedResolver {
            inner,
            config,
            poisoned_queries: 0,
        }
    }

    /// Number of queries answered with poisoned data so far.
    pub fn poisoned_queries(&self) -> u64 {
        self.poisoned_queries
    }

    /// Access to the wrapped honest handler.
    pub fn inner(&self) -> &H {
        &self.inner
    }

    /// Builds the fabricated response for every mode except
    /// [`PoisonMode::InflateWith`], which needs the honest answer first and
    /// is handled in `handle_query`.
    fn poison_response(&self, query: &Message) -> Message {
        let question = match query.question() {
            Some(q) => q.clone(),
            None => return Message::error_response(query, Rcode::FormErr),
        };
        match &self.config.mode {
            PoisonMode::ReplaceAddresses(addresses) => {
                let mut builder = MessageBuilder::response_to(query).recursion_available(true);
                for addr in addresses {
                    builder = builder.answer(Record::address(
                        question.name.clone(),
                        self.config.ttl,
                        *addr,
                    ));
                }
                builder.build()
            }
            PoisonMode::InflateWith(_) | PoisonMode::EmptyAnswer => {
                let mut response = Message::response_to(query);
                response.header.recursion_available = true;
                response
            }
            PoisonMode::NxDomain => Message::error_response(query, Rcode::NxDomain),
            PoisonMode::ServFail => Message::error_response(query, Rcode::ServFail),
        }
    }
}

impl<H: QueryHandler> QueryHandler for PoisonedResolver<H> {
    fn handle_query(&mut self, exchanger: &mut dyn Exchanger, query: &Message) -> Message {
        let applies = query
            .question()
            .map(|q| self.config.applies_to(&q.name))
            .unwrap_or(false);
        if !applies {
            return self.inner.handle_query(exchanger, query);
        }
        self.poisoned_queries += 1;
        match &self.config.mode {
            PoisonMode::InflateWith(extra) => {
                // Honest answer plus attacker addresses appended.
                let extra = extra.clone();
                let ttl = self.config.ttl;
                let mut response = self.inner.handle_query(exchanger, query);
                if let Some(question) = query.question() {
                    for addr in extra {
                        response.add_answer(Record::address(question.name.clone(), ttl, addr));
                    }
                }
                response
            }
            _ => self.poison_response(query),
        }
    }

    fn handler_name(&self) -> &str {
        "poisoned-resolver"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::Authority;
    use crate::catalog::Catalog;
    use crate::exchange::ClientExchanger;
    use crate::zone::Zone;
    use sdoh_dns_wire::RrType;
    use sdoh_netsim::{SimAddr, SimNet};

    fn honest_authority() -> Authority {
        let mut zone = Zone::new("ntp.org".parse().unwrap());
        for i in 1..=3u8 {
            zone.add_address(
                "pool.ntp.org".parse().unwrap(),
                format!("203.0.113.{i}").parse().unwrap(),
            );
        }
        zone.add_address(
            "other.ntp.org".parse().unwrap(),
            "203.0.113.100".parse().unwrap(),
        );
        let mut catalog = Catalog::new();
        catalog.add_zone(zone);
        Authority::new(catalog)
    }

    fn attacker_addrs(n: u8) -> Vec<IpAddr> {
        (1..=n)
            .map(|i| format!("198.18.0.{i}").parse().unwrap())
            .collect()
    }

    fn run_query(resolver: &mut dyn QueryHandler, name: &str) -> Message {
        let net = SimNet::new(1);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 1000));
        let query = Message::query(7, name.parse().unwrap(), RrType::A);
        resolver.handle_query(&mut exchanger, &query)
    }

    #[test]
    fn replaces_addresses_for_target_only() {
        let config = PoisonConfig::new(
            "pool.ntp.org".parse().unwrap(),
            PoisonMode::ReplaceAddresses(attacker_addrs(2)),
        );
        let mut resolver = PoisonedResolver::new(honest_authority(), config);

        let poisoned = run_query(&mut resolver, "pool.ntp.org");
        assert_eq!(poisoned.answer_addresses(), attacker_addrs(2));

        let honest = run_query(&mut resolver, "other.ntp.org");
        assert_eq!(honest.answer_addresses().len(), 1);
        assert_eq!(honest.answer_addresses()[0].to_string(), "203.0.113.100");
        assert_eq!(resolver.poisoned_queries(), 1);
    }

    #[test]
    fn inflation_appends_to_honest_answer() {
        let config = PoisonConfig::new(
            "pool.ntp.org".parse().unwrap(),
            PoisonMode::InflateWith(attacker_addrs(8)),
        );
        let mut resolver = PoisonedResolver::new(honest_authority(), config);
        let response = run_query(&mut resolver, "pool.ntp.org");
        // 3 honest + 8 attacker addresses.
        assert_eq!(response.answer_addresses().len(), 11);
    }

    #[test]
    fn empty_answer_mode() {
        let config = PoisonConfig::new("pool.ntp.org".parse().unwrap(), PoisonMode::EmptyAnswer);
        let mut resolver = PoisonedResolver::new(honest_authority(), config);
        let response = run_query(&mut resolver, "pool.ntp.org");
        assert_eq!(response.header.rcode, Rcode::NoError);
        assert!(response.answer_addresses().is_empty());
    }

    #[test]
    fn nxdomain_and_servfail_modes() {
        for (mode, rcode) in [
            (PoisonMode::NxDomain, Rcode::NxDomain),
            (PoisonMode::ServFail, Rcode::ServFail),
        ] {
            let config = PoisonConfig::new("pool.ntp.org".parse().unwrap(), mode);
            let mut resolver = PoisonedResolver::new(honest_authority(), config);
            assert_eq!(run_query(&mut resolver, "pool.ntp.org").header.rcode, rcode);
        }
    }

    #[test]
    fn subdomains_of_target_are_poisoned() {
        let config = PoisonConfig::new(
            "ntp.org".parse().unwrap(),
            PoisonMode::ReplaceAddresses(attacker_addrs(1)),
        );
        assert!(config.applies_to(&"pool.ntp.org".parse().unwrap()));
        assert!(config.applies_to(&"ntp.org".parse().unwrap()));
        assert!(!config.applies_to(&"example.com".parse().unwrap()));
        let mut resolver = PoisonedResolver::new(honest_authority(), config);
        let response = run_query(&mut resolver, "other.ntp.org");
        assert_eq!(response.answer_addresses(), attacker_addrs(1));
        assert!(resolver.inner().catalog().len() == 1);
        assert_eq!(resolver.handler_name(), "poisoned-resolver");
    }
}
