//! A parser for a practical subset of RFC 1035 zone-file syntax.
//!
//! Supported constructs: `$ORIGIN`, `$TTL`, `@` for the origin, relative and
//! absolute owner names, comments (`;`), blank lines and the record types
//! the rest of the system uses (SOA, NS, A, AAAA, CNAME, PTR, MX, TXT, SRV).
//! Parenthesised multi-line records are *not* supported; write SOA records
//! on one line.

use std::net::{Ipv4Addr, Ipv6Addr};

use sdoh_dns_wire::{Mx, Name, RData, Record, Soa, Srv};

use crate::error::ZoneFileError;
use crate::zone::Zone;

/// Parses zone-file text into a [`Zone`].
///
/// # Errors
///
/// Returns [`ZoneFileError`] for syntax errors, out-of-zone records or a
/// missing SOA record.
pub fn parse_zone(origin: &Name, text: &str) -> Result<Zone, ZoneFileError> {
    let mut zone = Zone::empty(origin.clone());
    let mut current_origin = origin.clone();
    let mut default_ttl: u32 = 3600;
    let mut last_owner: Option<Name> = None;

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line);
        if line.trim().is_empty() {
            continue;
        }

        let starts_with_space = line.starts_with(' ') || line.starts_with('\t');
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let Some(&first_token) = tokens.first() else {
            continue;
        };

        // Directives.
        if first_token == "$ORIGIN" {
            let name = require(tokens.get(1), line_no, "missing $ORIGIN argument")?;
            current_origin = parse_name(name, &current_origin, line_no)?;
            continue;
        }
        if first_token == "$TTL" {
            let ttl = require(tokens.get(1), line_no, "missing $TTL argument")?;
            default_ttl = parse_u32(ttl, line_no)?;
            continue;
        }

        // Owner name handling: a leading blank means "same owner as before".
        let (owner, mut rest) = if starts_with_space {
            let owner = last_owner.clone().ok_or_else(|| ZoneFileError::Syntax {
                line: line_no,
                message: "record with implicit owner but no previous owner".into(),
            })?;
            (owner, tokens.as_slice())
        } else {
            let owner = parse_owner(first_token, &current_origin, line_no)?;
            (owner, tokens.get(1..).unwrap_or(&[]))
        };
        last_owner = Some(owner.clone());

        // Optional TTL and class tokens, in either order.
        let mut ttl = default_ttl;
        loop {
            match rest.first() {
                Some(tok) if tok.eq_ignore_ascii_case("IN") => {
                    rest = rest.get(1..).unwrap_or(&[]);
                }
                Some(tok) if tok.chars().all(|c| c.is_ascii_digit()) && rest.len() > 1 => {
                    ttl = parse_u32(tok, line_no)?;
                    rest = rest.get(1..).unwrap_or(&[]);
                }
                _ => break,
            }
        }

        let rtype = require(rest.first(), line_no, "missing record type")?;
        let rdata_tokens = rest.get(1..).unwrap_or(&[]);
        let rdata = parse_rdata(rtype, rdata_tokens, &current_origin, line_no)?;

        let record = Record::new(owner.clone(), ttl, rdata);
        if !zone.add_record(record) {
            return Err(ZoneFileError::OutOfZone {
                line: line_no,
                name: owner.to_string(),
            });
        }
    }

    if zone.soa().is_none() {
        return Err(ZoneFileError::MissingSoa);
    }
    Ok(zone)
}

fn strip_comment(line: &str) -> &str {
    match line.split_once(';') {
        Some((head, _)) => head,
        None => line,
    }
}

fn require<'a>(
    token: Option<&&'a str>,
    line: usize,
    message: &str,
) -> Result<&'a str, ZoneFileError> {
    token.copied().ok_or_else(|| ZoneFileError::Syntax {
        line,
        message: message.to_string(),
    })
}

fn parse_u32(token: &str, line: usize) -> Result<u32, ZoneFileError> {
    token.parse().map_err(|_| ZoneFileError::Syntax {
        line,
        message: format!("invalid number: {token}"),
    })
}

fn parse_u16(token: &str, line: usize) -> Result<u16, ZoneFileError> {
    token.parse().map_err(|_| ZoneFileError::Syntax {
        line,
        message: format!("invalid number: {token}"),
    })
}

fn parse_owner(token: &str, origin: &Name, line: usize) -> Result<Name, ZoneFileError> {
    if token == "@" {
        return Ok(origin.clone());
    }
    parse_name(token, origin, line)
}

fn parse_name(token: &str, origin: &Name, line: usize) -> Result<Name, ZoneFileError> {
    let absolute = token.ends_with('.');
    let name: Name = token.parse().map_err(|e| ZoneFileError::Syntax {
        line,
        message: format!("invalid name {token}: {e}"),
    })?;
    if absolute || origin.is_root() {
        Ok(name)
    } else {
        // Relative name: append the origin.
        let mut labels: Vec<Vec<u8>> = name.labels().map(|l| l.to_vec()).collect();
        labels.extend(origin.labels().map(|l| l.to_vec()));
        Name::from_labels(labels).map_err(|e| ZoneFileError::Syntax {
            line,
            message: format!("relative name too long: {e}"),
        })
    }
}

fn parse_rdata(
    rtype: &str,
    tokens: &[&str],
    origin: &Name,
    line: usize,
) -> Result<RData, ZoneFileError> {
    let syntax = |message: String| ZoneFileError::Syntax { line, message };
    match rtype.to_ascii_uppercase().as_str() {
        "A" => {
            let addr = require(tokens.first(), line, "A record needs an address")?;
            let ip: Ipv4Addr = addr
                .parse()
                .map_err(|_| syntax(format!("invalid IPv4 address: {addr}")))?;
            Ok(RData::A(ip))
        }
        "AAAA" => {
            let addr = require(tokens.first(), line, "AAAA record needs an address")?;
            let ip: Ipv6Addr = addr
                .parse()
                .map_err(|_| syntax(format!("invalid IPv6 address: {addr}")))?;
            Ok(RData::Aaaa(ip))
        }
        "NS" => {
            let target = require(tokens.first(), line, "NS record needs a target")?;
            Ok(RData::Ns(parse_name(target, origin, line)?))
        }
        "CNAME" => {
            let target = require(tokens.first(), line, "CNAME record needs a target")?;
            Ok(RData::Cname(parse_name(target, origin, line)?))
        }
        "PTR" => {
            let target = require(tokens.first(), line, "PTR record needs a target")?;
            Ok(RData::Ptr(parse_name(target, origin, line)?))
        }
        "MX" => {
            let pref = parse_u16(
                require(tokens.first(), line, "MX needs a preference")?,
                line,
            )?;
            let target = require(tokens.get(1), line, "MX record needs an exchange")?;
            Ok(RData::Mx(Mx::new(pref, parse_name(target, origin, line)?)))
        }
        "TXT" => {
            if tokens.is_empty() {
                return Err(syntax("TXT record needs at least one string".into()));
            }
            let strings = tokens
                .iter()
                .map(|t| t.trim_matches('"').as_bytes().to_vec())
                .collect();
            Ok(RData::Txt(strings))
        }
        "SRV" => {
            let &[priority, weight, port, target, ..] = tokens else {
                return Err(syntax("SRV needs priority weight port target".into()));
            };
            Ok(RData::Srv(Srv::new(
                parse_u16(priority, line)?,
                parse_u16(weight, line)?,
                parse_u16(port, line)?,
                parse_name(target, origin, line)?,
            )))
        }
        "SOA" => {
            let &[mname, rname, serial, refresh, retry, expire, minimum, ..] = tokens else {
                return Err(syntax(
                    "SOA needs mname rname serial refresh retry expire minimum".into(),
                ));
            };
            Ok(RData::Soa(Soa {
                mname: parse_name(mname, origin, line)?,
                rname: parse_name(rname, origin, line)?,
                serial: parse_u32(serial, line)?,
                refresh: parse_u32(refresh, line)?,
                retry: parse_u32(retry, line)?,
                expire: parse_u32(expire, line)?,
                minimum: parse_u32(minimum, line)?,
            }))
        }
        other => Err(syntax(format!("unsupported record type: {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::ZoneLookup;
    use sdoh_dns_wire::RrType;

    const NTPNS_ZONE: &str = r#"
; zone for the simulated NTP pool nameservers
$TTL 300
@   IN SOA ns1 hostmaster 2024010101 7200 900 1209600 300
@   IN NS  c.ntpns.org.
@   IN NS  d.ntpns.org.
@   IN NS  e.ntpns.org.
c   IN A   198.51.100.3
d   IN A   198.51.100.4
e   IN A   198.51.100.5
pool        IN A 203.0.113.1
pool        IN A 203.0.113.2
pool        IN A 203.0.113.3
pool        IN A 203.0.113.4
alias       IN CNAME pool
www 600 IN A 192.0.2.80
v6  IN AAAA 2001:db8::123
mail IN MX 10 mx.ntpns.org.
txt IN TXT "hello world"
_ntp._udp IN SRV 0 5 123 pool.ntpns.org.
"#;

    fn origin() -> Name {
        "ntpns.org".parse().unwrap()
    }

    #[test]
    fn parses_full_zone() {
        let zone = parse_zone(&origin(), NTPNS_ZONE).unwrap();
        assert!(zone.soa().is_some());
        assert_eq!(zone.records_at(&"pool.ntpns.org".parse().unwrap()).len(), 4);
        match zone.lookup(&"pool.ntpns.org".parse().unwrap(), RrType::A) {
            ZoneLookup::Answer(records) => assert_eq!(records.len(), 4),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn explicit_ttl_and_default_ttl() {
        let zone = parse_zone(&origin(), NTPNS_ZONE).unwrap();
        let www = &zone.records_at(&"www.ntpns.org".parse().unwrap())[0];
        assert_eq!(www.ttl, 600);
        let pool = &zone.records_at(&"pool.ntpns.org".parse().unwrap())[0];
        assert_eq!(pool.ttl, 300);
    }

    #[test]
    fn relative_and_absolute_names() {
        let zone = parse_zone(&origin(), NTPNS_ZONE).unwrap();
        match zone.lookup(&"alias.ntpns.org".parse().unwrap(), RrType::A) {
            ZoneLookup::Cname(r) => {
                assert_eq!(
                    r.rdata.target_name().unwrap(),
                    &"pool.ntpns.org".parse::<Name>().unwrap()
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        let ns = zone.records_at(&"ntpns.org".parse().unwrap());
        assert!(ns.iter().any(|r| r.rtype() == RrType::Ns));
    }

    #[test]
    fn parses_all_supported_types() {
        let zone = parse_zone(&origin(), NTPNS_ZONE).unwrap();
        assert!(matches!(
            zone.lookup(&"v6.ntpns.org".parse().unwrap(), RrType::Aaaa),
            ZoneLookup::Answer(_)
        ));
        assert!(matches!(
            zone.lookup(&"mail.ntpns.org".parse().unwrap(), RrType::Mx),
            ZoneLookup::Answer(_)
        ));
        assert!(matches!(
            zone.lookup(&"txt.ntpns.org".parse().unwrap(), RrType::Txt),
            ZoneLookup::Answer(_)
        ));
        assert!(matches!(
            zone.lookup(&"_ntp._udp.ntpns.org".parse().unwrap(), RrType::Srv),
            ZoneLookup::Answer(_)
        ));
    }

    #[test]
    fn missing_soa_is_rejected() {
        let text = "@ IN NS ns1.example.org.\n";
        assert!(matches!(
            parse_zone(&origin(), text),
            Err(ZoneFileError::MissingSoa)
        ));
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let text = "@ IN SOA ns1 host 1 2 3 4 5\nbadline IN A not-an-ip\n";
        match parse_zone(&origin(), text) {
            Err(ZoneFileError::Syntax { line, .. }) => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unsupported_type_is_an_error() {
        let text = "@ IN SOA ns1 host 1 2 3 4 5\nx IN NAPTR something\n";
        assert!(matches!(
            parse_zone(&origin(), text),
            Err(ZoneFileError::Syntax { line: 2, .. })
        ));
    }

    #[test]
    fn origin_directive_switches_origin() {
        let text = "@ IN SOA ns1 host 1 2 3 4 5\n$ORIGIN sub.ntpns.org.\nhost IN A 192.0.2.1\n";
        let zone = parse_zone(&origin(), text).unwrap();
        assert!(matches!(
            zone.lookup(&"host.sub.ntpns.org".parse().unwrap(), RrType::A),
            ZoneLookup::Answer(_)
        ));
    }

    #[test]
    fn out_of_zone_record_is_rejected() {
        let text = "@ IN SOA ns1 host 1 2 3 4 5\nwww.example.com. IN A 192.0.2.1\n";
        assert!(matches!(
            parse_zone(&origin(), text),
            Err(ZoneFileError::OutOfZone { line: 2, .. })
        ));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "; leading comment\n\n@ IN SOA ns1 host 1 2 3 4 5 ; trailing comment\n\n";
        let zone = parse_zone(&origin(), text).unwrap();
        assert_eq!(zone.len(), 1);
    }
}
