//! The [`Exchanger`] abstraction: how a resolver component sends a request
//! payload and waits for the response, independent of whether it runs
//! "outside" the simulation (driven by an experiment) or "inside" a service
//! handler (driven by another query).

use std::time::Duration;

use sdoh_netsim::{ChannelKind, Ctx, NetResult, SimAddr, SimNet};

/// Anything able to perform a request/response exchange with an endpoint.
pub trait Exchanger {
    /// Sends `payload` to `dst` over a channel of kind `channel` and returns
    /// the response payload.
    ///
    /// # Errors
    ///
    /// Propagates transport errors (timeouts, unreachable endpoints,
    /// partitions).
    fn exchange(
        &mut self,
        dst: SimAddr,
        channel: ChannelKind,
        payload: &[u8],
        timeout: Duration,
    ) -> NetResult<Vec<u8>>;

    /// Draws a fresh 16-bit identifier from the simulation randomness.
    fn next_id(&mut self) -> u16;
}

/// An [`Exchanger`] for code running outside any service: an experiment
/// driver or an example binary acting as "the application host".
#[derive(Debug, Clone, Copy)]
pub struct ClientExchanger<'a> {
    net: &'a SimNet,
    source: SimAddr,
}

impl<'a> ClientExchanger<'a> {
    /// Creates an exchanger that sends from `source`.
    pub fn new(net: &'a SimNet, source: SimAddr) -> Self {
        ClientExchanger { net, source }
    }

    /// The configured source address.
    pub fn source(&self) -> SimAddr {
        self.source
    }
}

impl Exchanger for ClientExchanger<'_> {
    fn exchange(
        &mut self,
        dst: SimAddr,
        channel: ChannelKind,
        payload: &[u8],
        timeout: Duration,
    ) -> NetResult<Vec<u8>> {
        self.net.transact(self.source, dst, channel, payload, timeout)
    }

    fn next_id(&mut self) -> u16 {
        self.net.random_id()
    }
}

impl Exchanger for Ctx<'_> {
    fn exchange(
        &mut self,
        dst: SimAddr,
        channel: ChannelKind,
        payload: &[u8],
        timeout: Duration,
    ) -> NetResult<Vec<u8>> {
        self.call(dst, channel, payload, timeout)
    }

    fn next_id(&mut self) -> u16 {
        self.random_id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdoh_netsim::{FnService, ServiceResponse};

    #[test]
    fn client_exchanger_roundtrips() {
        let net = SimNet::new(5);
        let server = SimAddr::v4(192, 0, 2, 1, 53);
        net.register(
            server,
            FnService::new("echo", |_ctx, _from, _ch, p: &[u8]| {
                ServiceResponse::Reply(p.to_vec())
            }),
        );
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        assert_eq!(exchanger.source().port, 40000);
        let reply = exchanger
            .exchange(server, ChannelKind::Plain, b"ping", Duration::from_secs(1))
            .unwrap();
        assert_eq!(reply, b"ping");
        let _ = exchanger.next_id();
    }

    #[test]
    fn ctx_exchanger_used_from_within_service() {
        let net = SimNet::new(6);
        let backend = SimAddr::v4(192, 0, 2, 2, 53);
        let frontend = SimAddr::v4(192, 0, 2, 3, 53);
        net.register(
            backend,
            FnService::new("echo", |_ctx, _from, _ch, p: &[u8]| {
                ServiceResponse::Reply(p.to_vec())
            }),
        );
        net.register(
            frontend,
            FnService::new("fwd", move |ctx: &mut Ctx<'_>, _from, ch, p: &[u8]| {
                let mut payload = p.to_vec();
                payload.extend_from_slice(b"-forwarded");
                match ctx.exchange(backend, ch, &payload, Duration::from_secs(1)) {
                    Ok(reply) => ServiceResponse::Reply(reply),
                    Err(_) => ServiceResponse::NoReply,
                }
            }),
        );
        let reply = net
            .transact(
                SimAddr::v4(10, 0, 0, 1, 40000),
                frontend,
                ChannelKind::Plain,
                b"hi",
                Duration::from_secs(1),
            )
            .unwrap();
        assert_eq!(reply, b"hi-forwarded");
    }
}
