//! The [`Exchanger`] abstraction: how a resolver component sends a request
//! payload and waits for the response, independent of whether it runs
//! "outside" the simulation (driven by an experiment) or "inside" a service
//! handler (driven by another query).
//!
//! Besides the one-at-a-time [`Exchanger::exchange`], the trait offers
//! [`Exchanger::exchange_all`]: a batch of independent exchanges that a
//! capable transport performs **concurrently** (one batch costs the slowest
//! exchange's virtual latency, not the sum). Both simulator-backed
//! exchangers — [`ClientExchanger`] for experiment drivers and
//! [`sdoh_netsim::Ctx`] for code inside a service handler — fan batches out
//! through [`sdoh_netsim::SimNet::transact_concurrent`]; the default
//! implementation falls back to driving the batch sequentially so that any
//! custom exchanger keeps working unchanged.

use std::time::Duration;

use sdoh_netsim::{ChannelKind, Ctx, NetResult, SimAddr, SimInstant, SimNet};

/// One request of a batch handed to [`Exchanger::exchange_all`] — the
/// simulator's batch-request type, re-exported under the exchange
/// vocabulary.
pub use sdoh_netsim::ConcurrentRequest as ExchangeRequest;

/// Outcome of one exchange of a batch, in delivery order — the simulator's
/// batch-outcome type, re-exported under the exchange vocabulary.
pub use sdoh_netsim::ConcurrentOutcome as ExchangeOutcome;

/// Anything able to perform a request/response exchange with an endpoint.
pub trait Exchanger {
    /// Sends `payload` to `dst` over a channel of kind `channel` and returns
    /// the response payload.
    ///
    /// # Errors
    ///
    /// Propagates transport errors (timeouts, unreachable endpoints,
    /// partitions).
    fn exchange(
        &mut self,
        dst: SimAddr,
        channel: ChannelKind,
        payload: &[u8],
        timeout: Duration,
    ) -> NetResult<Vec<u8>>;

    /// Like [`Exchanger::exchange`], but departing from the given
    /// **ephemeral source port** instead of the exchanger's default source.
    ///
    /// Source-port randomization is one of the classical defenses against
    /// off-path response forgery: each upstream query departing from a
    /// fresh port adds 16 bits the attacker must guess. The default
    /// implementation ignores the port and delegates to
    /// [`Exchanger::exchange`] — correct for transports where the source
    /// port is not attacker-guessable (authenticated channels, loopback
    /// backends); the simulator-backed exchangers override it so the
    /// port becomes visible to (and raceable by) the network adversary.
    ///
    /// # Errors
    ///
    /// Same as [`Exchanger::exchange`].
    fn exchange_from_port(
        &mut self,
        src_port: u16,
        dst: SimAddr,
        channel: ChannelKind,
        payload: &[u8],
        timeout: Duration,
    ) -> NetResult<Vec<u8>> {
        let _ = src_port;
        self.exchange(dst, channel, payload, timeout)
    }

    /// Draws a fresh 16-bit identifier from the simulation randomness.
    fn next_id(&mut self) -> u16;

    /// Current virtual time as seen by this exchanger.
    fn now(&self) -> SimInstant;

    /// Performs a batch of independent exchanges, returning the outcomes in
    /// delivery order.
    ///
    /// Transports that support in-flight concurrency (the simulator-backed
    /// exchangers) overlap the exchanges so the batch costs the slowest
    /// exchange, not the sum; this default implementation preserves the
    /// one-at-a-time behaviour for exchangers that don't override it.
    fn exchange_all(&mut self, requests: Vec<ExchangeRequest>) -> Vec<ExchangeOutcome> {
        requests
            .into_iter()
            .enumerate()
            .map(|(index, request)| {
                let result = self.exchange(
                    request.dst,
                    request.channel,
                    &request.payload,
                    request.timeout,
                );
                ExchangeOutcome {
                    index,
                    completed_at: self.now(),
                    result,
                }
            })
            .collect()
    }
}

/// An [`Exchanger`] for code running outside any service: an experiment
/// driver or an example binary acting as "the application host".
#[derive(Debug, Clone, Copy)]
pub struct ClientExchanger<'a> {
    net: &'a SimNet,
    source: SimAddr,
}

impl<'a> ClientExchanger<'a> {
    /// Creates an exchanger that sends from `source`.
    pub fn new(net: &'a SimNet, source: SimAddr) -> Self {
        ClientExchanger { net, source }
    }

    /// The configured source address.
    pub fn source(&self) -> SimAddr {
        self.source
    }
}

impl Exchanger for ClientExchanger<'_> {
    fn exchange(
        &mut self,
        dst: SimAddr,
        channel: ChannelKind,
        payload: &[u8],
        timeout: Duration,
    ) -> NetResult<Vec<u8>> {
        self.net
            .transact(self.source, dst, channel, payload, timeout)
    }

    fn exchange_from_port(
        &mut self,
        src_port: u16,
        dst: SimAddr,
        channel: ChannelKind,
        payload: &[u8],
        timeout: Duration,
    ) -> NetResult<Vec<u8>> {
        self.net.transact(
            self.source.with_port(src_port),
            dst,
            channel,
            payload,
            timeout,
        )
    }

    fn next_id(&mut self) -> u16 {
        self.net.random_id()
    }

    fn now(&self) -> SimInstant {
        self.net.now()
    }

    fn exchange_all(&mut self, requests: Vec<ExchangeRequest>) -> Vec<ExchangeOutcome> {
        self.net.transact_concurrent(self.source, requests)
    }
}

impl Exchanger for Ctx<'_> {
    fn exchange(
        &mut self,
        dst: SimAddr,
        channel: ChannelKind,
        payload: &[u8],
        timeout: Duration,
    ) -> NetResult<Vec<u8>> {
        self.call(dst, channel, payload, timeout)
    }

    fn exchange_from_port(
        &mut self,
        src_port: u16,
        dst: SimAddr,
        channel: ChannelKind,
        payload: &[u8],
        timeout: Duration,
    ) -> NetResult<Vec<u8>> {
        self.call_from_port(src_port, dst, channel, payload, timeout)
    }

    fn next_id(&mut self) -> u16 {
        self.random_id()
    }

    fn now(&self) -> SimInstant {
        Ctx::now(self)
    }

    fn exchange_all(&mut self, requests: Vec<ExchangeRequest>) -> Vec<ExchangeOutcome> {
        self.call_concurrent(requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdoh_netsim::{FnService, LinkConfig, ServiceResponse};

    #[test]
    fn client_exchanger_roundtrips() {
        let net = SimNet::new(5);
        let server = SimAddr::v4(192, 0, 2, 1, 53);
        net.register(
            server,
            FnService::new("echo", |_ctx, _from, _ch, p: &[u8]| {
                ServiceResponse::Reply(p.to_vec())
            }),
        );
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        assert_eq!(exchanger.source().port, 40000);
        let reply = exchanger
            .exchange(server, ChannelKind::Plain, b"ping", Duration::from_secs(1))
            .unwrap();
        assert_eq!(reply, b"ping");
        let _ = exchanger.next_id();
        assert!(exchanger.now() > SimInstant::EPOCH);
    }

    #[test]
    fn ctx_exchanger_used_from_within_service() {
        let net = SimNet::new(6);
        let backend = SimAddr::v4(192, 0, 2, 2, 53);
        let frontend = SimAddr::v4(192, 0, 2, 3, 53);
        net.register(
            backend,
            FnService::new("echo", |_ctx, _from, _ch, p: &[u8]| {
                ServiceResponse::Reply(p.to_vec())
            }),
        );
        net.register(
            frontend,
            FnService::new("fwd", move |ctx: &mut Ctx<'_>, _from, ch, p: &[u8]| {
                let mut payload = p.to_vec();
                payload.extend_from_slice(b"-forwarded");
                match ctx.exchange(backend, ch, &payload, Duration::from_secs(1)) {
                    Ok(reply) => ServiceResponse::Reply(reply),
                    Err(_) => ServiceResponse::NoReply,
                }
            }),
        );
        let reply = net
            .transact(
                SimAddr::v4(10, 0, 0, 1, 40000),
                frontend,
                ChannelKind::Plain,
                b"hi",
                Duration::from_secs(1),
            )
            .unwrap();
        assert_eq!(reply, b"hi-forwarded");
    }

    #[test]
    fn client_exchanger_batch_overlaps_in_time() {
        let net = SimNet::new(7);
        let client = SimAddr::v4(10, 0, 0, 1, 40000);
        let servers: Vec<SimAddr> = (1..=3).map(|i| SimAddr::v4(192, 0, 2, i, 53)).collect();
        for &server in &servers {
            net.register(
                server,
                FnService::new("echo", |_ctx, _from, _ch, p: &[u8]| {
                    ServiceResponse::Reply(p.to_vec())
                }),
            );
            net.set_link(
                client.ip,
                server.ip,
                LinkConfig::with_latency(Duration::from_millis(25)),
            );
        }
        let mut exchanger = ClientExchanger::new(&net, client);
        let t0 = exchanger.now();
        let outcomes = exchanger.exchange_all(
            servers
                .iter()
                .map(|&dst| {
                    ExchangeRequest::new(
                        dst,
                        ChannelKind::Secure,
                        b"q".to_vec(),
                        Duration::from_secs(1),
                    )
                })
                .collect(),
        );
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes.iter().all(|o| o.result.is_ok()));
        // Three concurrent 50 ms round trips cost 50 ms, not 150 ms.
        assert_eq!(
            exchanger.now().saturating_duration_since(t0),
            Duration::from_millis(50)
        );
    }

    #[test]
    fn default_exchange_all_is_sequential() {
        // A minimal custom exchanger exercising the provided method.
        struct Loopback(u64);
        impl Exchanger for Loopback {
            fn exchange(
                &mut self,
                _dst: SimAddr,
                _channel: ChannelKind,
                payload: &[u8],
                _timeout: Duration,
            ) -> NetResult<Vec<u8>> {
                self.0 += 1;
                Ok(payload.to_vec())
            }

            fn next_id(&mut self) -> u16 {
                7
            }

            fn now(&self) -> SimInstant {
                SimInstant::from_nanos(self.0)
            }
        }

        let mut exchanger = Loopback(0);
        let outcomes = exchanger.exchange_all(vec![
            ExchangeRequest::new(
                SimAddr::v4(1, 1, 1, 1, 53),
                ChannelKind::Plain,
                b"a".to_vec(),
                Duration::from_secs(1),
            ),
            ExchangeRequest::new(
                SimAddr::v4(2, 2, 2, 2, 53),
                ChannelKind::Plain,
                b"b".to_vec(),
                Duration::from_secs(1),
            ),
        ]);
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].index, 0);
        assert_eq!(outcomes[1].index, 1);
        assert_eq!(outcomes[1].result.as_deref().unwrap(), b"b");
        // Sequential fallback: the second completion is strictly later.
        assert!(outcomes[1].completed_at > outcomes[0].completed_at);
    }
}
