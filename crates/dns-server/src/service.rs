//! Adapters exposing [`QueryHandler`]s as Do53 endpoints: the
//! transport-independent wire termination ([`serve_do53_payload`]) plus
//! the simulated network service built on it ([`Do53Service`]).

use sdoh_dns_wire::{Message, Rcode};
use sdoh_netsim::{ChannelKind, Ctx, Service, ServiceResponse, SimAddr};

use crate::exchange::Exchanger;
use crate::handler::QueryHandler;

/// Terminates one classic-DNS wire payload against `handler`: decode the
/// query, answer it (upstream lookups go through `exchanger`), encode the
/// response. `None` means "send nothing" — a malformed query under
/// `drop_malformed`, or the (theoretical) failure to encode even an error
/// response; the peer observes a timeout.
///
/// This is the shared core of every Do53 front end: the simulator's
/// [`Do53Service`] calls it with the simulation `Ctx` as the exchanger, a
/// real-socket runtime calls it with its own exchanger — mirroring how
/// the DoH layer splits `serve_payload` from its service adapter.
pub fn serve_do53_payload(
    handler: &mut dyn QueryHandler,
    exchanger: &mut dyn Exchanger,
    payload: &[u8],
    drop_malformed: bool,
) -> Option<Vec<u8>> {
    let query = match Message::decode(payload) {
        Ok(query) => query,
        Err(_) if drop_malformed => return None,
        Err(_) => {
            // Best effort FORMERR with an empty question section.
            let mut response = Message::new();
            response.header.response = true;
            response.header.rcode = Rcode::FormErr;
            return response.encode().ok();
        }
    };
    let response = handler.handle_query(exchanger, &query);
    match response.encode() {
        Ok(bytes) => Some(bytes),
        Err(_) => Message::error_response(&query, Rcode::ServFail)
            .encode()
            .ok(),
    }
}

/// A classic DNS service: decodes query bytes, hands the message to a
/// [`QueryHandler`] and encodes the response.
#[derive(Debug)]
pub struct Do53Service<H> {
    handler: H,
    /// When `true` the service drops malformed queries instead of answering
    /// FORMERR (some real servers behave this way).
    drop_malformed: bool,
}

impl<H: QueryHandler> Do53Service<H> {
    /// Creates a DNS service around the given handler.
    pub fn new(handler: H) -> Self {
        Do53Service {
            handler,
            drop_malformed: false,
        }
    }

    /// Configures the service to silently drop malformed queries.
    pub fn dropping_malformed(mut self) -> Self {
        self.drop_malformed = true;
        self
    }

    /// Access to the wrapped handler.
    pub fn handler(&self) -> &H {
        &self.handler
    }

    /// Mutable access to the wrapped handler.
    pub fn handler_mut(&mut self) -> &mut H {
        &mut self.handler
    }
}

impl<H: QueryHandler> Service for Do53Service<H> {
    fn handle(
        &mut self,
        ctx: &mut Ctx<'_>,
        _from: SimAddr,
        _channel: ChannelKind,
        payload: &[u8],
    ) -> ServiceResponse {
        match serve_do53_payload(&mut self.handler, ctx, payload, self.drop_malformed) {
            Some(bytes) => ServiceResponse::Reply(bytes),
            None => ServiceResponse::NoReply,
        }
    }

    fn name(&self) -> &str {
        "do53"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::Authority;
    use crate::catalog::Catalog;
    use crate::zone::Zone;
    use sdoh_dns_wire::RrType;
    use sdoh_netsim::SimNet;
    use std::time::Duration;

    fn service() -> Do53Service<Authority> {
        let mut zone = Zone::new("example.org".parse().unwrap());
        zone.add_address(
            "www.example.org".parse().unwrap(),
            "192.0.2.80".parse().unwrap(),
        );
        let mut catalog = Catalog::new();
        catalog.add_zone(zone);
        Do53Service::new(Authority::new(catalog))
    }

    #[test]
    fn answers_well_formed_queries() {
        let net = SimNet::new(7);
        let addr = SimAddr::v4(198, 51, 100, 53, 53);
        net.register(addr, service());
        let query = Message::query(3, "www.example.org".parse().unwrap(), RrType::A);
        let reply = net
            .transact(
                SimAddr::v4(10, 0, 0, 1, 40000),
                addr,
                ChannelKind::Plain,
                &query.encode().unwrap(),
                Duration::from_secs(1),
            )
            .unwrap();
        let response = Message::decode(&reply).unwrap();
        assert_eq!(response.answer_addresses().len(), 1);
        assert!(response.answers_query(&query));
    }

    #[test]
    fn malformed_query_gets_formerr() {
        let net = SimNet::new(8);
        let addr = SimAddr::v4(198, 51, 100, 53, 53);
        net.register(addr, service());
        let reply = net
            .transact(
                SimAddr::v4(10, 0, 0, 1, 40000),
                addr,
                ChannelKind::Plain,
                b"garbage",
                Duration::from_secs(1),
            )
            .unwrap();
        let response = Message::decode(&reply).unwrap();
        assert_eq!(response.header.rcode, Rcode::FormErr);
    }

    #[test]
    fn malformed_query_dropped_when_configured() {
        let net = SimNet::new(9);
        let addr = SimAddr::v4(198, 51, 100, 53, 53);
        net.register(addr, service().dropping_malformed());
        let err = net
            .transact(
                SimAddr::v4(10, 0, 0, 1, 40000),
                addr,
                ChannelKind::Plain,
                b"garbage",
                Duration::from_secs(1),
            )
            .unwrap_err();
        assert_eq!(err, sdoh_netsim::NetError::Timeout);
    }

    #[test]
    fn handler_accessors() {
        let mut svc = service();
        assert_eq!(svc.handler().catalog().len(), 1);
        svc.handler_mut()
            .catalog_mut()
            .add_zone(Zone::new("new.test".parse().unwrap()));
        assert_eq!(svc.handler().catalog().len(), 2);
        assert_eq!(Service::name(&svc), "do53");
    }
}
