//! A low-level DNS client: sends one query to one server and validates the
//! response the way a standard stub or recursive resolver would.

use std::time::Duration;

use sdoh_dns_wire::{Message, Name, Rcode, RrType};
use sdoh_netsim::{ChannelKind, SimAddr};

use crate::error::{ResolveError, ResolveResult};
use crate::exchange::{ExchangeRequest, Exchanger};

/// Default query timeout.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(3);

/// A classic ("Do53") DNS client talking to a single server address.
///
/// The client performs the checks a real resolver performs on a response:
/// the transaction id must match, the message must be a response, and the
/// question section must echo the query. These are exactly the checks an
/// off-path attacker must defeat by guessing.
#[derive(Debug, Clone)]
pub struct DnsClient {
    server: SimAddr,
    channel: ChannelKind,
    timeout: Duration,
    recursion_desired: bool,
}

impl DnsClient {
    /// Creates a client for the given server using a plain (UDP-like)
    /// channel.
    pub fn new(server: SimAddr) -> Self {
        DnsClient {
            server,
            channel: ChannelKind::Plain,
            timeout: DEFAULT_TIMEOUT,
            recursion_desired: true,
        }
    }

    /// Sets the channel kind used for queries.
    pub fn channel(mut self, channel: ChannelKind) -> Self {
        self.channel = channel;
        self
    }

    /// Sets the query timeout.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets whether queries request recursion (RD bit).
    pub fn recursion_desired(mut self, rd: bool) -> Self {
        self.recursion_desired = rd;
        self
    }

    /// The server this client queries.
    pub fn server(&self) -> SimAddr {
        self.server
    }

    /// Sends a single query and returns the validated response message.
    ///
    /// This is the blocking convenience wrapper over the sans-IO halves
    /// [`DnsClient::begin_query`] / [`DnsClient::finish_query`].
    ///
    /// # Errors
    ///
    /// Returns [`ResolveError::Network`] for transport failures,
    /// [`ResolveError::Mismatched`] when the response does not match the
    /// query, and [`ResolveError::ErrorResponse`] for SERVFAIL/REFUSED/
    /// NOTIMP answers. NXDOMAIN and NODATA are *not* errors: the caller
    /// inspects the returned message.
    pub fn query(
        &self,
        exchanger: &mut dyn Exchanger,
        name: &Name,
        rtype: RrType,
    ) -> ResolveResult<Message> {
        let (request, prepared) = self.begin_query(exchanger.next_id(), name, rtype)?;
        let reply_bytes = exchanger.exchange(
            request.dst,
            request.channel,
            &request.payload,
            request.timeout,
        )?;
        self.finish_query(prepared, &reply_bytes)
    }

    /// Sans-IO first half of a query: encodes the wire request without
    /// performing any exchange. `id` becomes the DNS transaction id the
    /// response must echo.
    ///
    /// # Errors
    ///
    /// Returns [`ResolveError::Wire`] when the query cannot be encoded.
    pub fn begin_query(
        &self,
        id: u16,
        name: &Name,
        rtype: RrType,
    ) -> ResolveResult<(ExchangeRequest, PreparedDnsQuery)> {
        let mut query = Message::query(id, name.clone(), rtype);
        query.header.recursion_desired = self.recursion_desired;
        let wire = query.encode()?;
        Ok((
            ExchangeRequest::new(self.server, self.channel, wire, self.timeout),
            PreparedDnsQuery { query },
        ))
    }

    /// Sans-IO second half of a query: decodes `reply_bytes` and validates
    /// it the way a standard resolver would (id echo, response bit, question
    /// echo, acceptable rcode).
    ///
    /// # Errors
    ///
    /// Same as [`DnsClient::query`], minus transport errors.
    pub fn finish_query(
        &self,
        prepared: PreparedDnsQuery,
        reply_bytes: &[u8],
    ) -> ResolveResult<Message> {
        let response = Message::decode(reply_bytes)?;
        if !response.answers_query(&prepared.query) {
            return Err(ResolveError::Mismatched);
        }
        match response.header.rcode {
            Rcode::NoError | Rcode::NxDomain => Ok(response),
            other => Err(ResolveError::ErrorResponse(other)),
        }
    }

    /// The query timeout in use.
    pub fn timeout_value(&self) -> Duration {
        self.timeout
    }

    /// Sends an A query and returns the addresses in the answer section.
    ///
    /// # Errors
    ///
    /// Same as [`DnsClient::query`].
    pub fn query_addresses(
        &self,
        exchanger: &mut dyn Exchanger,
        name: &Name,
    ) -> ResolveResult<Vec<std::net::IpAddr>> {
        Ok(self.query(exchanger, name, RrType::A)?.answer_addresses())
    }
}

/// In-flight state of one plain-DNS query between [`DnsClient::begin_query`]
/// and [`DnsClient::finish_query`].
#[derive(Debug, Clone)]
pub struct PreparedDnsQuery {
    query: Message,
}

impl PreparedDnsQuery {
    /// The DNS query this prepared exchange will resolve.
    pub fn query(&self) -> &Message {
        &self.query
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::Authority;
    use crate::catalog::Catalog;
    use crate::exchange::ClientExchanger;
    use crate::service::Do53Service;
    use crate::zone::Zone;
    use sdoh_netsim::SimNet;

    fn pool_authority() -> Authority {
        let mut zone = Zone::new("ntp.org".parse().unwrap());
        for i in 1..=4u8 {
            zone.add_address(
                "pool.ntp.org".parse().unwrap(),
                format!("203.0.113.{i}").parse().unwrap(),
            );
        }
        let mut catalog = Catalog::new();
        catalog.add_zone(zone);
        Authority::new(catalog)
    }

    #[test]
    fn query_roundtrip_over_simnet() {
        let net = SimNet::new(42);
        let server = SimAddr::v4(198, 51, 100, 53, 53);
        net.register(server, Do53Service::new(pool_authority()));
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));

        let client = DnsClient::new(server);
        let response = client
            .query(&mut exchanger, &"pool.ntp.org".parse().unwrap(), RrType::A)
            .unwrap();
        assert_eq!(response.answer_addresses().len(), 4);

        let addrs = client
            .query_addresses(&mut exchanger, &"pool.ntp.org".parse().unwrap())
            .unwrap();
        assert_eq!(addrs.len(), 4);
    }

    #[test]
    fn refused_is_an_error() {
        let net = SimNet::new(43);
        let server = SimAddr::v4(198, 51, 100, 53, 53);
        net.register(server, Do53Service::new(pool_authority()));
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));

        let client = DnsClient::new(server);
        let err = client
            .query(
                &mut exchanger,
                &"www.example.com".parse().unwrap(),
                RrType::A,
            )
            .unwrap_err();
        assert_eq!(err, ResolveError::ErrorResponse(Rcode::Refused));
    }

    #[test]
    fn nxdomain_is_not_an_error() {
        let net = SimNet::new(44);
        let server = SimAddr::v4(198, 51, 100, 53, 53);
        net.register(server, Do53Service::new(pool_authority()));
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));

        let client = DnsClient::new(server);
        let response = client
            .query(&mut exchanger, &"nope.ntp.org".parse().unwrap(), RrType::A)
            .unwrap();
        assert_eq!(response.header.rcode, Rcode::NxDomain);
    }

    #[test]
    fn unreachable_server_is_a_network_error() {
        let net = SimNet::new(45);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let client = DnsClient::new(SimAddr::v4(192, 0, 2, 99, 53)).timeout(Duration::from_secs(1));
        let err = client
            .query(&mut exchanger, &"pool.ntp.org".parse().unwrap(), RrType::A)
            .unwrap_err();
        assert!(matches!(err, ResolveError::Network(_)));
    }

    #[test]
    fn builder_setters() {
        let client = DnsClient::new(SimAddr::v4(1, 1, 1, 1, 53))
            .channel(ChannelKind::Secure)
            .timeout(Duration::from_millis(500))
            .recursion_desired(false);
        assert_eq!(client.server(), SimAddr::v4(1, 1, 1, 1, 53));
        assert_eq!(client.timeout, Duration::from_millis(500));
        assert!(!client.recursion_desired);
        assert_eq!(client.channel, ChannelKind::Secure);
    }
}
