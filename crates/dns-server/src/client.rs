//! A low-level DNS client: sends one query to one server and validates the
//! response the way a standard stub or recursive resolver would.

use std::time::Duration;

use sdoh_dns_wire::{Message, Name, Rcode, RrType};
use sdoh_netsim::{ChannelKind, SimAddr};

use crate::error::{ResolveError, ResolveResult};
use crate::exchange::{ExchangeRequest, Exchanger};

/// Default query timeout.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(3);

/// A classic ("Do53") DNS client talking to a single server address.
///
/// The client performs the checks a real resolver performs on a response:
/// the transaction id must match, the message must be a response, and the
/// question section must echo the query. These are exactly the checks an
/// off-path attacker must defeat by guessing.
#[derive(Debug, Clone)]
pub struct DnsClient {
    server: SimAddr,
    channel: ChannelKind,
    timeout: Duration,
    recursion_desired: bool,
    use_0x20: bool,
}

/// The attacker-guessable identifiers of one upstream query, chosen by the
/// caller: a hardened resolver randomizes all of them, a weak one keeps
/// them predictable. Used with [`DnsClient::query_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryIdentifiers {
    /// The DNS transaction id the response must echo.
    pub txid: u16,
    /// Ephemeral source port to send from; `None` keeps the exchanger's
    /// default (fixed, predictable) source.
    pub source_port: Option<u16>,
    /// Seed for 0x20 mixed-case query encoding; `None` sends the name in
    /// its canonical case. Only honored when the client has
    /// [`DnsClient::use_0x20`] enabled.
    pub case_seed: Option<u64>,
}

impl QueryIdentifiers {
    /// Draws a fresh 0x20 case seed (32 random bits) from the exchanger's
    /// identifier randomness — the one derivation both [`DnsClient::query`]
    /// and the hardened recursive resolver use.
    pub fn draw_case_seed(exchanger: &mut dyn Exchanger) -> u64 {
        u64::from(exchanger.next_id()) << 16 | u64::from(exchanger.next_id())
    }
}

impl DnsClient {
    /// Creates a client for the given server using a plain (UDP-like)
    /// channel.
    pub fn new(server: SimAddr) -> Self {
        DnsClient {
            server,
            channel: ChannelKind::Plain,
            timeout: DEFAULT_TIMEOUT,
            recursion_desired: true,
            use_0x20: false,
        }
    }

    /// Sets the channel kind used for queries.
    pub fn channel(mut self, channel: ChannelKind) -> Self {
        self.channel = channel;
        self
    }

    /// Sets the query timeout.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets whether queries request recursion (RD bit).
    pub fn recursion_desired(mut self, rd: bool) -> Self {
        self.recursion_desired = rd;
        self
    }

    /// Enables DNS 0x20 mixed-case query encoding: queries are sent with
    /// pseudo-random letter casing and [`DnsClient::finish_query`] rejects
    /// responses whose echoed question does not match the casing
    /// **exactly** ([`ResolveError::Mismatched`]) — forcing an off-path
    /// forger to guess one extra bit per letter of the name.
    pub fn use_0x20(mut self, enabled: bool) -> Self {
        self.use_0x20 = enabled;
        self
    }

    /// The server this client queries.
    pub fn server(&self) -> SimAddr {
        self.server
    }

    /// Sends a single query and returns the validated response message.
    ///
    /// This is the blocking convenience wrapper over the sans-IO halves
    /// [`DnsClient::begin_query`] / [`DnsClient::finish_query`].
    ///
    /// # Errors
    ///
    /// Returns [`ResolveError::Network`] for transport failures,
    /// [`ResolveError::Mismatched`] when the response does not match the
    /// query, and [`ResolveError::ErrorResponse`] for SERVFAIL/REFUSED/
    /// NOTIMP answers. NXDOMAIN and NODATA are *not* errors: the caller
    /// inspects the returned message.
    pub fn query(
        &self,
        exchanger: &mut dyn Exchanger,
        name: &Name,
        rtype: RrType,
    ) -> ResolveResult<Message> {
        let txid = exchanger.next_id();
        let case_seed = self
            .use_0x20
            .then(|| QueryIdentifiers::draw_case_seed(exchanger));
        self.query_with(
            exchanger,
            name,
            rtype,
            QueryIdentifiers {
                txid,
                source_port: None,
                case_seed,
            },
        )
    }

    /// Sends a single query with **caller-chosen identifiers** — the
    /// entry point hardened resolvers use to randomize the transaction
    /// id, source port and query casing of their upstream queries (and
    /// weak baselines use to keep them predictable).
    ///
    /// # Errors
    ///
    /// Same as [`DnsClient::query`].
    pub fn query_with(
        &self,
        exchanger: &mut dyn Exchanger,
        name: &Name,
        rtype: RrType,
        identifiers: QueryIdentifiers,
    ) -> ResolveResult<Message> {
        let cased;
        let query_name = match identifiers.case_seed {
            Some(seed) if self.use_0x20 => {
                cased = name.with_mixed_case(seed);
                &cased
            }
            _ => name,
        };
        let (request, prepared) = self.begin_query(identifiers.txid, query_name, rtype)?;
        let reply_bytes = match identifiers.source_port {
            Some(port) => exchanger.exchange_from_port(
                port,
                request.dst,
                request.channel,
                &request.payload,
                request.timeout,
            )?,
            None => exchanger.exchange(
                request.dst,
                request.channel,
                &request.payload,
                request.timeout,
            )?,
        };
        self.finish_query(prepared, &reply_bytes)
    }

    /// Sans-IO first half of a query: encodes the wire request without
    /// performing any exchange. `id` becomes the DNS transaction id the
    /// response must echo.
    ///
    /// # Errors
    ///
    /// Returns [`ResolveError::Wire`] when the query cannot be encoded.
    pub fn begin_query(
        &self,
        id: u16,
        name: &Name,
        rtype: RrType,
    ) -> ResolveResult<(ExchangeRequest, PreparedDnsQuery)> {
        let mut query = Message::query(id, name.clone(), rtype);
        query.header.recursion_desired = self.recursion_desired;
        let wire = query.encode()?;
        Ok((
            ExchangeRequest::new(self.server, self.channel, wire, self.timeout),
            PreparedDnsQuery { query },
        ))
    }

    /// Sans-IO second half of a query: decodes `reply_bytes` and validates
    /// it the way a standard resolver would (id echo, response bit, question
    /// echo, acceptable rcode).
    ///
    /// # Errors
    ///
    /// Same as [`DnsClient::query`], minus transport errors.
    pub fn finish_query(
        &self,
        prepared: PreparedDnsQuery,
        reply_bytes: &[u8],
    ) -> ResolveResult<Message> {
        let response = Message::decode(reply_bytes)?;
        if !response.answers_query(&prepared.query) {
            return Err(ResolveError::Mismatched);
        }
        if self.use_0x20 {
            // 0x20 verification: the echoed question must match the query
            // name's letter casing exactly, not just case-insensitively.
            let case_ok = match (response.question(), prepared.query.question()) {
                (Some(echoed), Some(sent)) => echoed.name.eq_case_exact(&sent.name),
                _ => false,
            };
            if !case_ok {
                return Err(ResolveError::Mismatched);
            }
        }
        match response.header.rcode {
            Rcode::NoError | Rcode::NxDomain => Ok(response),
            other => Err(ResolveError::ErrorResponse(other)),
        }
    }

    /// The query timeout in use.
    pub fn timeout_value(&self) -> Duration {
        self.timeout
    }

    /// Sends an A query and returns the addresses in the answer section.
    ///
    /// # Errors
    ///
    /// Same as [`DnsClient::query`].
    pub fn query_addresses(
        &self,
        exchanger: &mut dyn Exchanger,
        name: &Name,
    ) -> ResolveResult<Vec<std::net::IpAddr>> {
        Ok(self.query(exchanger, name, RrType::A)?.answer_addresses())
    }
}

/// In-flight state of one plain-DNS query between [`DnsClient::begin_query`]
/// and [`DnsClient::finish_query`].
#[derive(Debug, Clone)]
pub struct PreparedDnsQuery {
    query: Message,
}

impl PreparedDnsQuery {
    /// The DNS query this prepared exchange will resolve.
    pub fn query(&self) -> &Message {
        &self.query
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::Authority;
    use crate::catalog::Catalog;
    use crate::exchange::ClientExchanger;
    use crate::service::Do53Service;
    use crate::zone::Zone;
    use sdoh_netsim::SimNet;

    fn pool_authority() -> Authority {
        let mut zone = Zone::new("ntp.org".parse().unwrap());
        for i in 1..=4u8 {
            zone.add_address(
                "pool.ntp.org".parse().unwrap(),
                format!("203.0.113.{i}").parse().unwrap(),
            );
        }
        let mut catalog = Catalog::new();
        catalog.add_zone(zone);
        Authority::new(catalog)
    }

    #[test]
    fn query_roundtrip_over_simnet() {
        let net = SimNet::new(42);
        let server = SimAddr::v4(198, 51, 100, 53, 53);
        net.register(server, Do53Service::new(pool_authority()));
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));

        let client = DnsClient::new(server);
        let response = client
            .query(&mut exchanger, &"pool.ntp.org".parse().unwrap(), RrType::A)
            .unwrap();
        assert_eq!(response.answer_addresses().len(), 4);

        let addrs = client
            .query_addresses(&mut exchanger, &"pool.ntp.org".parse().unwrap())
            .unwrap();
        assert_eq!(addrs.len(), 4);
    }

    #[test]
    fn refused_is_an_error() {
        let net = SimNet::new(43);
        let server = SimAddr::v4(198, 51, 100, 53, 53);
        net.register(server, Do53Service::new(pool_authority()));
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));

        let client = DnsClient::new(server);
        let err = client
            .query(
                &mut exchanger,
                &"www.example.com".parse().unwrap(),
                RrType::A,
            )
            .unwrap_err();
        assert_eq!(err, ResolveError::ErrorResponse(Rcode::Refused));
    }

    #[test]
    fn nxdomain_is_not_an_error() {
        let net = SimNet::new(44);
        let server = SimAddr::v4(198, 51, 100, 53, 53);
        net.register(server, Do53Service::new(pool_authority()));
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));

        let client = DnsClient::new(server);
        let response = client
            .query(&mut exchanger, &"nope.ntp.org".parse().unwrap(), RrType::A)
            .unwrap();
        assert_eq!(response.header.rcode, Rcode::NxDomain);
    }

    #[test]
    fn unreachable_server_is_a_network_error() {
        let net = SimNet::new(45);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let client = DnsClient::new(SimAddr::v4(192, 0, 2, 99, 53)).timeout(Duration::from_secs(1));
        let err = client
            .query(&mut exchanger, &"pool.ntp.org".parse().unwrap(), RrType::A)
            .unwrap_err();
        assert!(matches!(err, ResolveError::Network(_)));
    }

    #[test]
    fn builder_setters() {
        let client = DnsClient::new(SimAddr::v4(1, 1, 1, 1, 53))
            .channel(ChannelKind::Secure)
            .timeout(Duration::from_millis(500))
            .recursion_desired(false)
            .use_0x20(true);
        assert_eq!(client.server(), SimAddr::v4(1, 1, 1, 1, 53));
        assert_eq!(client.timeout, Duration::from_millis(500));
        assert!(!client.recursion_desired);
        assert_eq!(client.channel, ChannelKind::Secure);
        assert!(client.use_0x20);
    }

    #[test]
    fn x20_roundtrips_against_a_case_echoing_server() {
        let net = SimNet::new(46);
        let server = SimAddr::v4(198, 51, 100, 53, 53);
        net.register(server, Do53Service::new(pool_authority()));
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));

        let client = DnsClient::new(server).use_0x20(true);
        let response = client
            .query(&mut exchanger, &"pool.ntp.org".parse().unwrap(), RrType::A)
            .unwrap();
        assert_eq!(response.answer_addresses().len(), 4);
    }

    #[test]
    fn x20_rejects_a_case_normalizing_forgery() {
        use sdoh_netsim::{FnService, ServiceResponse};

        // A forger that knows the name only in its canonical lowercase
        // form: it echoes the txid but rewrites the question to lowercase.
        let net = SimNet::new(47);
        let server = SimAddr::v4(198, 51, 100, 54, 53);
        net.register(
            server,
            FnService::new("lowercasing-forger", |_ctx, _from, _ch, payload: &[u8]| {
                let query = Message::decode(payload).unwrap();
                let mut response = Message::response_to(&query);
                response.questions[0].name = query
                    .question()
                    .unwrap()
                    .name
                    .to_lowercase_string()
                    .parse()
                    .unwrap();
                response.add_answer(sdoh_dns_wire::Record::address(
                    response.questions[0].name.clone(),
                    300,
                    "198.18.0.1".parse().unwrap(),
                ));
                ServiceResponse::Reply(response.encode().unwrap())
            }),
        );
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));

        // Find a seed whose casing is not all-lowercase (overwhelmingly
        // likely; the loop guards against an unlucky simulation seed).
        let name: Name = "pool.ntp.org".parse().unwrap();
        let client = DnsClient::new(server).use_0x20(true);
        let mut rejected = false;
        for _ in 0..4 {
            match client.query(&mut exchanger, &name, RrType::A) {
                Err(ResolveError::Mismatched) => {
                    rejected = true;
                    break;
                }
                Ok(_) => continue, // casing came out all-lowercase; retry
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert!(rejected, "lowercased echo must fail 0x20 verification");

        // The same forgery passes once 0x20 verification is off.
        let lax = DnsClient::new(server);
        assert!(lax.query(&mut exchanger, &name, RrType::A).is_ok());
    }

    #[test]
    fn query_with_sends_from_the_requested_ephemeral_port() {
        use sdoh_netsim::{FnService, ServiceResponse};
        use std::cell::Cell;
        use std::rc::Rc;

        let net = SimNet::new(48);
        let server = SimAddr::v4(198, 51, 100, 55, 53);
        let seen_port = Rc::new(Cell::new(0u16));
        let seen = Rc::clone(&seen_port);
        net.register(
            server,
            FnService::new(
                "port-recorder",
                move |_ctx, from: SimAddr, _ch, p: &[u8]| {
                    seen.set(from.port);
                    let query = Message::decode(p).unwrap();
                    ServiceResponse::Reply(Message::response_to(&query).encode().unwrap())
                },
            ),
        );
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let client = DnsClient::new(server);

        client
            .query_with(
                &mut exchanger,
                &"pool.ntp.org".parse().unwrap(),
                RrType::A,
                QueryIdentifiers {
                    txid: 77,
                    source_port: Some(61234),
                    case_seed: None,
                },
            )
            .unwrap();
        assert_eq!(seen_port.get(), 61234);

        client
            .query(&mut exchanger, &"pool.ntp.org".parse().unwrap(), RrType::A)
            .unwrap();
        assert_eq!(seen_port.get(), 40000, "default source port untouched");
    }
}
