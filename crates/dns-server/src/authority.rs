//! The authoritative name-server engine: answers queries from a [`Catalog`]
//! of zones (the `c/d/e.ntpns.org` servers of the paper's Figure 1).

use sdoh_dns_wire::{Message, MessageBuilder, Opcode, Rcode, RrType};

use crate::catalog::Catalog;
use crate::zone::ZoneLookup;

/// Maximum number of CNAME links followed inside a single zone while
/// building an answer.
const MAX_CNAME_CHAIN: usize = 8;

/// An authoritative DNS server over a catalog of zones.
#[derive(Debug, Clone, Default)]
pub struct Authority {
    catalog: Catalog,
}

impl Authority {
    /// Creates an authority serving the given catalog.
    pub fn new(catalog: Catalog) -> Self {
        Authority { catalog }
    }

    /// Read access to the underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the underlying catalog.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Produces an authoritative response for `query`.
    ///
    /// Unsupported opcodes get NOTIMP, queries outside all zones get
    /// REFUSED, missing names get NXDOMAIN with the zone SOA attached, and
    /// names below a zone cut get a referral.
    pub fn answer(&self, query: &Message) -> Message {
        if query.header.opcode != Opcode::Query {
            return Message::error_response(query, Rcode::NotImp);
        }
        let question = match query.question() {
            Some(q) => q.clone(),
            None => return Message::error_response(query, Rcode::FormErr),
        };

        let zone = match self.catalog.find(&question.name) {
            Some(z) => z,
            None => return Message::error_response(query, Rcode::Refused),
        };

        let mut builder = MessageBuilder::response_to(query).authoritative(true);
        let mut current_name = question.name.clone();
        let mut chain = 0usize;

        loop {
            match zone.lookup(&current_name, question.rtype) {
                ZoneLookup::Answer(records) => {
                    for r in records {
                        builder = builder.answer(r);
                    }
                    return builder.build();
                }
                ZoneLookup::Cname(cname) => {
                    let target = cname
                        .rdata
                        .target_name()
                        .cloned()
                        .unwrap_or_else(|| current_name.clone());
                    builder = builder.answer(cname);
                    chain += 1;
                    if chain > MAX_CNAME_CHAIN || !zone.contains(&target) {
                        // Target is outside this zone (or the chain is too
                        // long): return what we have; a resolver will chase it.
                        return builder.build();
                    }
                    current_name = target;
                }
                ZoneLookup::Delegation { ns_records, glue } => {
                    let mut msg = MessageBuilder::response_to(query).authoritative(false);
                    for ns in ns_records {
                        msg = msg.authority(ns);
                    }
                    for g in glue {
                        msg = msg.additional(g);
                    }
                    return msg.build();
                }
                ZoneLookup::NoRecords => {
                    if let Some(soa) = zone.soa() {
                        builder = builder.authority(soa.clone());
                    }
                    return builder.build();
                }
                ZoneLookup::NxDomain => {
                    builder = builder.rcode(Rcode::NxDomain);
                    if let Some(soa) = zone.soa() {
                        builder = builder.authority(soa.clone());
                    }
                    return builder.build();
                }
            }
        }
    }

    /// Convenience check used by tests and experiments: how many addresses
    /// the authority would return for an A query on `name`.
    pub fn address_count(&self, name: &sdoh_dns_wire::Name) -> usize {
        let query = Message::query(0, name.clone(), RrType::A);
        self.answer(&query).answer_addresses().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::Zone;
    use crate::zonefile::parse_zone;
    use sdoh_dns_wire::{Name, RData, Record};

    fn test_authority() -> Authority {
        let origin: Name = "ntpns.org".parse().unwrap();
        let text = r#"
$TTL 300
@      IN SOA ns1 hostmaster 1 7200 900 1209600 300
@      IN NS  c.ntpns.org.
c      IN A   198.51.100.3
pool   IN A   203.0.113.1
pool   IN A   203.0.113.2
pool   IN A   203.0.113.3
alias  IN CNAME pool
extern IN CNAME www.example.com.
child  IN NS  ns.child.ntpns.org.
ns.child IN A 198.51.100.99
"#;
        let zone = parse_zone(&origin, text).unwrap();
        let mut catalog = Catalog::new();
        catalog.add_zone(zone);
        Authority::new(catalog)
    }

    #[test]
    fn answers_address_queries() {
        let authority = test_authority();
        let query = Message::query(1, "pool.ntpns.org".parse().unwrap(), RrType::A);
        let response = authority.answer(&query);
        assert_eq!(response.header.rcode, Rcode::NoError);
        assert!(response.header.authoritative);
        assert_eq!(response.answer_addresses().len(), 3);
        assert!(response.answers_query(&query));
    }

    #[test]
    fn chases_cname_within_zone() {
        let authority = test_authority();
        let query = Message::query(2, "alias.ntpns.org".parse().unwrap(), RrType::A);
        let response = authority.answer(&query);
        // CNAME + 3 A records
        assert_eq!(response.answers.len(), 4);
        assert_eq!(response.answer_addresses().len(), 3);
    }

    #[test]
    fn leaves_external_cname_unchased() {
        let authority = test_authority();
        let query = Message::query(3, "extern.ntpns.org".parse().unwrap(), RrType::A);
        let response = authority.answer(&query);
        assert_eq!(response.answers.len(), 1);
        assert_eq!(response.answers[0].rtype(), RrType::Cname);
    }

    #[test]
    fn delegation_returns_referral() {
        let authority = test_authority();
        let query = Message::query(4, "host.child.ntpns.org".parse().unwrap(), RrType::A);
        let response = authority.answer(&query);
        assert!(response.answers.is_empty());
        assert!(!response.header.authoritative);
        assert_eq!(response.authorities.len(), 1);
        assert_eq!(response.authorities[0].rtype(), RrType::Ns);
        assert_eq!(response.additionals.len(), 1);
    }

    #[test]
    fn nxdomain_with_soa() {
        let authority = test_authority();
        let query = Message::query(5, "missing.ntpns.org".parse().unwrap(), RrType::A);
        let response = authority.answer(&query);
        assert_eq!(response.header.rcode, Rcode::NxDomain);
        assert_eq!(response.authorities.len(), 1);
        assert_eq!(response.authorities[0].rtype(), RrType::Soa);
    }

    #[test]
    fn nodata_with_soa() {
        let authority = test_authority();
        let query = Message::query(6, "pool.ntpns.org".parse().unwrap(), RrType::Aaaa);
        let response = authority.answer(&query);
        assert_eq!(response.header.rcode, Rcode::NoError);
        assert!(response.answers.is_empty());
        assert_eq!(response.authorities.len(), 1);
    }

    #[test]
    fn refuses_out_of_zone_queries() {
        let authority = test_authority();
        let query = Message::query(7, "www.example.com".parse().unwrap(), RrType::A);
        let response = authority.answer(&query);
        assert_eq!(response.header.rcode, Rcode::Refused);
    }

    #[test]
    fn notimp_for_unsupported_opcode() {
        let authority = test_authority();
        let mut query = Message::query(8, "pool.ntpns.org".parse().unwrap(), RrType::A);
        query.header.opcode = Opcode::Update;
        assert_eq!(authority.answer(&query).header.rcode, Rcode::NotImp);
    }

    #[test]
    fn formerr_for_empty_question() {
        let authority = test_authority();
        let query = Message::new();
        assert_eq!(authority.answer(&query).header.rcode, Rcode::FormErr);
    }

    #[test]
    fn address_count_helper() {
        let authority = test_authority();
        assert_eq!(
            authority.address_count(&"pool.ntpns.org".parse().unwrap()),
            3
        );
        assert_eq!(
            authority.address_count(&"missing.ntpns.org".parse().unwrap()),
            0
        );
    }

    #[test]
    fn catalog_accessors() {
        let mut authority = test_authority();
        assert_eq!(authority.catalog().len(), 1);
        authority
            .catalog_mut()
            .add_zone(Zone::new("other.test".parse().unwrap()));
        assert_eq!(authority.catalog().len(), 2);
        // New zone is served too.
        let query = Message::query(9, "other.test".parse().unwrap(), RrType::Soa);
        assert_eq!(authority.answer(&query).header.rcode, Rcode::NoError);
    }

    #[test]
    fn cname_loop_terminates() {
        let origin: Name = "loop.test".parse().unwrap();
        let mut zone = Zone::new(origin.clone());
        zone.add_record(Record::new(
            "a.loop.test".parse().unwrap(),
            60,
            RData::Cname("b.loop.test".parse().unwrap()),
        ));
        zone.add_record(Record::new(
            "b.loop.test".parse().unwrap(),
            60,
            RData::Cname("a.loop.test".parse().unwrap()),
        ));
        let mut catalog = Catalog::new();
        catalog.add_zone(zone);
        let authority = Authority::new(catalog);
        let query = Message::query(10, "a.loop.test".parse().unwrap(), RrType::A);
        let response = authority.answer(&query);
        // Terminates and returns the chain without addresses.
        assert!(response.answer_addresses().is_empty());
        assert!(response.answers.len() <= MAX_CNAME_CHAIN + 1);
    }
}
