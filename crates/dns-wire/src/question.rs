//! The question section entry of a DNS message.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::WireResult;
use crate::name::Name;
use crate::rrtype::{RrClass, RrType};
use crate::wire::{WireReader, WireWriter};

/// A single question: the name, type and class being asked for.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Question {
    /// Domain name being queried.
    pub name: Name,
    /// Record type being requested.
    pub rtype: RrType,
    /// Class of the query (virtually always IN).
    pub rclass: RrClass,
}

impl Question {
    /// Creates a question in the IN class.
    pub fn new(name: Name, rtype: RrType) -> Self {
        Question {
            name,
            rtype,
            rclass: RrClass::In,
        }
    }

    /// Convenience constructor for an A (IPv4 address) question.
    pub fn a(name: Name) -> Self {
        Question::new(name, RrType::A)
    }

    /// Convenience constructor for an AAAA (IPv6 address) question.
    pub fn aaaa(name: Name) -> Self {
        Question::new(name, RrType::Aaaa)
    }

    /// Encodes the question into the writer.
    pub fn encode(&self, w: &mut WireWriter) -> WireResult<()> {
        w.put_name(&self.name)?;
        w.put_u16(self.rtype.code());
        w.put_u16(self.rclass.code());
        Ok(())
    }

    /// Decodes a question from the reader.
    ///
    /// # Errors
    ///
    /// Returns an error when the input is truncated or the name malformed.
    pub fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(Question {
            name: r.read_name()?,
            rtype: RrType::from(r.read_u16()?),
            rclass: RrClass::from(r.read_u16()?),
        })
    }
}

impl fmt::Display for Question {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.name, self.rclass, self.rtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let q = Question::a("pool.ntp.org".parse().unwrap());
        let mut w = WireWriter::new();
        q.encode(&mut w).unwrap();
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(Question::decode(&mut r).unwrap(), q);
        assert!(r.is_at_end());
    }

    #[test]
    fn constructors_set_class_in() {
        let a = Question::a("x.example".parse().unwrap());
        let aaaa = Question::aaaa("x.example".parse().unwrap());
        assert_eq!(a.rclass, RrClass::In);
        assert_eq!(a.rtype, RrType::A);
        assert_eq!(aaaa.rtype, RrType::Aaaa);
    }

    #[test]
    fn display_format() {
        let q = Question::new("example.org".parse().unwrap(), RrType::Ns);
        assert_eq!(q.to_string(), "example.org. IN NS");
    }

    #[test]
    fn truncated_question_fails() {
        let name: Name = "example.org".parse().unwrap();
        let mut w = WireWriter::new();
        w.put_name(&name).unwrap();
        w.put_u8(0); // not enough octets for type + class
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert!(Question::decode(&mut r).is_err());
    }
}
