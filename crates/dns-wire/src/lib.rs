//! DNS wire format for the *Secure Consensus Generation with Distributed
//! DoH* reproduction.
//!
//! This crate implements the subset of the DNS protocol needed by the rest
//! of the system, entirely from scratch:
//!
//! * [`Name`] — domain names with RFC 1035 limits and case-insensitive
//!   comparison,
//! * [`Message`] — full messages with header, question/answer/authority/
//!   additional sections, name compression and EDNS(0),
//! * [`RData`] — typed rdata for A, AAAA, NS, CNAME, PTR, MX, TXT, SOA, SRV
//!   and OPT records (everything else round-trips as raw bytes),
//! * [`base64url`] — the unpadded base64url codec required by the DoH GET
//!   method (RFC 8484).
//!
//! # Quick example
//!
//! ```
//! use sdoh_dns_wire::{Message, MessageBuilder, RrType};
//!
//! # fn main() -> Result<(), sdoh_dns_wire::WireError> {
//! let query = Message::query(0x1234, "pool.ntp.org".parse()?, RrType::A);
//! let wire = query.encode()?;
//! let decoded = Message::decode(&wire)?;
//! assert_eq!(decoded.question().unwrap().name, "pool.ntp.org".parse()?);
//!
//! let response = MessageBuilder::response_to(&decoded)
//!     .authoritative(true)
//!     .answer_address(300, "203.0.113.1".parse().unwrap())
//!     .build();
//! assert_eq!(response.answer_addresses().len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod base64url;
mod edns;
mod error;
mod header;
mod message;
mod name;
mod question;
mod rdata;
mod record;
mod rrtype;
mod ttl;
mod wire;

pub use edns::{Edns, DEFAULT_PAYLOAD_SIZE};
pub use error::{WireError, WireResult};
pub use header::{Header, Opcode, Rcode};
pub use message::{addresses_of_type, Message, MessageBuilder, MAX_MESSAGE_SIZE};
pub use name::{Name, MAX_LABEL_LEN, MAX_NAME_LEN};
pub use question::Question;
pub use rdata::{EdnsOption, Mx, OptRdata, RData, Soa, Srv};
pub use record::Record;
pub use rrtype::{RrClass, RrType};
pub use ttl::Ttl;
pub use wire::{WireReader, WireWriter};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Name>();
        assert_send_sync::<Message>();
        assert_send_sync::<Record>();
        assert_send_sync::<RData>();
        assert_send_sync::<WireError>();
    }
}
