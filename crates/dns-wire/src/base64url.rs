//! Unpadded base64url encoding (RFC 4648 §5), as required for the DoH GET
//! `?dns=` query parameter (RFC 8484 §4.1).

use crate::error::{WireError, WireResult};

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

/// Encodes bytes as unpadded base64url.
///
/// # Examples
///
/// ```
/// use sdoh_dns_wire::base64url;
/// assert_eq!(base64url::encode(b""), "");
/// assert_eq!(base64url::encode(b"f"), "Zg");
/// assert_eq!(base64url::encode(b"fo"), "Zm8");
/// assert_eq!(base64url::encode(b"foo"), "Zm9v");
/// ```
// sdoh-lint: allow(no-panic, "every alphabet index is masked to 6 bits and ALPHABET has 64 entries")
// sdoh-lint: allow(no-narrowing-cast, "every cast value is masked to 6 bits first")
pub fn encode(input: &[u8]) -> String {
    let mut out = String::with_capacity(input.len().div_ceil(3) * 4);
    for chunk in input.chunks(3) {
        let b0 = u32::from(chunk.first().copied().unwrap_or(0));
        let b1 = u32::from(chunk.get(1).copied().unwrap_or(0));
        let b2 = u32::from(chunk.get(2).copied().unwrap_or(0));
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 0x3F] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 0x3F] as char);
        if chunk.len() > 1 {
            out.push(ALPHABET[(triple >> 6) as usize & 0x3F] as char);
        }
        if chunk.len() > 2 {
            out.push(ALPHABET[triple as usize & 0x3F] as char);
        }
    }
    out
}

fn decode_char(c: u8) -> Option<u32> {
    match c {
        b'A'..=b'Z' => Some(u32::from(c - b'A')),
        b'a'..=b'z' => Some(u32::from(c - b'a' + 26)),
        b'0'..=b'9' => Some(u32::from(c - b'0' + 52)),
        b'-' => Some(62),
        b'_' => Some(63),
        _ => None,
    }
}

/// Decodes unpadded base64url text.
///
/// Padding characters (`=`) are tolerated at the end of the input because
/// some DoH clients emit them despite RFC 8484 requiring unpadded encoding.
///
/// # Errors
///
/// Returns [`WireError::InvalidBase64`] for characters outside the base64url
/// alphabet or for an impossible input length (a single trailing character).
pub fn decode(input: &str) -> WireResult<Vec<u8>> {
    let trimmed = input.trim_end_matches('=');
    let bytes = trimmed.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3 + 3);
    for (ci, chunk) in bytes.chunks(4).enumerate() {
        let i = ci * 4;
        if chunk.len() == 1 {
            return Err(WireError::InvalidBase64(i));
        }
        let mut acc: u32 = 0;
        for (j, &c) in chunk.iter().enumerate() {
            let v = decode_char(c).ok_or(WireError::InvalidBase64(i + j))?;
            acc |= v << (18 - 6 * j);
        }
        // acc holds 24 bits; its big-endian octets are the decoded bytes.
        let [_, o0, o1, o2] = acc.to_be_bytes();
        out.push(o0);
        if chunk.len() > 2 {
            out.push(o1);
        }
        if chunk.len() > 3 {
            out.push(o2);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        let vectors: &[(&[u8], &str)] = &[
            (b"", ""),
            (b"f", "Zg"),
            (b"fo", "Zm8"),
            (b"foo", "Zm9v"),
            (b"foob", "Zm9vYg"),
            (b"fooba", "Zm9vYmE"),
            (b"foobar", "Zm9vYmFy"),
        ];
        for (plain, encoded) in vectors {
            assert_eq!(encode(plain), *encoded);
            assert_eq!(decode(encoded).unwrap(), plain.to_vec());
        }
    }

    #[test]
    fn url_safe_alphabet() {
        // 0xFB 0xFF encodes to characters involving '-' and '_' range.
        let data = [0xFBu8, 0xEF, 0xBE];
        let enc = encode(&data);
        assert!(!enc.contains('+'));
        assert!(!enc.contains('/'));
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn decode_tolerates_padding() {
        assert_eq!(decode("Zm8=").unwrap(), b"fo");
        assert_eq!(decode("Zg==").unwrap(), b"f");
    }

    #[test]
    fn decode_rejects_invalid_chars() {
        assert!(decode("Zm+v").is_err());
        assert!(decode("Zm/v").is_err());
        assert!(decode("Zm 9").is_err());
    }

    #[test]
    fn decode_rejects_impossible_length() {
        assert!(decode("A").is_err());
        assert!(decode("AAAAA").is_err());
    }

    #[test]
    fn roundtrip_binary_dns_message_like_data() {
        let data: Vec<u8> = (0u16..512).map(|i| (i % 251) as u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn rfc8484_example_query() {
        // RFC 8484 §4.1.1 example: query for www.example.com A record.
        let encoded = "AAABAAABAAAAAAAAA3d3dwdleGFtcGxlA2NvbQAAAQAB";
        let decoded = decode(encoded).unwrap();
        assert_eq!(decoded.len(), 33);
        assert_eq!(encode(&decoded), encoded);
    }
}
