//! Low-level wire readers and writers with RFC 1035 name compression.

use std::collections::HashMap;

use bytes::{BufMut, Bytes, BytesMut};

use crate::error::{WireError, WireResult};
use crate::name::Name;

/// Maximum number of compression pointers followed for a single name before
/// the decoder gives up and reports a loop.
const MAX_POINTER_HOPS: usize = 64;

/// Incremental encoder for DNS wire format with name compression.
///
/// The writer records the offset of every name it emits so that later
/// occurrences of the same suffix are replaced by a compression pointer
/// (RFC 1035 §4.1.4).
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: BytesMut,
    /// Map from lowercased dotted suffix to the offset of its first occurrence.
    compression: HashMap<String, u16>,
    /// When `false`, names are always written uncompressed (needed e.g. for
    /// computing canonical forms).
    compress: bool,
}

impl WireWriter {
    /// Creates a writer with name compression enabled.
    pub fn new() -> Self {
        WireWriter {
            buf: BytesMut::with_capacity(512),
            compression: HashMap::new(),
            compress: true,
        }
    }

    /// Creates a writer that never emits compression pointers.
    pub fn uncompressed() -> Self {
        WireWriter {
            compress: false,
            ..WireWriter::new()
        }
    }

    /// Current length of the encoded output in octets.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single octet.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a 16-bit value in network byte order.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16(v);
    }

    /// Appends a 32-bit value in network byte order.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32(v);
    }

    /// Appends raw octets.
    pub fn put_slice(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// Overwrites a previously written 16-bit value at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + 2` is beyond the current length; this is a
    /// programming error in the encoder, not an input error.
    // sdoh-lint: allow(no-panic, "asserted bounds; the documented # Panics contract of this encoder-internal patch")
    pub fn patch_u16(&mut self, offset: usize, v: u16) {
        assert!(offset + 2 <= self.buf.len(), "patch_u16 out of range");
        let [hi, lo] = v.to_be_bytes();
        self.buf[offset] = hi;
        self.buf[offset + 1] = lo;
    }

    /// Appends a character-string: one length octet followed by up to 255
    /// octets of data (RFC 1035 §3.3).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::CharacterStringTooLong`] when `s` exceeds 255
    /// octets.
    pub fn put_character_string(&mut self, s: &[u8]) -> WireResult<()> {
        let len = u8::try_from(s.len()).map_err(|_| WireError::CharacterStringTooLong(s.len()))?;
        self.buf.put_u8(len);
        self.buf.put_slice(s);
        Ok(())
    }

    /// Appends a domain name, emitting a compression pointer when an equal
    /// suffix has been written before.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::NameTooLong`] if the name exceeds wire limits.
    // sdoh-lint: allow(no-panic, "i ranges over 0..labels.len(), so both the slice and the index are in bounds")
    pub fn put_name(&mut self, name: &Name) -> WireResult<()> {
        if name.wire_len() > crate::name::MAX_NAME_LEN {
            return Err(WireError::NameTooLong(name.wire_len()));
        }
        let labels: Vec<&[u8]> = name.labels().collect();
        for i in 0..labels.len() {
            let suffix_key = suffix_key(&labels[i..]);
            if self.compress {
                if let Some(&offset) = self.compression.get(&suffix_key) {
                    // Pointers can only address the first 0x3FFF octets.
                    self.buf.put_u16(0xC000 | offset);
                    return Ok(());
                }
            }
            let here = self.buf.len();
            if self.compress {
                if let Ok(offset) = u16::try_from(here) {
                    if offset <= 0x3FFF {
                        self.compression.insert(suffix_key, offset);
                    }
                }
            }
            let label = labels[i];
            // Name labels are 63 octets at most by construction; a longer
            // label cannot round-trip, so refuse it rather than truncate.
            let len = u8::try_from(label.len()).map_err(|_| WireError::NameTooLong(label.len()))?;
            self.buf.put_u8(len);
            self.buf.put_slice(label);
        }
        self.buf.put_u8(0);
        Ok(())
    }

    /// Finishes encoding and returns the wire bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Returns a copy of the bytes written so far without consuming the writer.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

fn suffix_key(labels: &[&[u8]]) -> String {
    let mut key = String::new();
    for (i, l) in labels.iter().enumerate() {
        if i > 0 {
            key.push('.');
        }
        for &b in l.iter() {
            key.push((b as char).to_ascii_lowercase());
        }
    }
    key
}

/// Cursor-based decoder for DNS wire format.
///
/// The reader keeps the whole message around so that compression pointers can
/// be followed.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader over a full DNS message.
    pub fn new(data: &'a [u8]) -> Self {
        WireReader { data, pos: 0 }
    }

    /// Current cursor position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Number of bytes remaining after the cursor.
    pub fn remaining(&self) -> usize {
        self.data.len().saturating_sub(self.pos)
    }

    /// Returns `true` when the cursor has reached the end of the input.
    pub fn is_at_end(&self) -> bool {
        self.remaining() == 0
    }

    /// Moves the cursor to an absolute offset.
    ///
    /// # Errors
    ///
    /// Returns an error if `offset` is beyond the end of the message.
    pub fn seek(&mut self, offset: usize) -> WireResult<()> {
        if offset > self.data.len() {
            return Err(WireError::BadCompressionPointer(offset));
        }
        self.pos = offset;
        Ok(())
    }

    /// Reads one octet.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] when the input is exhausted.
    pub fn read_u8(&mut self) -> WireResult<u8> {
        let v = *self
            .data
            .get(self.pos)
            .ok_or(WireError::UnexpectedEof { expected: "u8" })?;
        self.pos += 1;
        Ok(v)
    }

    /// Reads a 16-bit value in network byte order.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] when fewer than two octets remain.
    pub fn read_u16(&mut self) -> WireResult<u16> {
        let bytes = self
            .data
            .get(self.pos..self.pos + 2)
            .and_then(|s| <[u8; 2]>::try_from(s).ok())
            .ok_or(WireError::UnexpectedEof { expected: "u16" })?;
        self.pos += 2;
        Ok(u16::from_be_bytes(bytes))
    }

    /// Reads a 32-bit value in network byte order.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] when fewer than four octets remain.
    pub fn read_u32(&mut self) -> WireResult<u32> {
        let bytes = self
            .data
            .get(self.pos..self.pos + 4)
            .and_then(|s| <[u8; 4]>::try_from(s).ok())
            .ok_or(WireError::UnexpectedEof { expected: "u32" })?;
        self.pos += 4;
        Ok(u32::from_be_bytes(bytes))
    }

    /// Reads exactly `len` octets.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] when fewer than `len` octets remain.
    pub fn read_bytes(&mut self, len: usize) -> WireResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(len)
            .ok_or(WireError::UnexpectedEof { expected: "bytes" })?;
        let out = self
            .data
            .get(self.pos..end)
            .ok_or(WireError::UnexpectedEof { expected: "bytes" })?;
        self.pos = end;
        Ok(out)
    }

    /// Reads a character-string (length octet followed by data).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if the declared length overruns
    /// the input.
    pub fn read_character_string(&mut self) -> WireResult<Vec<u8>> {
        let len = usize::from(self.read_u8()?);
        Ok(self.read_bytes(len)?.to_vec())
    }

    /// Reads a (possibly compressed) domain name.
    ///
    /// # Errors
    ///
    /// Returns an error for truncated names, invalid pointers or pointer loops.
    pub fn read_name(&mut self) -> WireResult<Name> {
        let mut labels: Vec<Vec<u8>> = Vec::new();
        let mut hops = 0usize;
        let mut pos = self.pos;
        let mut followed_pointer = false;
        let mut end_pos = self.pos;

        loop {
            let Some(&len) = self.data.get(pos) else {
                return Err(WireError::UnexpectedEof { expected: "name" });
            };
            match len {
                0 => {
                    pos += 1;
                    if !followed_pointer {
                        end_pos = pos;
                    }
                    break;
                }
                l if l & 0xC0 == 0xC0 => {
                    let Some(&low) = self.data.get(pos + 1) else {
                        return Err(WireError::UnexpectedEof {
                            expected: "compression pointer",
                        });
                    };
                    let target = (usize::from(l & 0x3F) << 8) | usize::from(low);
                    if !followed_pointer {
                        end_pos = pos + 2;
                        followed_pointer = true;
                    }
                    if target >= pos {
                        return Err(WireError::BadCompressionPointer(target));
                    }
                    hops += 1;
                    if hops > MAX_POINTER_HOPS {
                        return Err(WireError::CompressionLoop);
                    }
                    pos = target;
                }
                l if l & 0xC0 != 0 => {
                    // 0x40 / 0x80 label types are not supported.
                    return Err(WireError::InvalidOpt("unsupported label type"));
                }
                l => {
                    let l = usize::from(l);
                    let Some(label) = self.data.get(pos + 1..pos + 1 + l) else {
                        return Err(WireError::UnexpectedEof { expected: "label" });
                    };
                    labels.push(label.to_vec());
                    pos += 1 + l;
                    if !followed_pointer {
                        end_pos = pos;
                    }
                }
            }
        }

        self.pos = end_pos;
        if labels.is_empty() {
            return Ok(Name::root());
        }
        Name::from_labels(labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let mut w = WireWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEADBEEF);
        w.put_slice(b"xyz");
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_u8().unwrap(), 0xAB);
        assert_eq!(r.read_u16().unwrap(), 0x1234);
        assert_eq!(r.read_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_bytes(3).unwrap(), b"xyz");
        assert!(r.is_at_end());
    }

    #[test]
    fn eof_errors() {
        let mut r = WireReader::new(&[0x01]);
        assert!(r.read_u16().is_err());
        assert_eq!(r.read_u8().unwrap(), 1);
        assert!(r.read_u8().is_err());
        assert!(r.read_u32().is_err());
        assert!(r.read_bytes(1).is_err());
    }

    #[test]
    fn name_roundtrip_uncompressed() {
        let name: Name = "www.example.org".parse().unwrap();
        let mut w = WireWriter::uncompressed();
        w.put_name(&name).unwrap();
        let bytes = w.finish();
        assert_eq!(bytes.len(), name.wire_len());
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_name().unwrap(), name);
        assert!(r.is_at_end());
    }

    #[test]
    fn root_name_roundtrip() {
        let mut w = WireWriter::new();
        w.put_name(&Name::root()).unwrap();
        let bytes = w.finish();
        assert_eq!(&bytes[..], &[0u8]);
        let mut r = WireReader::new(&bytes);
        assert!(r.read_name().unwrap().is_root());
    }

    #[test]
    fn compression_reuses_suffix() {
        let a: Name = "a.example.org".parse().unwrap();
        let b: Name = "b.example.org".parse().unwrap();
        let mut w = WireWriter::new();
        w.put_name(&a).unwrap();
        let after_first = w.len();
        w.put_name(&b).unwrap();
        let bytes = w.finish();
        // Second name: 1 + 1 ("b") + 2 (pointer) = 4 octets.
        assert_eq!(bytes.len() - after_first, 4);
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_name().unwrap(), a);
        assert_eq!(r.read_name().unwrap(), b);
    }

    #[test]
    fn compression_is_case_insensitive() {
        let a: Name = "host.EXAMPLE.org".parse().unwrap();
        let b: Name = "other.example.ORG".parse().unwrap();
        let mut w = WireWriter::new();
        w.put_name(&a).unwrap();
        w.put_name(&b).unwrap();
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_name().unwrap(), a);
        assert_eq!(r.read_name().unwrap(), b);
    }

    #[test]
    fn identical_name_compresses_to_pointer_only() {
        let a: Name = "ntp.example.org".parse().unwrap();
        let mut w = WireWriter::new();
        w.put_name(&a).unwrap();
        let first = w.len();
        w.put_name(&a).unwrap();
        assert_eq!(w.len() - first, 2);
    }

    #[test]
    fn forward_pointer_rejected() {
        // Pointer at offset 0 pointing to offset 4 (>= its own position).
        let data = [0xC0, 0x04, 0x00, 0x00, 0x00];
        let mut r = WireReader::new(&data);
        assert!(matches!(
            r.read_name(),
            Err(WireError::BadCompressionPointer(4))
        ));
    }

    #[test]
    fn truncated_label_rejected() {
        let data = [0x05, b'a', b'b'];
        let mut r = WireReader::new(&data);
        assert!(r.read_name().is_err());
    }

    #[test]
    fn truncated_pointer_rejected() {
        let data = [0x01, b'a', 0xC0];
        let mut r = WireReader::new(&data);
        assert!(r.read_name().is_err());
    }

    #[test]
    fn unsupported_label_type_rejected() {
        let data = [0x41, b'a', 0x00];
        let mut r = WireReader::new(&data);
        assert!(r.read_name().is_err());
    }

    #[test]
    fn character_string_roundtrip() {
        let mut w = WireWriter::new();
        w.put_character_string(b"hello world").unwrap();
        assert!(w.put_character_string(&[0u8; 256]).is_err());
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_character_string().unwrap(), b"hello world");
    }

    #[test]
    fn patch_u16_overwrites() {
        let mut w = WireWriter::new();
        w.put_u16(0);
        w.put_u16(0xFFFF);
        w.patch_u16(0, 0x0102);
        let bytes = w.finish();
        assert_eq!(&bytes[..], &[0x01, 0x02, 0xFF, 0xFF]);
    }

    #[test]
    fn reader_seek_and_position() {
        let data = [1u8, 2, 3, 4];
        let mut r = WireReader::new(&data);
        r.read_u16().unwrap();
        assert_eq!(r.position(), 2);
        r.seek(1).unwrap();
        assert_eq!(r.read_u8().unwrap(), 2);
        assert!(r.seek(10).is_err());
    }
}
