//! DNS message header: identifier, flags, opcode, response code and counts.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::WireResult;
use crate::wire::{WireReader, WireWriter};

/// DNS OPCODE values (RFC 1035 §4.1.1, RFC 2136).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Opcode {
    /// A standard query.
    #[default]
    Query,
    /// An inverse query (obsolete).
    IQuery,
    /// A server status request.
    Status,
    /// Zone change notification (RFC 1996).
    Notify,
    /// Dynamic update (RFC 2136).
    Update,
    /// An opcode without a named variant.
    Unknown(u8),
}

impl Opcode {
    /// Numeric code of this opcode (0..=15).
    pub fn code(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::IQuery => 1,
            Opcode::Status => 2,
            Opcode::Notify => 4,
            Opcode::Update => 5,
            Opcode::Unknown(c) => c & 0x0F,
        }
    }
}

impl From<u8> for Opcode {
    fn from(code: u8) -> Self {
        match code & 0x0F {
            0 => Opcode::Query,
            1 => Opcode::IQuery,
            2 => Opcode::Status,
            4 => Opcode::Notify,
            5 => Opcode::Update,
            other => Opcode::Unknown(other),
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Opcode::Query => write!(f, "QUERY"),
            Opcode::IQuery => write!(f, "IQUERY"),
            Opcode::Status => write!(f, "STATUS"),
            Opcode::Notify => write!(f, "NOTIFY"),
            Opcode::Update => write!(f, "UPDATE"),
            Opcode::Unknown(c) => write!(f, "OPCODE{c}"),
        }
    }
}

/// DNS response codes (RCODE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Rcode {
    /// No error condition.
    #[default]
    NoError,
    /// The server was unable to interpret the query.
    FormErr,
    /// The server encountered an internal failure.
    ServFail,
    /// The queried domain name does not exist.
    NxDomain,
    /// The server does not support the requested kind of query.
    NotImp,
    /// The server refuses to answer for policy reasons.
    Refused,
    /// An rcode without a named variant (including extended rcodes).
    Unknown(u16),
}

impl Rcode {
    /// Numeric code of this rcode.
    pub fn code(self) -> u16 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Unknown(c) => c,
        }
    }

    /// The low four bits carried in the message header.
    pub fn low_bits(self) -> u8 {
        (self.code() & 0x0F) as u8 // sdoh-lint: allow(no-narrowing-cast, "masked to the low four bits before the cast")
    }

    /// Returns `true` when this rcode indicates success.
    pub fn is_success(self) -> bool {
        self == Rcode::NoError
    }
}

impl From<u16> for Rcode {
    fn from(code: u16) -> Self {
        match code {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Unknown(other),
        }
    }
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rcode::NoError => write!(f, "NOERROR"),
            Rcode::FormErr => write!(f, "FORMERR"),
            Rcode::ServFail => write!(f, "SERVFAIL"),
            Rcode::NxDomain => write!(f, "NXDOMAIN"),
            Rcode::NotImp => write!(f, "NOTIMP"),
            Rcode::Refused => write!(f, "REFUSED"),
            Rcode::Unknown(c) => write!(f, "RCODE{c}"),
        }
    }
}

/// The fixed 12-octet DNS message header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Header {
    /// Query identifier used to match responses to queries.
    pub id: u16,
    /// `true` in responses, `false` in queries (QR bit).
    pub response: bool,
    /// Kind of query.
    pub opcode: Opcode,
    /// Authoritative answer (AA bit).
    pub authoritative: bool,
    /// Truncation (TC bit).
    pub truncated: bool,
    /// Recursion desired (RD bit).
    pub recursion_desired: bool,
    /// Recursion available (RA bit).
    pub recursion_available: bool,
    /// Authentic data (AD bit, RFC 4035).
    pub authentic_data: bool,
    /// Checking disabled (CD bit, RFC 4035).
    pub checking_disabled: bool,
    /// Response code (low four bits only; extended rcodes live in OPT).
    pub rcode: Rcode,
    /// Number of entries in the question section.
    pub question_count: u16,
    /// Number of records in the answer section.
    pub answer_count: u16,
    /// Number of records in the authority section.
    pub authority_count: u16,
    /// Number of records in the additional section.
    pub additional_count: u16,
}

impl Header {
    /// Creates a query header with recursion desired, as a stub resolver
    /// would send it.
    pub fn query(id: u16) -> Self {
        Header {
            id,
            response: false,
            recursion_desired: true,
            ..Header::default()
        }
    }

    /// Creates a response header mirroring the identifier, opcode and RD bit
    /// of a query header.
    pub fn response_to(query: &Header) -> Self {
        Header {
            id: query.id,
            response: true,
            opcode: query.opcode,
            recursion_desired: query.recursion_desired,
            ..Header::default()
        }
    }

    /// Encodes the header into the writer.
    pub fn encode(&self, w: &mut WireWriter) -> WireResult<()> {
        w.put_u16(self.id);
        let mut flags: u16 = 0;
        if self.response {
            flags |= 1 << 15;
        }
        flags |= (u16::from(self.opcode.code()) & 0x0F) << 11;
        if self.authoritative {
            flags |= 1 << 10;
        }
        if self.truncated {
            flags |= 1 << 9;
        }
        if self.recursion_desired {
            flags |= 1 << 8;
        }
        if self.recursion_available {
            flags |= 1 << 7;
        }
        if self.authentic_data {
            flags |= 1 << 5;
        }
        if self.checking_disabled {
            flags |= 1 << 4;
        }
        flags |= u16::from(self.rcode.low_bits());
        w.put_u16(flags);
        w.put_u16(self.question_count);
        w.put_u16(self.answer_count);
        w.put_u16(self.authority_count);
        w.put_u16(self.additional_count);
        Ok(())
    }

    /// Decodes a header from the reader.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than 12 octets remain.
    pub fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let id = r.read_u16()?;
        let flags = r.read_u16()?;
        let header = Header {
            id,
            response: flags & (1 << 15) != 0,
            opcode: Opcode::from(((flags >> 11) & 0x0F) as u8), // sdoh-lint: allow(no-narrowing-cast, "masked to four bits before the cast")
            authoritative: flags & (1 << 10) != 0,
            truncated: flags & (1 << 9) != 0,
            recursion_desired: flags & (1 << 8) != 0,
            recursion_available: flags & (1 << 7) != 0,
            authentic_data: flags & (1 << 5) != 0,
            checking_disabled: flags & (1 << 4) != 0,
            rcode: Rcode::from(flags & 0x0F),
            question_count: r.read_u16()?,
            answer_count: r.read_u16()?,
            authority_count: r.read_u16()?,
            additional_count: r.read_u16()?,
        };
        Ok(header)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(h: &Header) -> Header {
        let mut w = WireWriter::new();
        h.encode(&mut w).unwrap();
        let bytes = w.finish();
        assert_eq!(bytes.len(), 12);
        let mut r = WireReader::new(&bytes);
        Header::decode(&mut r).unwrap()
    }

    #[test]
    fn default_header_roundtrip() {
        let h = Header::default();
        assert_eq!(roundtrip(&h), h);
    }

    #[test]
    fn query_header_sets_rd() {
        let h = Header::query(0xBEEF);
        assert!(h.recursion_desired);
        assert!(!h.response);
        assert_eq!(h.id, 0xBEEF);
        assert_eq!(roundtrip(&h), h);
    }

    #[test]
    fn response_mirrors_query() {
        let q = Header::query(42);
        let r = Header::response_to(&q);
        assert_eq!(r.id, 42);
        assert!(r.response);
        assert!(r.recursion_desired);
        assert_eq!(r.opcode, Opcode::Query);
    }

    #[test]
    fn all_flags_roundtrip() {
        let h = Header {
            id: 0xFFFF,
            response: true,
            opcode: Opcode::Update,
            authoritative: true,
            truncated: true,
            recursion_desired: true,
            recursion_available: true,
            authentic_data: true,
            checking_disabled: true,
            rcode: Rcode::Refused,
            question_count: 1,
            answer_count: 2,
            authority_count: 3,
            additional_count: 4,
        };
        assert_eq!(roundtrip(&h), h);
    }

    #[test]
    fn opcode_roundtrip() {
        for code in 0u8..16 {
            assert_eq!(Opcode::from(code).code(), code);
        }
    }

    #[test]
    fn rcode_roundtrip_and_success() {
        for code in [0u16, 1, 2, 3, 4, 5, 16, 23] {
            assert_eq!(Rcode::from(code).code(), code);
        }
        assert!(Rcode::NoError.is_success());
        assert!(!Rcode::ServFail.is_success());
    }

    #[test]
    fn rcode_low_bits_truncate_extended() {
        assert_eq!(Rcode::Unknown(16).low_bits(), 0);
        assert_eq!(Rcode::Unknown(23).low_bits(), 7);
    }

    #[test]
    fn truncated_header_decode_fails() {
        let mut r = WireReader::new(&[0u8; 6]);
        assert!(Header::decode(&mut r).is_err());
    }

    #[test]
    fn display_mnemonics() {
        assert_eq!(Rcode::NxDomain.to_string(), "NXDOMAIN");
        assert_eq!(Opcode::Query.to_string(), "QUERY");
        assert_eq!(Rcode::Unknown(99).to_string(), "RCODE99");
    }
}
