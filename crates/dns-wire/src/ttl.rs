//! The shared TTL type.
//!
//! DNS speaks about record lifetimes in whole seconds carried as a `u32`
//! on the wire, while the simulator's caches reason in [`Duration`]s of
//! virtual time. Before [`Ttl`] existed every component picked one of the
//! two representations ad hoc (`SecurePoolResolver` stored a bare `u32`,
//! `DnsCache` a `Duration`), and conversions were scattered and lossy.
//! [`Ttl`] is the one type both sides share: constructed from either
//! representation, convertible to either, always saturating instead of
//! overflowing.

use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// A DNS time-to-live: a whole number of seconds as carried in a resource
/// record, convertible losslessly to the [`Duration`]s the caches use.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ttl(u32);

impl Ttl {
    /// The zero TTL ("do not cache").
    pub const ZERO: Ttl = Ttl(0);

    /// Creates a TTL of `secs` seconds.
    pub const fn from_secs(secs: u32) -> Self {
        Ttl(secs)
    }

    /// Creates a TTL from a duration, rounding down to whole seconds and
    /// saturating at the wire format's `u32` range.
    pub fn from_duration(duration: Duration) -> Self {
        Ttl(u32::try_from(duration.as_secs()).unwrap_or(u32::MAX))
    }

    /// The TTL in seconds, as carried in a resource record.
    pub const fn as_secs(self) -> u32 {
        self.0
    }

    /// The TTL as a duration of (virtual) time.
    pub const fn as_duration(self) -> Duration {
        Duration::from_secs(self.0 as u64) // sdoh-lint: allow(no-narrowing-cast, "u32 to u64 widening in a const fn, which cannot call From")
    }

    /// Returns `true` for the zero TTL.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The smaller of two TTLs (how caches combine the TTLs of a record
    /// set: the set lives as long as its shortest-lived record).
    pub fn min(self, other: Ttl) -> Ttl {
        Ttl(self.0.min(other.0))
    }
}

impl From<u32> for Ttl {
    fn from(secs: u32) -> Self {
        Ttl::from_secs(secs)
    }
}

impl From<Duration> for Ttl {
    fn from(duration: Duration) -> Self {
        Ttl::from_duration(duration)
    }
}

impl From<Ttl> for Duration {
    fn from(ttl: Ttl) -> Self {
        ttl.as_duration()
    }
}

impl fmt::Display for Ttl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_roundtrip_through_duration() {
        let ttl = Ttl::from_secs(300);
        assert_eq!(ttl.as_secs(), 300);
        assert_eq!(ttl.as_duration(), Duration::from_secs(300));
        assert_eq!(Ttl::from_duration(ttl.as_duration()), ttl);
        assert_eq!(Duration::from(ttl), Duration::from_secs(300));
    }

    #[test]
    fn from_duration_rounds_down_and_saturates() {
        assert_eq!(
            Ttl::from_duration(Duration::from_millis(2_900)).as_secs(),
            2
        );
        let huge = Duration::from_secs(u64::from(u32::MAX) + 10);
        assert_eq!(Ttl::from_duration(huge).as_secs(), u32::MAX);
    }

    #[test]
    fn zero_and_min() {
        assert!(Ttl::ZERO.is_zero());
        assert!(!Ttl::from_secs(1).is_zero());
        assert_eq!(
            Ttl::from_secs(60).min(Ttl::from_secs(30)),
            Ttl::from_secs(30)
        );
    }

    #[test]
    fn conversions_and_display() {
        let ttl: Ttl = 120u32.into();
        assert_eq!(ttl, Ttl::from_secs(120));
        let ttl: Ttl = Duration::from_secs(45).into();
        assert_eq!(ttl.to_string(), "45s");
        assert!(Ttl::from_secs(10) < Ttl::from_secs(20));
    }
}
