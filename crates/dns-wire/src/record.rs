//! Resource records: a name, type, class, TTL and rdata.

use std::fmt;
use std::net::IpAddr;

use serde::{Deserialize, Serialize};

use crate::error::{WireError, WireResult};
use crate::name::Name;
use crate::rdata::RData;
use crate::rrtype::{RrClass, RrType};
use crate::wire::{WireReader, WireWriter};

/// A DNS resource record.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Record {
    /// Owner name of the record.
    pub name: Name,
    /// Class of the record. For OPT pseudo-records this field carries the
    /// requestor's UDP payload size instead.
    pub rclass: RrClass,
    /// Time to live in seconds. For OPT pseudo-records this field carries
    /// the extended rcode and flags instead.
    pub ttl: u32,
    /// Decoded record data.
    pub rdata: RData,
}

impl Record {
    /// Creates a record in the IN class.
    pub fn new(name: Name, ttl: u32, rdata: RData) -> Self {
        Record {
            name,
            rclass: RrClass::In,
            ttl,
            rdata,
        }
    }

    /// Creates an address record (A or AAAA depending on the address family).
    pub fn address(name: Name, ttl: u32, addr: IpAddr) -> Self {
        Record::new(name, ttl, RData::from_ip(addr))
    }

    /// The record type, derived from the rdata.
    pub fn rtype(&self) -> RrType {
        self.rdata.rtype()
    }

    /// Returns the IP address carried by this record, if it is an address
    /// record.
    pub fn ip_addr(&self) -> Option<IpAddr> {
        self.rdata.ip_addr()
    }

    /// Encodes the record including the RDLENGTH field.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::RdataTooLong`] when the rdata exceeds 65535
    /// octets.
    pub fn encode(&self, w: &mut WireWriter) -> WireResult<()> {
        w.put_name(&self.name)?;
        w.put_u16(self.rtype().code());
        w.put_u16(self.rclass.code());
        w.put_u32(self.ttl);
        let len_offset = w.len();
        w.put_u16(0); // placeholder for RDLENGTH
        let rdata_start = w.len();
        self.rdata.encode(w)?;
        let rdata_len = w.len() - rdata_start;
        let encoded_len =
            u16::try_from(rdata_len).map_err(|_| WireError::RdataTooLong(rdata_len))?;
        w.patch_u16(len_offset, encoded_len);
        Ok(())
    }

    /// Decodes one record from the reader.
    ///
    /// # Errors
    ///
    /// Returns an error when the record is truncated or its rdata is
    /// malformed.
    pub fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let name = r.read_name()?;
        let rtype = RrType::from(r.read_u16()?);
        let rclass = RrClass::from(r.read_u16()?);
        let ttl = r.read_u32()?;
        let rdlength = usize::from(r.read_u16()?);
        if r.remaining() < rdlength {
            return Err(WireError::UnexpectedEof { expected: "rdata" });
        }
        let rdata = RData::decode(r, rtype, rdlength)?;
        Ok(Record {
            name,
            rclass,
            ttl,
            rdata,
        })
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} {}",
            self.name,
            self.ttl,
            self.rclass,
            self.rtype(),
            self.rdata
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn roundtrip(rec: &Record) -> Record {
        let mut w = WireWriter::new();
        rec.encode(&mut w).unwrap();
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        let decoded = Record::decode(&mut r).unwrap();
        assert!(r.is_at_end());
        decoded
    }

    #[test]
    fn a_record_roundtrip() {
        let rec = Record::new(
            "a.pool.ntp.org".parse().unwrap(),
            3600,
            RData::A(Ipv4Addr::new(203, 0, 113, 7)),
        );
        assert_eq!(roundtrip(&rec), rec);
        assert_eq!(rec.rtype(), RrType::A);
        assert_eq!(
            rec.ip_addr(),
            Some(IpAddr::V4(Ipv4Addr::new(203, 0, 113, 7)))
        );
    }

    #[test]
    fn aaaa_record_via_address_ctor() {
        let addr: Ipv6Addr = "2001:db8::42".parse().unwrap();
        let rec = Record::address("b.pool.ntp.org".parse().unwrap(), 60, IpAddr::V6(addr));
        assert_eq!(rec.rtype(), RrType::Aaaa);
        assert_eq!(roundtrip(&rec), rec);
    }

    #[test]
    fn ns_record_roundtrip_with_compression_context() {
        let rec = Record::new(
            "ntpns.org".parse().unwrap(),
            86400,
            RData::Ns("c.ntpns.org".parse().unwrap()),
        );
        assert_eq!(roundtrip(&rec), rec);
    }

    #[test]
    fn display_contains_all_fields() {
        let rec = Record::new(
            "x.example".parse().unwrap(),
            300,
            RData::A(Ipv4Addr::LOCALHOST),
        );
        let s = rec.to_string();
        assert!(s.contains("x.example."));
        assert!(s.contains("300"));
        assert!(s.contains("A"));
        assert!(s.contains("127.0.0.1"));
    }

    #[test]
    fn rdlength_declared_larger_than_remaining_fails() {
        let rec = Record::new(
            "x.example".parse().unwrap(),
            300,
            RData::A(Ipv4Addr::LOCALHOST),
        );
        let mut w = WireWriter::new();
        rec.encode(&mut w).unwrap();
        let mut bytes = w.finish().to_vec();
        let len = bytes.len();
        bytes.truncate(len - 2); // chop off part of the rdata
        let mut r = WireReader::new(&bytes);
        assert!(Record::decode(&mut r).is_err());
    }

    #[test]
    fn txt_record_roundtrip() {
        let rec = Record::new(
            "info.example".parse().unwrap(),
            120,
            RData::Txt(vec![b"secure pool generation".to_vec()]),
        );
        assert_eq!(roundtrip(&rec), rec);
    }
}
