//! Error types for DNS wire-format encoding and decoding.

use std::error::Error;
use std::fmt;

/// Errors produced while encoding or decoding DNS wire format data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A domain-name label exceeded 63 octets.
    LabelTooLong(usize),
    /// A domain name exceeded 255 octets on the wire.
    NameTooLong(usize),
    /// A label contained a character that is not permitted in presentation format.
    InvalidLabelCharacter(char),
    /// The input buffer ended before a complete item could be decoded.
    UnexpectedEof {
        /// What was being decoded when the buffer ran out.
        expected: &'static str,
    },
    /// A compression pointer pointed forward or formed a loop.
    BadCompressionPointer(usize),
    /// Too many compression pointers were followed for a single name.
    CompressionLoop,
    /// The rdata length field did not match the decoded rdata.
    RdataLengthMismatch {
        /// Length declared in the RDLENGTH field.
        declared: usize,
        /// Length actually consumed by the decoder.
        consumed: usize,
    },
    /// An rdata payload was larger than 65535 octets and cannot be encoded.
    RdataTooLong(usize),
    /// A message exceeded the 65535-octet limit.
    MessageTooLong(usize),
    /// A character-string (e.g. in TXT rdata) exceeded 255 octets.
    CharacterStringTooLong(usize),
    /// Trailing bytes remained after the message was fully decoded.
    TrailingBytes(usize),
    /// The label was empty where a non-empty label was required.
    EmptyLabel,
    /// Invalid base64url input for the DoH GET encoding.
    InvalidBase64(usize),
    /// An EDNS OPT record was malformed.
    InvalidOpt(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::LabelTooLong(len) => {
                write!(f, "label is {len} octets, maximum is 63")
            }
            WireError::NameTooLong(len) => {
                write!(f, "name is {len} octets on the wire, maximum is 255")
            }
            WireError::InvalidLabelCharacter(c) => {
                write!(f, "invalid character {c:?} in domain name label")
            }
            WireError::UnexpectedEof { expected } => {
                write!(f, "unexpected end of input while decoding {expected}")
            }
            WireError::BadCompressionPointer(off) => {
                write!(f, "compression pointer to invalid offset {off}")
            }
            WireError::CompressionLoop => write!(f, "compression pointer loop detected"),
            WireError::RdataLengthMismatch { declared, consumed } => write!(
                f,
                "rdata length mismatch: declared {declared}, consumed {consumed}"
            ),
            WireError::RdataTooLong(len) => {
                write!(f, "rdata is {len} octets, maximum is 65535")
            }
            WireError::MessageTooLong(len) => {
                write!(f, "message is {len} octets, maximum is 65535")
            }
            WireError::CharacterStringTooLong(len) => {
                write!(f, "character string is {len} octets, maximum is 255")
            }
            WireError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after end of message")
            }
            WireError::EmptyLabel => write!(f, "empty label inside a domain name"),
            WireError::InvalidBase64(pos) => {
                write!(f, "invalid base64url input at position {pos}")
            }
            WireError::InvalidOpt(what) => write!(f, "malformed OPT record: {what}"),
        }
    }
}

impl Error for WireError {}

/// Convenience alias used throughout the crate.
pub type WireResult<T> = Result<T, WireError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_ish() {
        let cases: Vec<WireError> = vec![
            WireError::LabelTooLong(70),
            WireError::NameTooLong(300),
            WireError::InvalidLabelCharacter(' '),
            WireError::UnexpectedEof { expected: "header" },
            WireError::BadCompressionPointer(9999),
            WireError::CompressionLoop,
            WireError::RdataLengthMismatch {
                declared: 4,
                consumed: 6,
            },
            WireError::RdataTooLong(70000),
            WireError::MessageTooLong(70000),
            WireError::CharacterStringTooLong(300),
            WireError::TrailingBytes(3),
            WireError::EmptyLabel,
            WireError::InvalidBase64(2),
            WireError::InvalidOpt("bad option length"),
        ];
        for c in cases {
            let s = c.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(WireError::CompressionLoop);
        assert!(e.source().is_none());
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(WireError::EmptyLabel, WireError::EmptyLabel);
        assert_ne!(WireError::EmptyLabel, WireError::CompressionLoop);
    }
}
