//! EDNS(0) support (RFC 6891): the OPT pseudo-record viewed as a typed
//! structure instead of a raw [`Record`].

use serde::{Deserialize, Serialize};

use crate::name::Name;
use crate::rdata::{EdnsOption, OptRdata, RData};
use crate::record::Record;
use crate::rrtype::{RrClass, RrType};

/// Default advertised UDP payload size for EDNS-aware endpoints.
pub const DEFAULT_PAYLOAD_SIZE: u16 = 1232;

/// Typed view of an OPT pseudo-record.
///
/// In an OPT record the CLASS field carries the requestor's maximum UDP
/// payload size and the TTL field carries the extended rcode, EDNS version
/// and flags; this type unpacks those fields.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edns {
    /// Maximum UDP payload size the sender can reassemble.
    pub payload_size: u16,
    /// Upper eight bits of the extended response code.
    pub extended_rcode: u8,
    /// EDNS version (0 for EDNS(0)).
    pub version: u8,
    /// DNSSEC OK flag (DO bit).
    pub dnssec_ok: bool,
    /// EDNS options carried in the rdata.
    pub options: Vec<EdnsOption>,
}

impl Default for Edns {
    fn default() -> Self {
        Edns {
            payload_size: DEFAULT_PAYLOAD_SIZE,
            extended_rcode: 0,
            version: 0,
            dnssec_ok: false,
            options: Vec::new(),
        }
    }
}

impl Edns {
    /// Creates a default EDNS(0) structure with the given payload size.
    pub fn with_payload_size(payload_size: u16) -> Self {
        Edns {
            payload_size,
            ..Edns::default()
        }
    }

    /// Adds an option, returning `self` for chaining.
    pub fn with_option(mut self, option: EdnsOption) -> Self {
        self.options.push(option);
        self
    }

    /// Converts this EDNS structure into an OPT [`Record`] suitable for the
    /// additional section.
    pub fn to_record(&self) -> Record {
        let ttl = (u32::from(self.extended_rcode) << 24)
            | (u32::from(self.version) << 16)
            | if self.dnssec_ok { 1 << 15 } else { 0 };
        Record {
            name: Name::root(),
            rclass: RrClass::Unknown(self.payload_size),
            ttl,
            rdata: RData::Opt(OptRdata {
                options: self.options.clone(),
            }),
        }
    }

    /// Extracts an EDNS structure from an OPT record, returning `None` when
    /// the record is not an OPT record.
    pub fn from_record(record: &Record) -> Option<Edns> {
        if record.rtype() != RrType::Opt {
            return None;
        }
        let options = match &record.rdata {
            RData::Opt(opt) => opt.options.clone(),
            _ => Vec::new(),
        };
        Some(Edns {
            payload_size: record.rclass.code(),
            extended_rcode: (record.ttl >> 24) as u8, // sdoh-lint: allow(no-narrowing-cast, "the 24-bit shift leaves exactly the top byte")
            version: ((record.ttl >> 16) & 0xFF) as u8, // sdoh-lint: allow(no-narrowing-cast, "masked to 8 bits before the cast")
            dnssec_ok: record.ttl & (1 << 15) != 0,
            options,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_values() {
        let e = Edns::default();
        assert_eq!(e.payload_size, DEFAULT_PAYLOAD_SIZE);
        assert_eq!(e.version, 0);
        assert!(!e.dnssec_ok);
    }

    #[test]
    fn to_record_and_back() {
        let e = Edns {
            payload_size: 4096,
            extended_rcode: 1,
            version: 0,
            dnssec_ok: true,
            options: vec![EdnsOption::padding(8)],
        };
        let rec = e.to_record();
        assert_eq!(rec.rtype(), RrType::Opt);
        assert!(rec.name.is_root());
        let back = Edns::from_record(&rec).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn from_non_opt_record_is_none() {
        let rec = Record::new(
            "x.example".parse().unwrap(),
            60,
            RData::Txt(vec![b"not opt".to_vec()]),
        );
        assert!(Edns::from_record(&rec).is_none());
    }

    #[test]
    fn with_helpers_chain() {
        let e = Edns::with_payload_size(512).with_option(EdnsOption::new(10, vec![1]));
        assert_eq!(e.payload_size, 512);
        assert_eq!(e.options.len(), 1);
    }

    #[test]
    fn opt_record_wire_roundtrip() {
        use crate::wire::{WireReader, WireWriter};
        let e = Edns::with_payload_size(1400).with_option(EdnsOption::padding(12));
        let rec = e.to_record();
        let mut w = WireWriter::new();
        rec.encode(&mut w).unwrap();
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        let decoded = Record::decode(&mut r).unwrap();
        let back = Edns::from_record(&decoded).unwrap();
        assert_eq!(back, e);
    }
}
