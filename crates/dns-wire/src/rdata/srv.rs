//! SRV (service locator) rdata.

use serde::{Deserialize, Serialize};

use crate::error::{WireError, WireResult};
use crate::name::Name;
use crate::wire::{WireReader, WireWriter};

/// SRV rdata fields (RFC 2782).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Srv {
    /// Priority of this target (lower is preferred).
    pub priority: u16,
    /// Relative weight for targets with the same priority.
    pub weight: u16,
    /// Port on which the service is provided.
    pub port: u16,
    /// Host name of the target.
    pub target: Name,
}

impl Srv {
    /// Creates an SRV record.
    pub fn new(priority: u16, weight: u16, port: u16, target: Name) -> Self {
        Srv {
            priority,
            weight,
            port,
            target,
        }
    }

    /// Encodes SRV rdata. RFC 2782 forbids compressing the target name.
    pub fn encode(&self, w: &mut WireWriter) -> WireResult<()> {
        w.put_u16(self.priority);
        w.put_u16(self.weight);
        w.put_u16(self.port);
        // Emit the target without compression by writing labels manually.
        for label in self.target.labels() {
            let len =
                u8::try_from(label.len()).map_err(|_| WireError::LabelTooLong(label.len()))?;
            w.put_u8(len);
            w.put_slice(label);
        }
        w.put_u8(0);
        Ok(())
    }

    /// Decodes SRV rdata.
    ///
    /// # Errors
    ///
    /// Returns an error when the rdata is truncated.
    pub fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(Srv {
            priority: r.read_u16()?,
            weight: r.read_u16()?,
            port: r.read_u16()?,
            target: r.read_name()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let srv = Srv::new(10, 60, 443, "doh.resolver.example".parse().unwrap());
        let mut w = WireWriter::new();
        srv.encode(&mut w).unwrap();
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(Srv::decode(&mut r).unwrap(), srv);
    }

    #[test]
    fn target_is_not_compressed() {
        let srv = Srv::new(0, 0, 853, "a.example.org".parse().unwrap());
        let mut w = WireWriter::new();
        // Pre-populate the compression map with the same suffix.
        w.put_name(&"example.org".parse().unwrap()).unwrap();
        let before = w.len();
        srv.encode(&mut w).unwrap();
        let encoded_len = w.len() - before;
        // 6 fixed octets + uncompressed name (15 octets).
        assert_eq!(encoded_len, 6 + srv.target.wire_len());
    }
}
