//! EDNS(0) OPT pseudo-record rdata: a list of options (RFC 6891).

use serde::{Deserialize, Serialize};

use crate::error::{WireError, WireResult};
use crate::wire::{WireReader, WireWriter};

/// A single EDNS option (code, value) pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EdnsOption {
    /// Option code (e.g. 10 for COOKIE, 8 for client subnet).
    pub code: u16,
    /// Raw option value.
    pub value: Vec<u8>,
}

impl EdnsOption {
    /// Option code for DNS cookies (RFC 7873).
    pub const COOKIE: u16 = 10;
    /// Option code for the EDNS padding option (RFC 7830), relevant to DoH
    /// privacy.
    pub const PADDING: u16 = 12;

    /// Creates an option from a code and raw value.
    pub fn new(code: u16, value: Vec<u8>) -> Self {
        EdnsOption { code, value }
    }

    /// Creates a padding option with `len` zero octets (RFC 7830 / RFC 8467).
    pub fn padding(len: usize) -> Self {
        EdnsOption {
            code: Self::PADDING,
            value: vec![0u8; len],
        }
    }
}

/// Rdata of an OPT record: a sequence of EDNS options.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct OptRdata {
    /// Options carried in the record.
    pub options: Vec<EdnsOption>,
}

impl OptRdata {
    /// Creates empty OPT rdata.
    pub fn new() -> Self {
        OptRdata::default()
    }

    /// Encodes the options.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::RdataTooLong`] when an option value exceeds
    /// 65535 octets.
    pub fn encode(&self, w: &mut WireWriter) -> WireResult<()> {
        for opt in &self.options {
            let olen = u16::try_from(opt.value.len())
                .map_err(|_| WireError::RdataTooLong(opt.value.len()))?;
            w.put_u16(opt.code);
            w.put_u16(olen);
            w.put_slice(&opt.value);
        }
        Ok(())
    }

    /// Decodes options from exactly `len` octets.
    ///
    /// # Errors
    ///
    /// Returns an error when an option overruns the declared rdata length.
    pub fn decode(r: &mut WireReader<'_>, len: usize) -> WireResult<Self> {
        let end = r.position() + len;
        let mut options = Vec::new();
        while r.position() < end {
            if end - r.position() < 4 {
                return Err(WireError::InvalidOpt("truncated option header"));
            }
            let code = r.read_u16()?;
            let olen = usize::from(r.read_u16()?);
            if r.position() + olen > end {
                return Err(WireError::InvalidOpt("option value overruns rdata"));
            }
            let value = r.read_bytes(olen)?.to_vec();
            options.push(EdnsOption { code, value });
        }
        Ok(OptRdata { options })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_empty() {
        let opt = OptRdata::new();
        let mut w = WireWriter::new();
        opt.encode(&mut w).unwrap();
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(OptRdata::decode(&mut r, bytes.len()).unwrap(), opt);
    }

    #[test]
    fn roundtrip_options() {
        let opt = OptRdata {
            options: vec![
                EdnsOption::new(EdnsOption::COOKIE, vec![1, 2, 3, 4, 5, 6, 7, 8]),
                EdnsOption::padding(16),
            ],
        };
        let mut w = WireWriter::new();
        opt.encode(&mut w).unwrap();
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        let decoded = OptRdata::decode(&mut r, bytes.len()).unwrap();
        assert_eq!(decoded, opt);
        assert_eq!(decoded.options[1].value.len(), 16);
    }

    #[test]
    fn truncated_option_rejected() {
        let bytes = [0u8, 10, 0]; // 3 bytes: not even a full option header
        let mut r = WireReader::new(&bytes);
        assert!(OptRdata::decode(&mut r, 3).is_err());
    }

    #[test]
    fn overrunning_option_rejected() {
        // code=0, len=10 but only 2 bytes of value inside declared rdata
        let bytes = [0u8, 0, 0, 10, 1, 2];
        let mut r = WireReader::new(&bytes);
        assert!(OptRdata::decode(&mut r, 6).is_err());
    }
}
