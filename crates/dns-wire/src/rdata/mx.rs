//! MX (mail exchange) rdata.

use serde::{Deserialize, Serialize};

use crate::error::WireResult;
use crate::name::Name;
use crate::wire::{WireReader, WireWriter};

/// MX rdata fields (RFC 1035 §3.3.9).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mx {
    /// Preference value (lower is preferred).
    pub preference: u16,
    /// Host name of the mail exchange.
    pub exchange: Name,
}

impl Mx {
    /// Creates an MX record.
    pub fn new(preference: u16, exchange: Name) -> Self {
        Mx {
            preference,
            exchange,
        }
    }

    /// Encodes MX rdata.
    pub fn encode(&self, w: &mut WireWriter) -> WireResult<()> {
        w.put_u16(self.preference);
        w.put_name(&self.exchange)
    }

    /// Decodes MX rdata.
    ///
    /// # Errors
    ///
    /// Returns an error when the rdata is truncated.
    pub fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(Mx {
            preference: r.read_u16()?,
            exchange: r.read_name()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mx = Mx::new(10, "mail.example.org".parse().unwrap());
        let mut w = WireWriter::new();
        mx.encode(&mut w).unwrap();
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(Mx::decode(&mut r).unwrap(), mx);
    }
}
