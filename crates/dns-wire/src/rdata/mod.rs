//! Resource-record data (RDATA) representations.
//!
//! The [`RData`] enum carries the decoded form for the record types the
//! system needs; unrecognised types round-trip as raw octets.

use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use serde::{Deserialize, Serialize};

use crate::error::{WireError, WireResult};
use crate::name::Name;
use crate::rrtype::RrType;
use crate::wire::{WireReader, WireWriter};

mod mx;
mod opt;
mod soa;
mod srv;

pub use mx::Mx;
pub use opt::{EdnsOption, OptRdata};
pub use soa::Soa;
pub use srv::Srv;

/// Decoded resource-record data.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RData {
    /// IPv4 address (A record).
    A(Ipv4Addr),
    /// IPv6 address (AAAA record).
    Aaaa(Ipv6Addr),
    /// Authoritative name server (NS record).
    Ns(Name),
    /// Canonical name / alias (CNAME record).
    Cname(Name),
    /// Domain-name pointer (PTR record).
    Ptr(Name),
    /// Mail exchange (MX record).
    Mx(Mx),
    /// Text strings (TXT record).
    Txt(Vec<Vec<u8>>),
    /// Start of authority (SOA record).
    Soa(Soa),
    /// Service locator (SRV record).
    Srv(Srv),
    /// EDNS(0) options (OPT pseudo-record).
    Opt(OptRdata),
    /// A record type without a decoded representation.
    Unknown {
        /// Type code the data belongs to.
        rtype: u16,
        /// Raw rdata octets.
        data: Vec<u8>,
    },
}

impl RData {
    /// The record type this rdata belongs to.
    pub fn rtype(&self) -> RrType {
        match self {
            RData::A(_) => RrType::A,
            RData::Aaaa(_) => RrType::Aaaa,
            RData::Ns(_) => RrType::Ns,
            RData::Cname(_) => RrType::Cname,
            RData::Ptr(_) => RrType::Ptr,
            RData::Mx(_) => RrType::Mx,
            RData::Txt(_) => RrType::Txt,
            RData::Soa(_) => RrType::Soa,
            RData::Srv(_) => RrType::Srv,
            RData::Opt(_) => RrType::Opt,
            RData::Unknown { rtype, .. } => RrType::from(*rtype),
        }
    }

    /// Returns the carried IP address when this is an A or AAAA record.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdoh_dns_wire::RData;
    /// use std::net::{IpAddr, Ipv4Addr};
    ///
    /// let rdata = RData::A(Ipv4Addr::new(192, 0, 2, 1));
    /// assert_eq!(rdata.ip_addr(), Some(IpAddr::V4(Ipv4Addr::new(192, 0, 2, 1))));
    /// ```
    pub fn ip_addr(&self) -> Option<IpAddr> {
        match self {
            RData::A(a) => Some(IpAddr::V4(*a)),
            RData::Aaaa(a) => Some(IpAddr::V6(*a)),
            _ => None,
        }
    }

    /// Builds address rdata of the appropriate type from an [`IpAddr`].
    pub fn from_ip(addr: IpAddr) -> RData {
        match addr {
            IpAddr::V4(a) => RData::A(a),
            IpAddr::V6(a) => RData::Aaaa(a),
        }
    }

    /// Returns the target name for alias/delegation types (NS, CNAME, PTR,
    /// MX exchange, SRV target).
    pub fn target_name(&self) -> Option<&Name> {
        match self {
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => Some(n),
            RData::Mx(mx) => Some(&mx.exchange),
            RData::Srv(srv) => Some(&srv.target),
            _ => None,
        }
    }

    /// Encodes this rdata (without the RDLENGTH prefix).
    ///
    /// # Errors
    ///
    /// Returns an error if embedded names or strings exceed wire limits.
    pub fn encode(&self, w: &mut WireWriter) -> WireResult<()> {
        match self {
            RData::A(a) => {
                w.put_slice(&a.octets());
                Ok(())
            }
            RData::Aaaa(a) => {
                w.put_slice(&a.octets());
                Ok(())
            }
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => w.put_name(n),
            RData::Mx(mx) => mx.encode(w),
            RData::Txt(strings) => {
                for s in strings {
                    w.put_character_string(s)?;
                }
                Ok(())
            }
            RData::Soa(soa) => soa.encode(w),
            RData::Srv(srv) => srv.encode(w),
            RData::Opt(opt) => opt.encode(w),
            RData::Unknown { data, .. } => {
                if data.len() > usize::from(u16::MAX) {
                    return Err(WireError::RdataTooLong(data.len()));
                }
                w.put_slice(data);
                Ok(())
            }
        }
    }

    /// Decodes rdata of the given type from exactly `len` octets.
    ///
    /// # Errors
    ///
    /// Returns an error when the declared length does not match the content
    /// or the content is malformed.
    pub fn decode(r: &mut WireReader<'_>, rtype: RrType, len: usize) -> WireResult<Self> {
        let start = r.position();
        let rdata = match rtype {
            RrType::A => {
                let &[a, b, c, d] = r.read_bytes(4)? else {
                    return Err(WireError::UnexpectedEof {
                        expected: "A rdata",
                    });
                };
                RData::A(Ipv4Addr::new(a, b, c, d))
            }
            RrType::Aaaa => {
                let bytes = r.read_bytes(16)?;
                let mut octets = [0u8; 16];
                octets.copy_from_slice(bytes);
                RData::Aaaa(Ipv6Addr::from(octets))
            }
            RrType::Ns => RData::Ns(r.read_name()?),
            RrType::Cname => RData::Cname(r.read_name()?),
            RrType::Ptr => RData::Ptr(r.read_name()?),
            RrType::Mx => RData::Mx(Mx::decode(r)?),
            RrType::Txt => {
                let end = start + len;
                let mut strings = Vec::new();
                while r.position() < end {
                    strings.push(r.read_character_string()?);
                }
                RData::Txt(strings)
            }
            RrType::Soa => RData::Soa(Soa::decode(r)?),
            RrType::Srv => RData::Srv(Srv::decode(r)?),
            RrType::Opt => RData::Opt(OptRdata::decode(r, len)?),
            other => RData::Unknown {
                rtype: other.code(),
                data: r.read_bytes(len)?.to_vec(),
            },
        };
        let consumed = r.position() - start;
        if consumed != len {
            return Err(WireError::RdataLengthMismatch {
                declared: len,
                consumed,
            });
        }
        Ok(rdata)
    }
}

impl fmt::Display for RData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RData::A(a) => write!(f, "{a}"),
            RData::Aaaa(a) => write!(f, "{a}"),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => write!(f, "{n}"),
            RData::Mx(mx) => write!(f, "{} {}", mx.preference, mx.exchange),
            RData::Txt(strings) => {
                for (i, s) in strings.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "\"{}\"", String::from_utf8_lossy(s))?;
                }
                Ok(())
            }
            RData::Soa(soa) => write!(
                f,
                "{} {} {} {} {} {} {}",
                soa.mname, soa.rname, soa.serial, soa.refresh, soa.retry, soa.expire, soa.minimum
            ),
            RData::Srv(srv) => write!(
                f,
                "{} {} {} {}",
                srv.priority, srv.weight, srv.port, srv.target
            ),
            RData::Opt(opt) => write!(f, "OPT({} options)", opt.options.len()),
            RData::Unknown { rtype, data } => write!(f, "\\# TYPE{} {} octets", rtype, data.len()),
        }
    }
}

impl From<Ipv4Addr> for RData {
    fn from(a: Ipv4Addr) -> Self {
        RData::A(a)
    }
}

impl From<Ipv6Addr> for RData {
    fn from(a: Ipv6Addr) -> Self {
        RData::Aaaa(a)
    }
}

impl From<IpAddr> for RData {
    fn from(a: IpAddr) -> Self {
        RData::from_ip(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rdata: &RData) -> RData {
        let mut w = WireWriter::uncompressed();
        rdata.encode(&mut w).unwrap();
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        RData::decode(&mut r, rdata.rtype(), bytes.len()).unwrap()
    }

    #[test]
    fn a_roundtrip() {
        let rd = RData::A(Ipv4Addr::new(192, 0, 2, 53));
        assert_eq!(roundtrip(&rd), rd);
        assert_eq!(rd.rtype(), RrType::A);
        assert_eq!(rd.to_string(), "192.0.2.53");
    }

    #[test]
    fn aaaa_roundtrip() {
        let rd = RData::Aaaa("2001:db8::1".parse().unwrap());
        assert_eq!(roundtrip(&rd), rd);
        assert_eq!(rd.rtype(), RrType::Aaaa);
    }

    #[test]
    fn name_types_roundtrip() {
        for rd in [
            RData::Ns("ns1.example.org".parse().unwrap()),
            RData::Cname("alias.example.org".parse().unwrap()),
            RData::Ptr("host.example.org".parse().unwrap()),
        ] {
            assert_eq!(roundtrip(&rd), rd);
            assert!(rd.target_name().is_some());
        }
    }

    #[test]
    fn mx_srv_soa_roundtrip() {
        let mx = RData::Mx(Mx::new(5, "mx.example.org".parse().unwrap()));
        let srv = RData::Srv(Srv::new(1, 2, 443, "svc.example.org".parse().unwrap()));
        let soa = RData::Soa(Soa::new(
            "ns.example.org".parse().unwrap(),
            "admin.example.org".parse().unwrap(),
            7,
        ));
        for rd in [mx, srv, soa] {
            assert_eq!(roundtrip(&rd), rd);
        }
    }

    #[test]
    fn txt_roundtrip_multi_string() {
        let rd = RData::Txt(vec![b"hello".to_vec(), b"world".to_vec()]);
        assert_eq!(roundtrip(&rd), rd);
        assert_eq!(rd.to_string(), "\"hello\" \"world\"");
    }

    #[test]
    fn txt_empty_roundtrip() {
        let rd = RData::Txt(vec![]);
        assert_eq!(roundtrip(&rd), rd);
    }

    #[test]
    fn opt_roundtrip() {
        let rd = RData::Opt(OptRdata {
            options: vec![EdnsOption::new(10, vec![9, 9, 9])],
        });
        assert_eq!(roundtrip(&rd), rd);
    }

    #[test]
    fn unknown_roundtrip() {
        let rd = RData::Unknown {
            rtype: 999,
            data: vec![1, 2, 3, 4],
        };
        assert_eq!(roundtrip(&rd), rd);
        assert_eq!(rd.rtype(), RrType::Unknown(999));
    }

    #[test]
    fn ip_addr_helpers() {
        let v4 = IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1));
        let v6 = IpAddr::V6("2001:db8::2".parse().unwrap());
        assert_eq!(RData::from_ip(v4).ip_addr(), Some(v4));
        assert_eq!(RData::from_ip(v6).ip_addr(), Some(v6));
        assert_eq!(RData::Txt(vec![]).ip_addr(), None);
        assert_eq!(RData::from(v4).rtype(), RrType::A);
    }

    #[test]
    fn length_mismatch_detected() {
        // Declare 5 bytes for an A record (needs exactly 4 consumed).
        let bytes = [192, 0, 2, 1, 99];
        let mut r = WireReader::new(&bytes);
        let result = RData::decode(&mut r, RrType::A, 5);
        assert!(matches!(
            result,
            Err(WireError::RdataLengthMismatch {
                declared: 5,
                consumed: 4
            })
        ));
    }

    #[test]
    fn a_record_too_short_fails() {
        let bytes = [192, 0, 2];
        let mut r = WireReader::new(&bytes);
        assert!(RData::decode(&mut r, RrType::A, 3).is_err());
    }
}
