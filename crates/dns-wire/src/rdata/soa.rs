//! SOA (start of authority) rdata.

use serde::{Deserialize, Serialize};

use crate::error::WireResult;
use crate::name::Name;
use crate::wire::{WireReader, WireWriter};

/// SOA rdata fields (RFC 1035 §3.3.13).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Soa {
    /// Primary name server for the zone.
    pub mname: Name,
    /// Mailbox of the person responsible for the zone.
    pub rname: Name,
    /// Version number of the zone.
    pub serial: u32,
    /// Refresh interval in seconds.
    pub refresh: u32,
    /// Retry interval in seconds.
    pub retry: u32,
    /// Expiry limit in seconds.
    pub expire: u32,
    /// Minimum TTL / negative-caching TTL (RFC 2308).
    pub minimum: u32,
}

impl Soa {
    /// Creates an SOA record with sensible defaults for a simulated zone.
    pub fn new(mname: Name, rname: Name, serial: u32) -> Self {
        Soa {
            mname,
            rname,
            serial,
            refresh: 7200,
            retry: 900,
            expire: 1_209_600,
            minimum: 300,
        }
    }

    /// Encodes SOA rdata. Name compression is permitted in SOA rdata.
    pub fn encode(&self, w: &mut WireWriter) -> WireResult<()> {
        w.put_name(&self.mname)?;
        w.put_name(&self.rname)?;
        w.put_u32(self.serial);
        w.put_u32(self.refresh);
        w.put_u32(self.retry);
        w.put_u32(self.expire);
        w.put_u32(self.minimum);
        Ok(())
    }

    /// Decodes SOA rdata.
    ///
    /// # Errors
    ///
    /// Returns an error when the rdata is truncated.
    pub fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(Soa {
            mname: r.read_name()?,
            rname: r.read_name()?,
            serial: r.read_u32()?,
            refresh: r.read_u32()?,
            retry: r.read_u32()?,
            expire: r.read_u32()?,
            minimum: r.read_u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let soa = Soa::new(
            "ns1.ntpns.org".parse().unwrap(),
            "hostmaster.ntpns.org".parse().unwrap(),
            20_240_101,
        );
        let mut w = WireWriter::new();
        soa.encode(&mut w).unwrap();
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(Soa::decode(&mut r).unwrap(), soa);
    }

    #[test]
    fn truncated_fails() {
        let mut r = WireReader::new(&[0, 0]);
        assert!(Soa::decode(&mut r).is_err());
    }

    #[test]
    fn defaults_are_reasonable() {
        let soa = Soa::new(Name::root(), Name::root(), 1);
        assert!(soa.minimum > 0);
        assert!(soa.expire > soa.refresh);
    }
}
