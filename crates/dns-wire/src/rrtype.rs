//! Resource-record TYPE and CLASS code points.

use std::fmt;

use serde::{Deserialize, Serialize};

/// DNS resource-record type (RFC 1035 §3.2.2 and later assignments).
///
/// Only the types needed by the secure pool generation system and its
/// substrates are given named variants; everything else round-trips through
/// [`RrType::Unknown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RrType {
    /// IPv4 host address.
    A,
    /// Authoritative name server.
    Ns,
    /// Canonical name (alias).
    Cname,
    /// Start of a zone of authority.
    Soa,
    /// Domain name pointer.
    Ptr,
    /// Mail exchange.
    Mx,
    /// Text strings.
    Txt,
    /// IPv6 host address.
    Aaaa,
    /// Service locator.
    Srv,
    /// EDNS(0) option pseudo-record.
    Opt,
    /// Any type (query meta-type `*`).
    Any,
    /// A type code without a named variant.
    Unknown(u16),
}

impl RrType {
    /// Numeric code point for this type.
    pub fn code(self) -> u16 {
        match self {
            RrType::A => 1,
            RrType::Ns => 2,
            RrType::Cname => 5,
            RrType::Soa => 6,
            RrType::Ptr => 12,
            RrType::Mx => 15,
            RrType::Txt => 16,
            RrType::Aaaa => 28,
            RrType::Srv => 33,
            RrType::Opt => 41,
            RrType::Any => 255,
            RrType::Unknown(c) => c,
        }
    }

    /// Returns `true` for address types (A and AAAA), the only types relevant
    /// for server-pool generation (paper §II: "it does only support address
    /// lookups").
    pub fn is_address(self) -> bool {
        matches!(self, RrType::A | RrType::Aaaa)
    }

    /// Returns `true` for meta / pseudo types that never appear in zone data.
    pub fn is_meta(self) -> bool {
        matches!(self, RrType::Opt | RrType::Any)
    }
}

impl From<u16> for RrType {
    fn from(code: u16) -> Self {
        match code {
            1 => RrType::A,
            2 => RrType::Ns,
            5 => RrType::Cname,
            6 => RrType::Soa,
            12 => RrType::Ptr,
            15 => RrType::Mx,
            16 => RrType::Txt,
            28 => RrType::Aaaa,
            33 => RrType::Srv,
            41 => RrType::Opt,
            255 => RrType::Any,
            other => RrType::Unknown(other),
        }
    }
}

impl From<RrType> for u16 {
    fn from(t: RrType) -> Self {
        t.code()
    }
}

impl fmt::Display for RrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.type_name())
    }
}

impl RrType {
    fn type_name(&self) -> String {
        match self {
            RrType::A => "A".to_string(),
            RrType::Ns => "NS".to_string(),
            RrType::Cname => "CNAME".to_string(),
            RrType::Soa => "SOA".to_string(),
            RrType::Ptr => "PTR".to_string(),
            RrType::Mx => "MX".to_string(),
            RrType::Txt => "TXT".to_string(),
            RrType::Aaaa => "AAAA".to_string(),
            RrType::Srv => "SRV".to_string(),
            RrType::Opt => "OPT".to_string(),
            RrType::Any => "ANY".to_string(),
            RrType::Unknown(c) => format!("TYPE{c}"),
        }
    }

    /// Parses the presentation-format mnemonic (e.g. `"AAAA"` or `"TYPE99"`).
    pub fn from_mnemonic(s: &str) -> Option<RrType> {
        let upper = s.to_ascii_uppercase();
        Some(match upper.as_str() {
            "A" => RrType::A,
            "NS" => RrType::Ns,
            "CNAME" => RrType::Cname,
            "SOA" => RrType::Soa,
            "PTR" => RrType::Ptr,
            "MX" => RrType::Mx,
            "TXT" => RrType::Txt,
            "AAAA" => RrType::Aaaa,
            "SRV" => RrType::Srv,
            "OPT" => RrType::Opt,
            "ANY" | "*" => RrType::Any,
            other => {
                let code = other.strip_prefix("TYPE")?.parse::<u16>().ok()?;
                RrType::from(code)
            }
        })
    }
}

/// DNS CLASS code points (RFC 1035 §3.2.4).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub enum RrClass {
    /// The Internet class; effectively the only class in use.
    #[default]
    In,
    /// The CHAOS class, used for server identification queries.
    Ch,
    /// The Hesiod class.
    Hs,
    /// Query class NONE (RFC 2136).
    None,
    /// Query class ANY.
    Any,
    /// A class code without a named variant (including EDNS payload sizes
    /// carried in the CLASS field of OPT records).
    Unknown(u16),
}

impl RrClass {
    /// Numeric code point for this class.
    pub fn code(self) -> u16 {
        match self {
            RrClass::In => 1,
            RrClass::Ch => 3,
            RrClass::Hs => 4,
            RrClass::None => 254,
            RrClass::Any => 255,
            RrClass::Unknown(c) => c,
        }
    }
}

impl From<u16> for RrClass {
    fn from(code: u16) -> Self {
        match code {
            1 => RrClass::In,
            3 => RrClass::Ch,
            4 => RrClass::Hs,
            254 => RrClass::None,
            255 => RrClass::Any,
            other => RrClass::Unknown(other),
        }
    }
}

impl From<RrClass> for u16 {
    fn from(c: RrClass) -> Self {
        c.code()
    }
}

impl fmt::Display for RrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RrClass::In => write!(f, "IN"),
            RrClass::Ch => write!(f, "CH"),
            RrClass::Hs => write!(f, "HS"),
            RrClass::None => write!(f, "NONE"),
            RrClass::Any => write!(f, "ANY"),
            RrClass::Unknown(c) => write!(f, "CLASS{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rrtype_code_roundtrip() {
        for code in [1u16, 2, 5, 6, 12, 15, 16, 28, 33, 41, 255, 999] {
            let t = RrType::from(code);
            assert_eq!(t.code(), code);
            assert_eq!(u16::from(t), code);
        }
    }

    #[test]
    fn rrtype_unknown_is_preserved() {
        assert_eq!(RrType::from(4242), RrType::Unknown(4242));
    }

    #[test]
    fn rrtype_display_and_mnemonic_roundtrip() {
        for t in [
            RrType::A,
            RrType::Ns,
            RrType::Cname,
            RrType::Soa,
            RrType::Ptr,
            RrType::Mx,
            RrType::Txt,
            RrType::Aaaa,
            RrType::Srv,
            RrType::Opt,
            RrType::Any,
            RrType::Unknown(777),
        ] {
            let s = t.to_string();
            assert_eq!(RrType::from_mnemonic(&s), Some(t), "mnemonic {s}");
        }
        assert_eq!(RrType::from_mnemonic("aaaa"), Some(RrType::Aaaa));
        assert_eq!(RrType::from_mnemonic("bogus"), None);
    }

    #[test]
    fn address_and_meta_predicates() {
        assert!(RrType::A.is_address());
        assert!(RrType::Aaaa.is_address());
        assert!(!RrType::Ns.is_address());
        assert!(RrType::Opt.is_meta());
        assert!(RrType::Any.is_meta());
        assert!(!RrType::A.is_meta());
    }

    #[test]
    fn rrclass_code_roundtrip() {
        for code in [1u16, 3, 4, 254, 255, 4096] {
            let c = RrClass::from(code);
            assert_eq!(c.code(), code);
        }
        assert_eq!(RrClass::default(), RrClass::In);
        assert_eq!(RrClass::Unknown(4096).to_string(), "CLASS4096");
    }
}
