//! Complete DNS messages: header plus question, answer, authority and
//! additional sections, with encode/decode and a builder.

use std::fmt;
use std::net::IpAddr;

use serde::{Deserialize, Serialize};

use crate::edns::Edns;
use crate::error::{WireError, WireResult};
use crate::header::{Header, Opcode, Rcode};
use crate::name::Name;
use crate::question::Question;

use crate::record::Record;
use crate::rrtype::RrType;
use crate::wire::{WireReader, WireWriter};

/// Maximum size of a DNS message in octets (TCP / DoH limit).
pub const MAX_MESSAGE_SIZE: usize = 65_535;

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Message {
    /// Message header. The section counts are recomputed during encoding.
    pub header: Header,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section.
    pub authorities: Vec<Record>,
    /// Additional section (including any OPT pseudo-record).
    pub additionals: Vec<Record>,
}

impl Message {
    /// Creates an empty message with a default header.
    pub fn new() -> Self {
        Message::default()
    }

    /// Creates a recursive query for `name`/`rtype` with the given identifier.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdoh_dns_wire::{Message, RrType};
    ///
    /// let query = Message::query(0x1234, "pool.ntp.org".parse().unwrap(), RrType::A);
    /// assert_eq!(query.questions.len(), 1);
    /// assert!(query.header.recursion_desired);
    /// ```
    pub fn query(id: u16, name: Name, rtype: RrType) -> Self {
        Message {
            header: Header {
                question_count: 1,
                ..Header::query(id)
            },
            questions: vec![Question::new(name, rtype)],
            ..Message::default()
        }
    }

    /// Creates a response skeleton answering `query`: same id, opcode, RD
    /// bit and question section.
    pub fn response_to(query: &Message) -> Self {
        Message {
            header: Header {
                question_count: u16::try_from(query.questions.len()).unwrap_or(u16::MAX),
                ..Header::response_to(&query.header)
            },
            questions: query.questions.clone(),
            ..Message::default()
        }
    }

    /// The first question, if any.
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// Response code taking a potential extended rcode in the OPT record into
    /// account.
    pub fn rcode(&self) -> Rcode {
        if let Some(edns) = self.edns() {
            if edns.extended_rcode != 0 {
                let code =
                    (u16::from(edns.extended_rcode) << 4) | u16::from(self.header.rcode.low_bits());
                return Rcode::from(code);
            }
        }
        self.header.rcode
    }

    /// Returns the EDNS structure from the additional section, if present.
    pub fn edns(&self) -> Option<Edns> {
        self.additionals
            .iter()
            .find(|r| r.rtype() == RrType::Opt)
            .and_then(Edns::from_record)
    }

    /// Attaches (or replaces) an EDNS OPT record in the additional section.
    pub fn set_edns(&mut self, edns: Edns) {
        self.additionals.retain(|r| r.rtype() != RrType::Opt);
        self.additionals.push(edns.to_record());
    }

    /// All IP addresses found in answer records that match the queried name's
    /// address types (A/AAAA), in answer order.
    ///
    /// This is the list the secure pool generation algorithm consumes.
    pub fn answer_addresses(&self) -> Vec<IpAddr> {
        self.answers.iter().filter_map(Record::ip_addr).collect()
    }

    /// Adds an answer record, returning `&mut self` for chaining.
    pub fn add_answer(&mut self, record: Record) -> &mut Self {
        self.answers.push(record);
        self
    }

    /// Adds an authority record, returning `&mut self` for chaining.
    pub fn add_authority(&mut self, record: Record) -> &mut Self {
        self.authorities.push(record);
        self
    }

    /// Adds an additional record, returning `&mut self` for chaining.
    pub fn add_additional(&mut self, record: Record) -> &mut Self {
        self.additionals.push(record);
        self
    }

    /// Recomputes the header section counts from the actual section lengths.
    pub fn normalize_counts(&mut self) {
        // Saturating: a section this large cannot encode anyway — encode()
        // rejects messages over 65535 octets.
        self.header.question_count = u16::try_from(self.questions.len()).unwrap_or(u16::MAX);
        self.header.answer_count = u16::try_from(self.answers.len()).unwrap_or(u16::MAX);
        self.header.authority_count = u16::try_from(self.authorities.len()).unwrap_or(u16::MAX);
        self.header.additional_count = u16::try_from(self.additionals.len()).unwrap_or(u16::MAX);
    }

    /// Encodes the message to wire format with name compression.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::MessageTooLong`] when the encoded message exceeds
    /// 65535 octets, or any underlying encoding error.
    // sdoh-lint: allow(transitive-hot-path-purity, "wire build allocates the response buffer: one encode per query is the accepted v0 wire contract until E16's buffer-pool rework")
    pub fn encode(&self) -> WireResult<Vec<u8>> {
        let mut msg = self.clone();
        msg.normalize_counts();
        let mut w = WireWriter::new();
        msg.header.encode(&mut w)?;
        for q in &msg.questions {
            q.encode(&mut w)?;
        }
        for r in msg
            .answers
            .iter()
            .chain(msg.authorities.iter())
            .chain(msg.additionals.iter())
        {
            r.encode(&mut w)?;
        }
        if w.len() > MAX_MESSAGE_SIZE {
            return Err(WireError::MessageTooLong(w.len()));
        }
        Ok(w.finish().to_vec())
    }

    /// Decodes a message from wire format.
    ///
    /// # Errors
    ///
    /// Returns an error for truncated or malformed messages. Trailing bytes
    /// after the declared sections are rejected.
    // sdoh-lint: allow(transitive-hot-path-purity, "wire parse allocates per-section Vecs: one decode per query is the accepted v0 wire contract until E16's buffer-pool rework")
    pub fn decode(data: &[u8]) -> WireResult<Self> {
        let mut r = WireReader::new(data);
        let header = Header::decode(&mut r)?;
        let mut questions = Vec::with_capacity(usize::from(header.question_count));
        for _ in 0..header.question_count {
            questions.push(Question::decode(&mut r)?);
        }
        let mut answers = Vec::with_capacity(usize::from(header.answer_count));
        for _ in 0..header.answer_count {
            answers.push(Record::decode(&mut r)?);
        }
        let mut authorities = Vec::with_capacity(usize::from(header.authority_count));
        for _ in 0..header.authority_count {
            authorities.push(Record::decode(&mut r)?);
        }
        let mut additionals = Vec::with_capacity(usize::from(header.additional_count));
        for _ in 0..header.additional_count {
            additionals.push(Record::decode(&mut r)?);
        }
        if !r.is_at_end() {
            return Err(WireError::TrailingBytes(r.remaining()));
        }
        Ok(Message {
            header,
            questions,
            answers,
            authorities,
            additionals,
        })
    }

    /// Builds a minimal error response (e.g. SERVFAIL, REFUSED) to a query.
    pub fn error_response(query: &Message, rcode: Rcode) -> Message {
        let mut resp = Message::response_to(query);
        resp.header.rcode = rcode;
        resp
    }

    /// Returns `true` when this message is a response to the given query:
    /// matching id, opcode and first question.
    ///
    /// This is the check a plain (non-DoH) client performs, and the check an
    /// off-path attacker must defeat by guessing the id.
    pub fn answers_query(&self, query: &Message) -> bool {
        self.header.response
            && self.header.id == query.header.id
            && self.header.opcode == query.header.opcode
            && match (self.question(), query.question()) {
                (Some(a), Some(b)) => a == b,
                (None, None) => true,
                _ => false,
            }
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            ";; id {} {} {} qd {} an {} ns {} ar {}",
            self.header.id,
            if self.header.response {
                "response"
            } else {
                "query"
            },
            self.header.rcode,
            self.questions.len(),
            self.answers.len(),
            self.authorities.len(),
            self.additionals.len()
        )?;
        for q in &self.questions {
            writeln!(f, ";{q}")?;
        }
        for r in &self.answers {
            writeln!(f, "{r}")?;
        }
        for r in &self.authorities {
            writeln!(f, "{r}")?;
        }
        for r in &self.additionals {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

/// Fluent builder for response messages, used by the authoritative server
/// and the majority-resolver front end.
#[derive(Debug, Clone)]
pub struct MessageBuilder {
    message: Message,
}

impl MessageBuilder {
    /// Starts a response to the given query.
    pub fn response_to(query: &Message) -> Self {
        MessageBuilder {
            message: Message::response_to(query),
        }
    }

    /// Starts a query builder.
    pub fn query(id: u16, name: Name, rtype: RrType) -> Self {
        MessageBuilder {
            message: Message::query(id, name, rtype),
        }
    }

    /// Marks the message as authoritative.
    pub fn authoritative(mut self, value: bool) -> Self {
        self.message.header.authoritative = value;
        self
    }

    /// Sets the recursion-available flag.
    pub fn recursion_available(mut self, value: bool) -> Self {
        self.message.header.recursion_available = value;
        self
    }

    /// Sets the response code.
    pub fn rcode(mut self, rcode: Rcode) -> Self {
        self.message.header.rcode = rcode;
        self
    }

    /// Sets the opcode.
    pub fn opcode(mut self, opcode: Opcode) -> Self {
        self.message.header.opcode = opcode;
        self
    }

    /// Appends an answer record.
    pub fn answer(mut self, record: Record) -> Self {
        self.message.answers.push(record);
        self
    }

    /// Appends an address answer for the first question's name.
    pub fn answer_address(mut self, ttl: u32, addr: IpAddr) -> Self {
        let name = self
            .message
            .question()
            .map(|q| q.name.clone())
            .unwrap_or_else(Name::root);
        self.message.answers.push(Record::address(name, ttl, addr));
        self
    }

    /// Appends an authority record.
    pub fn authority(mut self, record: Record) -> Self {
        self.message.authorities.push(record);
        self
    }

    /// Appends an additional record.
    pub fn additional(mut self, record: Record) -> Self {
        self.message.additionals.push(record);
        self
    }

    /// Attaches an EDNS OPT record.
    pub fn edns(mut self, edns: Edns) -> Self {
        self.message.set_edns(edns);
        self
    }

    /// Finishes building, normalizing the section counts.
    pub fn build(mut self) -> Message {
        self.message.normalize_counts();
        self.message
    }
}

/// Convenience helper: extracts address rdata of the requested family from a
/// response in answer order, ignoring other record types (e.g. CNAMEs).
pub fn addresses_of_type(message: &Message, rtype: RrType) -> Vec<IpAddr> {
    message
        .answers
        .iter()
        .filter(|r| r.rtype() == rtype)
        .filter_map(Record::ip_addr)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn sample_response() -> Message {
        let query = Message::query(7, "pool.ntp.org".parse().unwrap(), RrType::A);
        MessageBuilder::response_to(&query)
            .authoritative(true)
            .answer_address(300, IpAddr::V4(Ipv4Addr::new(203, 0, 113, 1)))
            .answer_address(300, IpAddr::V4(Ipv4Addr::new(203, 0, 113, 2)))
            .answer_address(300, IpAddr::V4(Ipv4Addr::new(203, 0, 113, 3)))
            .build()
    }

    #[test]
    fn query_roundtrip() {
        let q = Message::query(0xABCD, "dns.google".parse().unwrap(), RrType::Aaaa);
        let bytes = q.encode().unwrap();
        let decoded = Message::decode(&bytes).unwrap();
        assert_eq!(decoded, {
            let mut q = q.clone();
            q.normalize_counts();
            q
        });
        assert_eq!(decoded.question().unwrap().rtype, RrType::Aaaa);
    }

    #[test]
    fn response_roundtrip_with_answers() {
        let resp = sample_response();
        let bytes = resp.encode().unwrap();
        let decoded = Message::decode(&bytes).unwrap();
        assert_eq!(decoded.answers.len(), 3);
        assert_eq!(decoded.answer_addresses().len(), 3);
        assert!(decoded.header.authoritative);
    }

    #[test]
    fn compression_shrinks_repeated_names() {
        let resp = sample_response();
        let compressed = resp.encode().unwrap();
        // Manually compute uncompressed size: every answer carries the full name.
        let mut w = WireWriter::uncompressed();
        resp.header.encode(&mut w).unwrap();
        assert!(compressed.len() < 12 + 4 * resp.questions[0].name.wire_len() + 3 * 14);
    }

    #[test]
    fn answers_query_matching() {
        let query = Message::query(99, "x.example".parse().unwrap(), RrType::A);
        let mut resp = Message::response_to(&query);
        assert!(resp.answers_query(&query));
        resp.header.id = 100;
        assert!(!resp.answers_query(&query));
        resp.header.id = 99;
        resp.questions[0].name = "y.example".parse().unwrap();
        assert!(!resp.answers_query(&query));
    }

    #[test]
    fn error_response_has_rcode() {
        let query = Message::query(1, "x.example".parse().unwrap(), RrType::A);
        let resp = Message::error_response(&query, Rcode::NxDomain);
        assert_eq!(resp.header.rcode, Rcode::NxDomain);
        assert_eq!(resp.rcode(), Rcode::NxDomain);
        assert!(resp.header.response);
    }

    #[test]
    fn edns_attach_and_extract() {
        let mut msg = Message::query(5, "e.example".parse().unwrap(), RrType::A);
        assert!(msg.edns().is_none());
        msg.set_edns(Edns::with_payload_size(4096));
        assert_eq!(msg.edns().unwrap().payload_size, 4096);
        // Setting again replaces instead of duplicating.
        msg.set_edns(Edns::with_payload_size(1232));
        assert_eq!(msg.additionals.len(), 1);
        let bytes = msg.encode().unwrap();
        let decoded = Message::decode(&bytes).unwrap();
        assert_eq!(decoded.edns().unwrap().payload_size, 1232);
    }

    #[test]
    fn extended_rcode_combines() {
        let mut msg = Message::new();
        msg.header.rcode = Rcode::Unknown(0); // low bits 0
        let edns = Edns {
            extended_rcode: 1, // 1 << 4 = 16 => BADVERS
            ..Edns::default()
        };
        msg.set_edns(edns);
        assert_eq!(msg.rcode(), Rcode::Unknown(16));
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let q = Message::query(3, "t.example".parse().unwrap(), RrType::A);
        let mut bytes = q.encode().unwrap();
        bytes.push(0xFF);
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn decode_rejects_truncated_section() {
        let resp = sample_response();
        let bytes = resp.encode().unwrap();
        let truncated = &bytes[..bytes.len() - 3];
        assert!(Message::decode(truncated).is_err());
    }

    #[test]
    fn counts_normalized_on_encode() {
        let mut msg = Message::query(2, "c.example".parse().unwrap(), RrType::A);
        msg.add_answer(Record::address(
            "c.example".parse().unwrap(),
            60,
            IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1)),
        ));
        // header.answer_count is still 0 here; encode must fix it.
        assert_eq!(msg.header.answer_count, 0);
        let decoded = Message::decode(&msg.encode().unwrap()).unwrap();
        assert_eq!(decoded.header.answer_count, 1);
        assert_eq!(decoded.answers.len(), 1);
    }

    #[test]
    fn addresses_of_type_filters_family() {
        let query = Message::query(7, "d.example".parse().unwrap(), RrType::A);
        let resp = MessageBuilder::response_to(&query)
            .answer_address(60, "203.0.113.9".parse().unwrap())
            .answer_address(60, "2001:db8::9".parse().unwrap())
            .build();
        assert_eq!(addresses_of_type(&resp, RrType::A).len(), 1);
        assert_eq!(addresses_of_type(&resp, RrType::Aaaa).len(), 1);
        assert_eq!(resp.answer_addresses().len(), 2);
    }

    #[test]
    fn display_is_nonempty() {
        let s = sample_response().to_string();
        assert!(s.contains("pool.ntp.org."));
        assert!(s.contains("203.0.113.1"));
    }

    #[test]
    fn builder_full_coverage() {
        let query = Message::query(11, "b.example".parse().unwrap(), RrType::A);
        let msg = MessageBuilder::response_to(&query)
            .opcode(Opcode::Query)
            .rcode(Rcode::NoError)
            .recursion_available(true)
            .answer(Record::address(
                "b.example".parse().unwrap(),
                30,
                "192.0.2.8".parse().unwrap(),
            ))
            .authority(Record::new(
                "example".parse().unwrap(),
                30,
                crate::rdata::RData::Ns("ns.example".parse().unwrap()),
            ))
            .additional(Record::address(
                "ns.example".parse().unwrap(),
                30,
                "192.0.2.53".parse().unwrap(),
            ))
            .edns(Edns::default())
            .build();
        assert!(msg.header.recursion_available);
        assert_eq!(msg.answers.len(), 1);
        assert_eq!(msg.authorities.len(), 1);
        assert_eq!(msg.additionals.len(), 2); // additional + OPT
        let rt = Message::decode(&msg.encode().unwrap()).unwrap();
        assert_eq!(rt.authorities[0].rtype(), RrType::Ns);
    }
}
