//! Domain names in presentation and wire format.
//!
//! A [`Name`] is a sequence of labels, stored with the original case but
//! compared, hashed and compressed case-insensitively as required by
//! RFC 1035 §2.3.3 and RFC 4343.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::{WireError, WireResult};

/// Maximum length of a single label in octets.
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum length of a name on the wire (including length octets and root).
pub const MAX_NAME_LEN: usize = 255;

/// A fully-qualified DNS domain name.
///
/// Names are always treated as absolute: `"example.org"` and
/// `"example.org."` parse to the same value.
///
/// # Examples
///
/// ```
/// use sdoh_dns_wire::Name;
///
/// let name: Name = "pool.NTP.org".parse().unwrap();
/// assert_eq!(name.num_labels(), 3);
/// assert_eq!(name, "POOL.ntp.ORG".parse().unwrap());
/// assert_eq!(name.to_string(), "pool.NTP.org.");
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Name {
    labels: Vec<Vec<u8>>,
}

impl Name {
    /// The root name (`.`).
    pub fn root() -> Self {
        Name { labels: Vec::new() }
    }

    /// Parses a name from presentation (dotted ASCII) format.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::LabelTooLong`], [`WireError::NameTooLong`],
    /// [`WireError::EmptyLabel`] or [`WireError::InvalidLabelCharacter`] when
    /// the input violates RFC 1035 limits.
    pub fn from_ascii(s: &str) -> WireResult<Self> {
        if s.is_empty() || s == "." {
            return Ok(Name::root());
        }
        let trimmed = s.strip_suffix('.').unwrap_or(s);
        let mut labels = Vec::new();
        for raw in trimmed.split('.') {
            if raw.is_empty() {
                return Err(WireError::EmptyLabel);
            }
            if raw.len() > MAX_LABEL_LEN {
                return Err(WireError::LabelTooLong(raw.len()));
            }
            for ch in raw.chars() {
                if !ch.is_ascii() || ch.is_ascii_control() || ch == ' ' {
                    return Err(WireError::InvalidLabelCharacter(ch));
                }
            }
            labels.push(raw.as_bytes().to_vec());
        }
        let name = Name { labels };
        let wire = name.wire_len();
        if wire > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(wire));
        }
        Ok(name)
    }

    /// Builds a name from raw label byte strings.
    ///
    /// # Errors
    ///
    /// Returns an error if any label is empty or too long, or if the
    /// resulting name exceeds the wire-format limit.
    pub fn from_labels<I, L>(iter: I) -> WireResult<Self>
    where
        I: IntoIterator<Item = L>,
        L: AsRef<[u8]>,
    {
        let mut labels = Vec::new();
        for l in iter {
            let l = l.as_ref();
            if l.is_empty() {
                return Err(WireError::EmptyLabel);
            }
            if l.len() > MAX_LABEL_LEN {
                return Err(WireError::LabelTooLong(l.len()));
            }
            labels.push(l.to_vec());
        }
        let name = Name { labels };
        let wire = name.wire_len();
        if wire > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(wire));
        }
        Ok(name)
    }

    /// Returns `true` if this is the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of labels (the root name has zero labels).
    pub fn num_labels(&self) -> usize {
        self.labels.len()
    }

    /// Iterates over the labels from leftmost (most specific) to rightmost.
    pub fn labels(&self) -> impl Iterator<Item = &[u8]> {
        self.labels.iter().map(|l| l.as_slice())
    }

    /// Length of this name in wire format (sum of length octets plus the
    /// terminating zero octet), without compression.
    pub fn wire_len(&self) -> usize {
        self.labels.iter().map(|l| l.len() + 1).sum::<usize>() + 1
    }

    /// Returns the parent of this name, or `None` for the root.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdoh_dns_wire::Name;
    /// let n: Name = "a.b.c".parse().unwrap();
    /// assert_eq!(n.parent().unwrap().to_string(), "b.c.");
    /// ```
    pub fn parent(&self) -> Option<Name> {
        if self.is_root() {
            None
        } else {
            Some(Name {
                labels: self.labels.get(1..).unwrap_or(&[]).to_vec(),
            })
        }
    }

    /// Creates a child name by prepending `label` to this name.
    ///
    /// # Errors
    ///
    /// Returns an error if the label or resulting name is too long.
    pub fn child<L: AsRef<[u8]>>(&self, label: L) -> WireResult<Name> {
        let label = label.as_ref();
        if label.is_empty() {
            return Err(WireError::EmptyLabel);
        }
        if label.len() > MAX_LABEL_LEN {
            return Err(WireError::LabelTooLong(label.len()));
        }
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(label.to_vec());
        labels.extend(self.labels.iter().cloned());
        let name = Name { labels };
        let wire = name.wire_len();
        if wire > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(wire));
        }
        Ok(name)
    }

    /// Returns `true` when `self` is equal to or a subdomain of `other`.
    ///
    /// The root is an ancestor of every name.
    pub fn is_subdomain_of(&self, other: &Name) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - other.labels.len();
        self.labels
            .get(offset..)
            .unwrap_or(&[])
            .iter()
            .zip(other.labels.iter())
            .all(|(a, b)| eq_ignore_case(a, b))
    }

    /// Returns the name with the given number of trailing labels, e.g. the
    /// enclosing zone cut candidate. `suffix_len` greater than the number of
    /// labels returns a clone of `self`.
    pub fn suffix(&self, suffix_len: usize) -> Name {
        if suffix_len >= self.labels.len() {
            return self.clone();
        }
        Name {
            labels: self
                .labels
                .get(self.labels.len() - suffix_len..)
                .unwrap_or(&[])
                .to_vec(),
        }
    }

    /// Returns this name with the case of every ASCII letter chosen
    /// pseudo-randomly from `seed` — DNS 0x20 mixed-case encoding
    /// (draft-vixie-dnsext-dns0x20). A resolver that encodes its queries
    /// this way and verifies the echoed question case forces an off-path
    /// forger to guess [`Name::case_entropy_bits`] additional bits.
    ///
    /// The same `(name, seed)` pair always produces the same casing, so
    /// the encoding is reproducible from the simulation seed.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdoh_dns_wire::Name;
    ///
    /// let name: Name = "pool.ntp.org".parse().unwrap();
    /// let cased = name.with_mixed_case(7);
    /// assert_eq!(cased, name, "equality stays case-insensitive");
    /// assert_eq!(cased, name.with_mixed_case(7));
    /// ```
    pub fn with_mixed_case(&self, seed: u64) -> Name {
        // splitmix64: cheap, well-distributed, and dependency-free.
        let mut state = seed;
        let mut next_bit = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) & 1 == 1
        };
        let labels = self
            .labels
            .iter()
            .map(|label| {
                label
                    .iter()
                    .map(|&b| {
                        if b.is_ascii_alphabetic() {
                            if next_bit() {
                                b.to_ascii_uppercase()
                            } else {
                                b.to_ascii_lowercase()
                            }
                        } else {
                            b
                        }
                    })
                    .collect()
            })
            .collect();
        Name { labels }
    }

    /// Case-exact label comparison — the check a 0x20-verifying client
    /// performs on the echoed question, which ordinary [`PartialEq`]
    /// (case-insensitive per RFC 4343) deliberately does not.
    pub fn eq_case_exact(&self, other: &Name) -> bool {
        self.labels == other.labels
    }

    /// Number of ASCII letters in the name: the identifier entropy (in
    /// bits) that 0x20 mixed-case encoding adds to a query, saturating at
    /// 255.
    pub fn case_entropy_bits(&self) -> u8 {
        let letters = self
            .labels
            .iter()
            .flat_map(|l| l.iter())
            .filter(|b| b.is_ascii_alphabetic())
            .count();
        u8::try_from(letters.min(255)).unwrap_or(u8::MAX)
    }

    /// Returns `true` when no label contains an uppercase ASCII letter —
    /// the canonical form an off-path forger guesses when it only knows
    /// the name from context.
    pub fn is_canonical_lowercase(&self) -> bool {
        self.labels
            .iter()
            .flat_map(|l| l.iter())
            .all(|b| !b.is_ascii_uppercase())
    }

    /// Lowercased presentation format without the trailing dot, used as a
    /// canonical map key (e.g. for compression and caching).
    pub fn to_lowercase_string(&self) -> String {
        let mut out = String::new();
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push('.');
            }
            for &b in l {
                out.push((b as char).to_ascii_lowercase());
            }
        }
        out
    }
}

fn eq_ignore_case(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|(x, y)| x.eq_ignore_ascii_case(y))
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.labels.len() == other.labels.len()
            && self
                .labels
                .iter()
                .zip(other.labels.iter())
                .all(|(a, b)| eq_ignore_case(a, b))
    }
}

impl Eq for Name {}

impl Hash for Name {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for l in &self.labels {
            for &b in l {
                state.write_u8(b.to_ascii_lowercase());
            }
            state.write_u8(0);
        }
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    /// Canonical DNS ordering (RFC 4034 §6.1): compare label sequences from
    /// the rightmost label, case-insensitively.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let a: Vec<Vec<u8>> = self
            .labels
            .iter()
            .rev()
            .map(|l| l.to_ascii_lowercase())
            .collect();
        let b: Vec<Vec<u8>> = other
            .labels
            .iter()
            .rev()
            .map(|l| l.to_ascii_lowercase())
            .collect();
        a.cmp(&b)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_root() {
            return write!(f, ".");
        }
        for l in &self.labels {
            for &b in l {
                if b == b'.' || b == b'\\' {
                    write!(f, "\\{}", b as char)?;
                } else if b.is_ascii_graphic() {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\{:03}", b)?;
                }
            }
            write!(f, ".")?;
        }
        Ok(())
    }
}

impl FromStr for Name {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::from_ascii(s)
    }
}

impl TryFrom<&str> for Name {
    type Error = WireError;

    fn try_from(value: &str) -> Result<Self, Self::Error> {
        Name::from_ascii(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(n: &Name) -> u64 {
        let mut hasher = DefaultHasher::new();
        n.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn parse_simple() {
        let n = Name::from_ascii("pool.ntp.org").unwrap();
        assert_eq!(n.num_labels(), 3);
        assert_eq!(n.to_string(), "pool.ntp.org.");
    }

    #[test]
    fn parse_trailing_dot_equivalent() {
        assert_eq!(
            Name::from_ascii("example.org").unwrap(),
            Name::from_ascii("example.org.").unwrap()
        );
    }

    #[test]
    fn root_parses_from_dot_and_empty() {
        assert!(Name::from_ascii(".").unwrap().is_root());
        assert!(Name::from_ascii("").unwrap().is_root());
        assert_eq!(Name::root().to_string(), ".");
        assert_eq!(Name::root().wire_len(), 1);
    }

    #[test]
    fn case_insensitive_eq_and_hash() {
        let a = Name::from_ascii("DNS.Google.COM").unwrap();
        let b = Name::from_ascii("dns.google.com").unwrap();
        assert_eq!(a, b);
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn display_preserves_case() {
        let a = Name::from_ascii("DNS.Google").unwrap();
        assert_eq!(a.to_string(), "DNS.Google.");
    }

    #[test]
    fn label_too_long_rejected() {
        let long = "a".repeat(64);
        assert!(matches!(
            Name::from_ascii(&long),
            Err(WireError::LabelTooLong(64))
        ));
        assert!(Name::from_ascii(&"a".repeat(63)).is_ok());
    }

    #[test]
    fn name_too_long_rejected() {
        // 4 labels of 63 bytes = 4*64 + 1 = 257 > 255
        let label = "a".repeat(63);
        let name = format!("{label}.{label}.{label}.{label}");
        assert!(matches!(
            Name::from_ascii(&name),
            Err(WireError::NameTooLong(_))
        ));
    }

    #[test]
    fn empty_label_rejected() {
        assert_eq!(Name::from_ascii("a..b"), Err(WireError::EmptyLabel));
    }

    #[test]
    fn invalid_chars_rejected() {
        assert!(matches!(
            Name::from_ascii("ex ample.org"),
            Err(WireError::InvalidLabelCharacter(' '))
        ));
        assert!(matches!(
            Name::from_ascii("exämple.org"),
            Err(WireError::InvalidLabelCharacter(_))
        ));
    }

    #[test]
    fn parent_chain() {
        let n = Name::from_ascii("a.b.c").unwrap();
        let p = n.parent().unwrap();
        assert_eq!(p.to_string(), "b.c.");
        let gp = p.parent().unwrap();
        assert_eq!(gp.to_string(), "c.");
        let root = gp.parent().unwrap();
        assert!(root.is_root());
        assert!(root.parent().is_none());
    }

    #[test]
    fn child_builds_subdomain() {
        let n = Name::from_ascii("ntp.org").unwrap();
        let c = n.child("pool").unwrap();
        assert_eq!(c.to_string(), "pool.ntp.org.");
        assert!(c.child("").is_err());
    }

    #[test]
    fn subdomain_checks() {
        let zone = Name::from_ascii("ntp.org").unwrap();
        let host = Name::from_ascii("a.pool.NTP.ORG").unwrap();
        let other = Name::from_ascii("example.com").unwrap();
        assert!(host.is_subdomain_of(&zone));
        assert!(zone.is_subdomain_of(&zone));
        assert!(!other.is_subdomain_of(&zone));
        assert!(host.is_subdomain_of(&Name::root()));
        assert!(!zone.is_subdomain_of(&host));
    }

    #[test]
    fn suffix_extraction() {
        let n = Name::from_ascii("a.b.c.d").unwrap();
        assert_eq!(n.suffix(2).to_string(), "c.d.");
        assert_eq!(n.suffix(0), Name::root());
        assert_eq!(n.suffix(10), n);
    }

    #[test]
    fn canonical_ordering() {
        let a = Name::from_ascii("a.example").unwrap();
        let b = Name::from_ascii("b.example").unwrap();
        let z = Name::from_ascii("example").unwrap();
        assert!(z < a);
        assert!(a < b);
        assert!(Name::root() < z);
    }

    #[test]
    fn wire_len_matches_definition() {
        let n = Name::from_ascii("abc.de").unwrap();
        // 1+3 + 1+2 + 1 = 8
        assert_eq!(n.wire_len(), 8);
    }

    #[test]
    fn from_labels_roundtrip() {
        let n = Name::from_labels(["www", "example", "org"]).unwrap();
        assert_eq!(n.to_string(), "www.example.org.");
        assert!(Name::from_labels([""]).is_err());
    }

    #[test]
    fn mixed_case_is_deterministic_and_case_insensitively_equal() {
        let n = Name::from_ascii("pool.ntpns.org").unwrap();
        let a = n.with_mixed_case(42);
        let b = n.with_mixed_case(42);
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(a, n, "0x20 casing never changes name identity");
        assert_eq!(h(&a), h(&n));
        // Different seeds produce different casings for a 12-letter name
        // (collision probability 2^-12 per pair; these seeds differ).
        let distinct: std::collections::HashSet<String> =
            (0..16).map(|s| n.with_mixed_case(s).to_string()).collect();
        assert!(distinct.len() > 1, "casing must actually vary");
    }

    #[test]
    fn mixed_case_leaves_non_letters_alone() {
        let n = Name::from_ascii("p00l-1.example").unwrap();
        let cased = n.with_mixed_case(9);
        let flat: Vec<u8> = cased.labels().flatten().copied().collect();
        assert!(flat.contains(&b'0'));
        assert!(flat.contains(&b'-'));
        assert!(flat.contains(&b'1'));
    }

    #[test]
    fn case_exact_comparison() {
        let lower = Name::from_ascii("pool.ntp.org").unwrap();
        let mixed = Name::from_ascii("PoOl.nTp.oRg").unwrap();
        assert_eq!(lower, mixed);
        assert!(!lower.eq_case_exact(&mixed));
        assert!(lower.eq_case_exact(&lower.clone()));
        assert!(mixed.eq_case_exact(&Name::from_ascii("PoOl.nTp.oRg").unwrap()));
    }

    #[test]
    fn case_entropy_counts_letters_only() {
        assert_eq!(
            Name::from_ascii("pool.ntpns.org")
                .unwrap()
                .case_entropy_bits(),
            12
        );
        assert_eq!(Name::from_ascii("123.456").unwrap().case_entropy_bits(), 0);
        assert_eq!(Name::root().case_entropy_bits(), 0);
    }

    #[test]
    fn canonical_lowercase_detection() {
        assert!(Name::from_ascii("pool.ntp.org")
            .unwrap()
            .is_canonical_lowercase());
        assert!(!Name::from_ascii("Pool.ntp.org")
            .unwrap()
            .is_canonical_lowercase());
        assert!(Name::from_ascii("12-3.example")
            .unwrap()
            .is_canonical_lowercase());
        assert!(Name::root().is_canonical_lowercase());
    }

    #[test]
    fn lowercase_key() {
        let n = Name::from_ascii("DNS.Quad9.NET").unwrap();
        assert_eq!(n.to_lowercase_string(), "dns.quad9.net");
    }
}
