//! Property-based tests: arbitrary DNS messages survive an encode/decode
//! round trip, and the decoder never panics on arbitrary input.

use std::net::{Ipv4Addr, Ipv6Addr};

use proptest::prelude::*;

use sdoh_dns_wire::{
    base64url, Header, Message, Name, Opcode, Question, RData, Rcode, Record, RrType, Soa,
};

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9][a-zA-Z0-9-]{0,20}").unwrap()
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 0..5).prop_map(|labels| {
        if labels.is_empty() {
            Name::root()
        } else {
            Name::from_labels(labels.iter().map(|l| l.as_bytes())).unwrap()
        }
    })
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(Ipv4Addr::from(o))),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(Ipv6Addr::from(o))),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Cname),
        arb_name().prop_map(RData::Ptr),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..4)
            .prop_map(RData::Txt),
        (arb_name(), arb_name(), any::<u32>())
            .prop_map(|(m, r, s)| { RData::Soa(Soa::new(m, r, s)) }),
        proptest::collection::vec(any::<u8>(), 0..48)
            .prop_map(|data| RData::Unknown { rtype: 4242, data }),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), any::<u32>(), arb_rdata()).prop_map(|(name, ttl, rdata)| Record {
        name,
        rclass: sdoh_dns_wire::RrClass::In,
        ttl,
        rdata,
    })
}

fn arb_rrtype() -> impl Strategy<Value = RrType> {
    prop_oneof![
        Just(RrType::A),
        Just(RrType::Aaaa),
        Just(RrType::Ns),
        Just(RrType::Txt),
        Just(RrType::Any),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        any::<bool>(),
        any::<bool>(),
        arb_name(),
        arb_rrtype(),
        proptest::collection::vec(arb_record(), 0..6),
        proptest::collection::vec(arb_record(), 0..3),
        proptest::collection::vec(arb_record(), 0..3),
    )
        .prop_map(
            |(id, response, rd, qname, qtype, answers, authorities, additionals)| Message {
                header: Header {
                    id,
                    response,
                    opcode: Opcode::Query,
                    recursion_desired: rd,
                    rcode: Rcode::NoError,
                    ..Header::default()
                },
                questions: vec![Question::new(qname, qtype)],
                answers,
                authorities,
                additionals,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn message_roundtrip(msg in arb_message()) {
        let encoded = msg.encode().unwrap();
        let decoded = Message::decode(&encoded).unwrap();
        let mut normalized = msg.clone();
        normalized.normalize_counts();
        prop_assert_eq!(decoded, normalized);
    }

    #[test]
    fn reencode_is_stable(msg in arb_message()) {
        let once = msg.encode().unwrap();
        let decoded = Message::decode(&once).unwrap();
        let twice = decoded.encode().unwrap();
        let decoded2 = Message::decode(&twice).unwrap();
        prop_assert_eq!(decoded, decoded2);
    }

    #[test]
    fn decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Message::decode(&data);
    }

    #[test]
    fn name_parse_display_roundtrip(labels in proptest::collection::vec(arb_label(), 1..5)) {
        let text = labels.join(".");
        let name: Name = text.parse().unwrap();
        let redisplayed = name.to_string();
        let reparsed: Name = redisplayed.parse().unwrap();
        prop_assert_eq!(name, reparsed);
    }

    #[test]
    fn base64url_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let encoded = base64url::encode(&data);
        prop_assert!(!encoded.contains('='));
        prop_assert_eq!(base64url::decode(&encoded).unwrap(), data);
    }

    #[test]
    fn base64url_decode_never_panics(s in "[ -~]{0,64}") {
        let _ = base64url::decode(&s);
    }

    #[test]
    fn answer_addresses_counts_address_records(msg in arb_message()) {
        let expected = msg
            .answers
            .iter()
            .filter(|r| matches!(r.rdata, RData::A(_) | RData::Aaaa(_)))
            .count();
        prop_assert_eq!(msg.answer_addresses().len(), expected);
    }
}
