//! # sdoh-metrics — the fleet observability plane
//!
//! A lock-light metrics layer for the secure-DoH runtime: recording sites
//! hold atomic handles ([`Counter`], [`Gauge`], [`Histogram`]) and never
//! take a lock; the [`Registry`]'s mutex is touched only at registration
//! and scrape time. Latency histograms use fixed power-of-two buckets so
//! recording an observation on the serving hot path is two relaxed
//! `fetch_add`s and an integer log2 — no allocation, no float.
//!
//! On top of the registry sit:
//!
//! * the exporters — [`render_prometheus`] (text exposition) and
//!   [`render_json`], plus [`parse_prometheus`] for consuming other
//!   instances' output;
//! * a tiny HTTP stats listener ([`StatsServer`]) serving `/metrics`,
//!   `/metrics.json` and `/healthz` from a runtime, with [`http_get`] as
//!   the matching scrape client;
//! * fleet rollups ([`scrape_fleet`] / [`aggregate`]): counters summed,
//!   histograms bucket-merged, gauges averaged across N instances, with a
//!   per-instance health table.
//!
//! ```
//! use sdoh_metrics::{Registry, render_prometheus};
//! use std::time::Duration;
//!
//! let registry = Registry::new();
//! let queries = registry.counter("queries_total", "Queries served.");
//! let latency = registry.histogram("serve_latency_seconds", "Per-query latency.");
//! queries.inc();
//! latency.record(Duration::from_micros(120));
//!
//! let text = render_prometheus(&registry.gather());
//! assert!(text.contains("queries_total 1"));
//! let p99 = latency.snapshot().quantile(0.99).unwrap();
//! assert!(p99 >= Duration::from_micros(120)); // within one bucket above
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod export;
pub mod fleet;
pub mod histogram;
pub mod http;
pub mod metric;
pub mod registry;

pub use export::{parse_prometheus, render_json, render_prometheus, ParseError};
pub use fleet::{aggregate, scrape_fleet, FleetRollup, InstanceHealth, InstanceScrape};
pub use histogram::{
    bucket_bound, bucket_index, Histogram, HistogramSnapshot, BUCKETS, FINITE_BUCKETS,
};
pub use http::{http_get, Handler, HttpBody, HttpResponse, StatsServer};
pub use metric::{Counter, Gauge};
pub use registry::{
    find_sample, Collector, MetricKind, Registry, Sample, SampleMissing, SampleValue,
};
