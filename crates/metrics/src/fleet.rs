//! Fleet-wide rollups: aggregate scrapes from N runtime instances.
//!
//! The fleet aggregator polls each instance's `/metrics` endpoint, parses
//! the Prometheus text back into [`Sample`]s ([`crate::parse_prometheus`])
//! and folds them into one [`FleetRollup`]: counters summed, histograms
//! merged bucket-wise (gauges are averaged — they are levels, not
//! totals), plus a per-instance health table. [`scrape_fleet`] is the
//! network-facing wrapper the `fleet-aggregator` binary and E17 use.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::Duration;

use crate::export::{parse_prometheus, render_prometheus};
use crate::http::http_get;
use crate::registry::{Sample, SampleValue};

/// One instance's contribution to a fleet rollup.
#[derive(Debug, Clone)]
pub struct InstanceScrape {
    /// How the instance is identified in rollups (address, name, …).
    pub instance: String,
    /// Parsed samples from the instance's `/metrics`, if the scrape
    /// succeeded.
    pub samples: Option<Vec<Sample>>,
    /// `/healthz` verdict: `Some(true)` healthy, `Some(false)` degraded,
    /// `None` unreachable/not probed.
    pub healthy: Option<bool>,
    /// Human-readable detail (health body or scrape error).
    pub detail: String,
}

/// One row of the per-instance health table.
#[derive(Debug, Clone)]
pub struct InstanceHealth {
    /// Instance identifier.
    pub instance: String,
    /// Whether the scrape produced samples.
    pub scraped: bool,
    /// `/healthz` verdict (see [`InstanceScrape::healthy`]).
    pub healthy: Option<bool>,
    /// Number of series the instance exported.
    pub series: usize,
    /// Health body or error detail.
    pub detail: String,
}

/// The fleet-wide aggregate of a set of instance scrapes.
#[derive(Debug, Clone)]
pub struct FleetRollup {
    /// Merged series: counters summed, histograms bucket-merged, gauges
    /// averaged over the instances that exported them.
    pub samples: Vec<Sample>,
    /// Per-instance health table, in scrape order.
    pub health: Vec<InstanceHealth>,
}

impl FleetRollup {
    /// Instances that produced samples.
    pub fn instances_scraped(&self) -> usize {
        self.health.iter().filter(|h| h.scraped).count()
    }

    /// The summed value of a counter family across the fleet (all label
    /// sets), or `None` if no instance exported it.
    pub fn counter_total(&self, name: &str) -> Option<u64> {
        let mut found = false;
        let mut total = 0u64;
        for sample in &self.samples {
            if sample.name == name {
                if let SampleValue::Counter(v) = sample.value {
                    found = true;
                    total += v;
                }
            }
        }
        found.then_some(total)
    }

    /// The merged histogram for `name` across all label sets, or `None`.
    pub fn histogram_merged(&self, name: &str) -> Option<crate::HistogramSnapshot> {
        let mut merged: Option<crate::HistogramSnapshot> = None;
        for sample in &self.samples {
            if sample.name == name {
                if let SampleValue::Histogram(h) = &sample.value {
                    merged.get_or_insert_with(Default::default).merge(h);
                }
            }
        }
        merged
    }

    /// Renders the rollup as a Prometheus exposition plus a commented
    /// health table — the `fleet-aggregator` binary's output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("# Fleet rollup: ");
        out.push_str(&format!(
            "{}/{} instances scraped\n",
            self.instances_scraped(),
            self.health.len()
        ));
        for row in &self.health {
            out.push_str(&format!(
                "# instance {} scraped={} healthy={} series={} {}\n",
                row.instance,
                row.scraped,
                match row.healthy {
                    Some(true) => "yes",
                    Some(false) => "no",
                    None => "unknown",
                },
                row.series,
                row.detail.replace('\n', " ").trim()
            ));
        }
        out.push_str(&render_prometheus(&self.samples));
        out
    }
}

/// Folds instance scrapes into a [`FleetRollup`].
///
/// Series are keyed by `(name, labels)`: counters sum, histograms merge
/// bucket-wise, gauges average across the instances that exported the
/// series (a fleet-level queue depth is the mean depth, not the sum of
/// unrelated levels). Kind mismatches across instances keep the first
/// kind seen and ignore the conflicting sample.
pub fn aggregate(scrapes: &[InstanceScrape]) -> FleetRollup {
    // Same trade-off as `SampleValue`: the histogram variant dominates the
    // size, but folding happens once per scrape, not per query.
    #[allow(clippy::large_enum_variant)]
    #[derive(Clone)]
    enum Folded {
        Counter(u64),
        Gauge { sum: f64, n: u64 },
        Histogram(crate::HistogramSnapshot),
    }
    /// One series' identity across instances: metric name plus label set.
    type SeriesKey = (String, Vec<(String, String)>);
    let mut folded: BTreeMap<SeriesKey, (String, Folded)> = BTreeMap::new();
    let mut health = Vec::new();

    for scrape in scrapes {
        let series = scrape.samples.as_ref().map(|s| s.len()).unwrap_or(0);
        health.push(InstanceHealth {
            instance: scrape.instance.clone(),
            scraped: scrape.samples.is_some(),
            healthy: scrape.healthy,
            series,
            detail: scrape.detail.clone(),
        });
        let Some(samples) = &scrape.samples else {
            continue;
        };
        for sample in samples {
            let key = (sample.name.clone(), sample.labels.clone());
            match folded.get_mut(&key) {
                None => {
                    let value = match &sample.value {
                        SampleValue::Counter(v) => Folded::Counter(*v),
                        SampleValue::Gauge(v) => Folded::Gauge { sum: *v, n: 1 },
                        SampleValue::Histogram(h) => Folded::Histogram(*h),
                    };
                    folded.insert(key, (sample.help.clone(), value));
                }
                Some((help, value)) => {
                    if help.trim().is_empty() {
                        *help = sample.help.clone();
                    }
                    match (value, &sample.value) {
                        (Folded::Counter(total), SampleValue::Counter(v)) => *total += v,
                        (Folded::Gauge { sum, n }, SampleValue::Gauge(v)) => {
                            *sum += v;
                            *n += 1;
                        }
                        (Folded::Histogram(merged), SampleValue::Histogram(h)) => merged.merge(h),
                        _ => {} // kind conflict: keep the first kind seen
                    }
                }
            }
        }
    }

    let samples = folded
        .into_iter()
        .map(|((name, labels), (help, value))| Sample {
            name,
            help,
            labels,
            value: match value {
                Folded::Counter(v) => SampleValue::Counter(v),
                Folded::Gauge { sum, n } => SampleValue::Gauge(sum / n.max(1) as f64),
                Folded::Histogram(h) => SampleValue::Histogram(h),
            },
        })
        .collect();
    FleetRollup { samples, health }
}

/// Scrapes `/metrics` and `/healthz` from each address and aggregates.
/// Unreachable instances appear in the health table with `scraped:
/// false`; they never abort the rollup.
pub fn scrape_fleet(addrs: &[SocketAddr], timeout: Duration) -> FleetRollup {
    let scrapes: Vec<InstanceScrape> = addrs
        .iter()
        .map(|&addr| {
            let instance = addr.to_string();
            let healthy = http_get(addr, "/healthz", timeout)
                .ok()
                .map(|reply| reply.status == 200);
            match http_get(addr, "/metrics", timeout) {
                Ok(reply) if reply.status == 200 => match parse_prometheus(&reply.body) {
                    Ok(samples) => InstanceScrape {
                        instance,
                        samples: Some(samples),
                        healthy,
                        detail: String::new(),
                    },
                    Err(e) => InstanceScrape {
                        instance,
                        samples: None,
                        healthy,
                        detail: e.to_string(),
                    },
                },
                Ok(reply) => InstanceScrape {
                    instance,
                    samples: None,
                    healthy,
                    detail: format!("http {}", reply.status),
                },
                Err(e) => InstanceScrape {
                    instance,
                    samples: None,
                    healthy,
                    detail: e.to_string(),
                },
            }
        })
        .collect();
    aggregate(&scrapes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn instance(name: &str, queries: u64, micros: &[u64]) -> InstanceScrape {
        let registry = Registry::new();
        registry
            .counter("sdoh_queries_total", "Queries received.")
            .add(queries);
        registry
            .gauge("sdoh_cache_entries", "Entries cached.")
            .set(10.0);
        let h = registry.histogram("sdoh_serve_latency_seconds", "Serve latency.");
        for &m in micros {
            h.record(Duration::from_micros(m));
        }
        InstanceScrape {
            instance: name.to_string(),
            samples: Some(registry.gather()),
            healthy: Some(true),
            detail: String::new(),
        }
    }

    #[test]
    fn counters_sum_gauges_average_histograms_merge() {
        let down = InstanceScrape {
            instance: "c".to_string(),
            samples: None,
            healthy: None,
            detail: "connection refused".to_string(),
        };
        let rollup = aggregate(&[
            instance("a", 100, &[10, 10, 500]),
            instance("b", 40, &[20]),
            down,
        ]);
        assert_eq!(rollup.counter_total("sdoh_queries_total"), Some(140));
        assert_eq!(rollup.counter_total("missing"), None);
        let merged = rollup
            .histogram_merged("sdoh_serve_latency_seconds")
            .unwrap();
        assert_eq!(merged.count(), 4);
        let gauge = rollup
            .samples
            .iter()
            .find(|s| s.name == "sdoh_cache_entries")
            .unwrap();
        assert_eq!(gauge.value, SampleValue::Gauge(10.0));

        assert_eq!(rollup.instances_scraped(), 2);
        assert_eq!(rollup.health.len(), 3);
        assert!(!rollup.health[2].scraped);
        let rendered = rollup.render();
        assert!(rendered.contains("# Fleet rollup: 2/3 instances scraped"));
        assert!(rendered.contains("# instance c scraped=false healthy=unknown"));
        assert!(rendered.contains("sdoh_queries_total 140"));
    }

    #[test]
    fn rollup_survives_a_prometheus_round_trip() {
        // A rollup rendered by one aggregator can be consumed by another:
        // render → parse → aggregate over one "instance" is lossless for
        // counters and histogram buckets.
        let rollup = aggregate(&[instance("a", 7, &[100, 200])]);
        let reparsed = parse_prometheus(&render_prometheus(&rollup.samples)).unwrap();
        let again = aggregate(&[InstanceScrape {
            instance: "rollup".to_string(),
            samples: Some(reparsed),
            healthy: Some(true),
            detail: String::new(),
        }]);
        assert_eq!(again.counter_total("sdoh_queries_total"), Some(7));
        assert_eq!(
            again
                .histogram_merged("sdoh_serve_latency_seconds")
                .unwrap()
                .buckets,
            rollup
                .histogram_merged("sdoh_serve_latency_seconds")
                .unwrap()
                .buckets
        );
    }

    #[test]
    fn scrape_fleet_marks_unreachable_instances() {
        // Port 1 on localhost: nothing listens there.
        let rollup = scrape_fleet(
            &[SocketAddr::from(([127, 0, 0, 1], 1))],
            Duration::from_millis(100),
        );
        assert_eq!(rollup.instances_scraped(), 0);
        assert_eq!(rollup.health.len(), 1);
        assert!(!rollup.health[0].detail.is_empty());
    }
}
