//! A tiny HTTP/1.x stats listener and the matching client helper.
//!
//! [`StatsServer`] is deliberately minimal: one accept thread, blocking
//! handling of one short-lived request per connection, a handler closure
//! mapping request paths to `(status, content-type, body)`. It exists to
//! serve `/metrics`, `/metrics.json` and `/healthz` from a runtime — not
//! to be a web framework. [`http_get`] is the matching one-shot client the
//! fleet aggregator (and the experiments) scrape with.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A response from a [`StatsServer`] handler: status code, content type
/// and body.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code (200, 404, 503, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// A 200 with a plain-text body.
    pub fn ok_text(body: impl Into<String>) -> Self {
        HttpResponse {
            status: 200,
            content_type: "text/plain; version=0.0.4".to_string(),
            body: body.into(),
        }
    }

    /// A 200 with a JSON body.
    pub fn ok_json(body: impl Into<String>) -> Self {
        HttpResponse {
            status: 200,
            content_type: "application/json".to_string(),
            body: body.into(),
        }
    }

    /// An arbitrary-status plain-text response (404, 503, …).
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        HttpResponse {
            status,
            content_type: "text/plain".to_string(),
            body: body.into(),
        }
    }
}

/// Maps a request path (e.g. `/metrics`) to a response.
pub type Handler = Arc<dyn Fn(&str) -> HttpResponse + Send + Sync>;

/// The stats listener: binds a TCP socket, answers GETs via the handler.
pub struct StatsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl StatsServer {
    /// Binds `bind` (use port 0 for an ephemeral port) and starts serving.
    pub fn start(bind: SocketAddr, handler: Handler) -> std::io::Result<StatsServer> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        // Nonblocking accept so the loop can observe the stop flag without
        // needing a wake-up connection.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("sdoh-stats".to_string())
            .spawn(move || accept_loop(listener, handler, stop_flag))?;
        Ok(StatsServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for StatsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for StatsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatsServer")
            .field("addr", &self.addr)
            .finish()
    }
}

fn accept_loop(listener: TcpListener, handler: Handler, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Stats requests are tiny; handle inline rather than
                // spawning per connection.
                let _ = handle_connection(stream, &handler);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn handle_connection(mut stream: TcpStream, handler: &Handler) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 4096];
    let mut request = Vec::new();
    // Read until the end of the request head (stats GETs carry no body).
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        request.extend_from_slice(buf.get(..n).unwrap_or(&[]));
        if request.windows(4).any(|w| w == b"\r\n\r\n") || request.len() > 16 * 1024 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&request);
    let response = match parse_request_path(&head) {
        Some(path) => handler(&path),
        None => HttpResponse::text(400, "bad request\n"),
    };
    let reason = match response.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "Status",
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason,
        response.content_type,
        response.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

fn parse_request_path(head: &str) -> Option<String> {
    let request_line = head.lines().next()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    (method == "GET").then(|| path.split('?').next().unwrap_or(path).to_string())
}

/// The body returned by [`http_get`], with its status code.
#[derive(Debug, Clone)]
pub struct HttpBody {
    /// HTTP status code of the reply.
    pub status: u16,
    /// Reply body.
    pub body: String,
}

/// One-shot HTTP GET against a stats listener. Used by the fleet
/// aggregator and the experiments to scrape `/metrics` endpoints.
pub fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> std::io::Result<HttpBody> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut reply = String::new();
    stream.read_to_string(&mut reply)?;
    let (head, body) = reply.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "no header/body separator")
    })?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;
    Ok(HttpBody {
        status,
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn local(port: u16) -> SocketAddr {
        SocketAddr::from(([127, 0, 0, 1], port))
    }

    #[test]
    fn serves_paths_through_the_handler() {
        let handler: Handler = Arc::new(|path| match path {
            "/metrics" => HttpResponse::ok_text("queries_total 5\n"),
            "/healthz" => HttpResponse::text(503, "degraded\n"),
            _ => HttpResponse::text(404, "not found\n"),
        });
        let mut server = StatsServer::start(local(0), handler).unwrap();
        let addr = server.addr();
        assert_ne!(addr.port(), 0);

        let metrics = http_get(addr, "/metrics", Duration::from_secs(2)).unwrap();
        assert_eq!(metrics.status, 200);
        assert_eq!(metrics.body, "queries_total 5\n");
        // Query strings are stripped before dispatch.
        let with_query = http_get(addr, "/metrics?x=1", Duration::from_secs(2)).unwrap();
        assert_eq!(with_query.status, 200);
        let health = http_get(addr, "/healthz", Duration::from_secs(2)).unwrap();
        assert_eq!(health.status, 503);
        assert_eq!(health.body, "degraded\n");
        let missing = http_get(addr, "/nope", Duration::from_secs(2)).unwrap();
        assert_eq!(missing.status, 404);

        server.shutdown();
        // After shutdown the port stops answering (connect or read fails).
        assert!(http_get(addr, "/metrics", Duration::from_millis(200)).is_err());
    }

    #[test]
    fn rejects_non_get_requests() {
        let handler: Handler = Arc::new(|_| HttpResponse::ok_text("ok"));
        let server = StatsServer::start(local(0), handler).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
    }
}
