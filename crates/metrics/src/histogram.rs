//! Fixed-bucket log-scale latency histograms.
//!
//! The serving hot path cannot afford allocation, locking or floating-point
//! work per query, so the histogram is a fixed array of power-of-two
//! latency buckets bumped with relaxed atomics: recording one observation
//! is a handful of `fetch_add`s on cache lines owned by the recording
//! shard. Percentile extraction ([`HistogramSnapshot::quantile`]) and
//! cross-shard aggregation ([`HistogramSnapshot::merge`]) happen on
//! consistent point-in-time copies taken off the hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of finite buckets: bucket `i` covers `(2^(i-1), 2^i]` µs
/// (bucket 0 covers `0..=1` µs), so the finite range tops out at
/// `2^26` µs ≈ 67 s.
pub const FINITE_BUCKETS: usize = 27;

/// Total bucket count: the finite buckets plus the overflow bucket for
/// observations beyond the largest finite bound.
pub const BUCKETS: usize = FINITE_BUCKETS + 1;

/// Upper bound of finite bucket `i` in microseconds (`2^i`).
fn bound_micros(index: usize) -> u64 {
    1u64 << index
}

/// The bucket an observation falls into: `ceil(log2(µs))`, clamped to the
/// overflow bucket. Integer-only — no float math on the hot path.
pub fn bucket_index(value: Duration) -> usize {
    let micros = u64::try_from(value.as_micros()).unwrap_or(u64::MAX);
    if micros <= 1 {
        return 0;
    }
    let index = (64 - (micros - 1).leading_zeros()) as usize; // sdoh-lint: allow(no-narrowing-cast, "64 minus leading_zeros is at most 64, far inside usize")
    index.min(FINITE_BUCKETS) // past the last finite bound: overflow
}

/// Upper bound of bucket `index` (`None` for the overflow bucket).
pub fn bucket_bound(index: usize) -> Option<Duration> {
    (index < FINITE_BUCKETS).then(|| Duration::from_micros(bound_micros(index)))
}

/// A shareable latency histogram handle.
///
/// Clones share the same underlying buckets (the handle is an `Arc`), so a
/// shard worker can own one clone and bump it lock-free while an exporter
/// holds another clone and snapshots it. All operations use relaxed
/// atomics: totals are exact once the writers quiesce, and during live
/// recording a snapshot may lag individual bumps by a few observations —
/// fine for an observability surface, never for an audit log.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

#[derive(Debug, Default)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    sum_nanos: AtomicU64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one latency observation: two relaxed `fetch_add`s and an
    /// integer log2 — no allocation, no lock, no float.
    pub fn record(&self, value: Duration) {
        self.inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed); // sdoh-lint: allow(no-panic, "bucket_index clamps to the overflow bucket, always below BUCKETS")
        self.inner.sum_nanos.fetch_add(
            u64::try_from(value.as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
    }

    /// Takes a point-in-time copy for merging and percentile extraction.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.inner.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum_nanos: self.inner.sum_nanos.load(Ordering::Relaxed),
        }
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }
}

/// An immutable point-in-time copy of a [`Histogram`], the unit of
/// cross-shard (and cross-instance) aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded values in nanoseconds (saturating).
    pub sum_nanos: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            sum_nanos: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Observations that fell beyond the largest finite bound.
    pub fn overflow(&self) -> u64 {
        self.buckets.last().copied().unwrap_or(0)
    }

    /// Mean recorded latency (`None` when empty).
    pub fn mean(&self) -> Option<Duration> {
        let count = self.count();
        (count > 0).then(|| Duration::from_nanos(self.sum_nanos / count))
    }

    /// Adds `other`'s buckets into `self` — merging shard histograms into
    /// an instance histogram, or instance histograms into a fleet one.
    /// Associative and commutative, so merge order never changes totals or
    /// extracted percentiles.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += *theirs;
        }
        self.sum_nanos = self.sum_nanos.saturating_add(other.sum_nanos);
    }

    /// Extracts the `q`-quantile (`0.0..=1.0`) as the upper bound of the
    /// bucket holding the rank-`ceil(q·count)` observation — the true
    /// quantile lies within that bucket, i.e. within one power-of-two
    /// bucket of the returned value. Observations in the overflow bucket
    /// report twice the largest finite bound. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count); // sdoh-lint: allow(no-narrowing-cast, "q is clamped to [0, 1], so the ceiling is at most count")
        let mut cumulative = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= rank {
                return Some(match bucket_bound(index) {
                    Some(bound) => bound,
                    None => Duration::from_micros(bound_micros(FINITE_BUCKETS)),
                });
            }
        }
        // Unreachable in practice — rank is clamped to the total count, so
        // the loop always crosses it; the overflow bound is the defensive
        // answer.
        Some(Duration::from_micros(bound_micros(FINITE_BUCKETS)))
    }

    /// The p50 / p99 / p999 triple every latency surface reports.
    pub fn percentiles(&self) -> Option<(Duration, Duration, Duration)> {
        Some((
            self.quantile(0.50)?,
            self.quantile(0.99)?,
            self.quantile(0.999)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_ceil_log2_micros() {
        assert_eq!(bucket_index(Duration::ZERO), 0);
        assert_eq!(bucket_index(Duration::from_micros(1)), 0);
        assert_eq!(bucket_index(Duration::from_micros(2)), 1);
        assert_eq!(bucket_index(Duration::from_micros(3)), 2);
        assert_eq!(bucket_index(Duration::from_micros(4)), 2);
        assert_eq!(bucket_index(Duration::from_micros(5)), 3);
        assert_eq!(bucket_index(Duration::from_millis(1)), 10);
        // Bucket bounds bracket their members.
        for micros in [1u64, 7, 100, 4096, 1_000_000] {
            let value = Duration::from_micros(micros);
            let index = bucket_index(value);
            let upper = bucket_bound(index).unwrap();
            assert!(value <= upper, "{micros}µs above its bucket bound");
            if index > 0 {
                assert!(value > bucket_bound(index - 1).unwrap());
            }
        }
        // Beyond the largest finite bound: overflow bucket.
        assert_eq!(bucket_index(Duration::from_secs(68)), FINITE_BUCKETS);
        assert_eq!(bucket_index(Duration::from_secs(1 << 40)), FINITE_BUCKETS);
    }

    #[test]
    fn record_and_snapshot_round_trip() {
        let histogram = Histogram::new();
        let writer = histogram.clone();
        writer.record(Duration::from_micros(3));
        writer.record(Duration::from_micros(900));
        writer.record(Duration::from_secs(120)); // overflow
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count(), 3);
        assert_eq!(histogram.count(), 3);
        assert_eq!(snapshot.overflow(), 1);
        assert_eq!(snapshot.buckets[bucket_index(Duration::from_micros(3))], 1);
        assert_eq!(
            snapshot.mean().unwrap(),
            Duration::from_nanos((3_000 + 900_000 + 120_000_000_000) / 3)
        );
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let histogram = Histogram::new();
        // 99 fast observations and one slow one: p50 stays fast, p99 is
        // pulled to the fast cluster's bound, p999 reaches the outlier.
        for _ in 0..99 {
            histogram.record(Duration::from_micros(10));
        }
        histogram.record(Duration::from_millis(50));
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.quantile(0.50).unwrap(), Duration::from_micros(16));
        assert_eq!(snapshot.quantile(0.99).unwrap(), Duration::from_micros(16));
        assert_eq!(
            snapshot.quantile(0.999).unwrap(),
            bucket_bound(bucket_index(Duration::from_millis(50))).unwrap()
        );
        let (p50, p99, p999) = snapshot.percentiles().unwrap();
        assert!(p50 <= p99 && p99 <= p999);
        assert_eq!(HistogramSnapshot::default().quantile(0.99), None);
    }

    #[test]
    fn merge_is_associative_and_commutative_across_shards() {
        // Three "shard" histograms with disjoint latency profiles, one of
        // them overflowing the finite range.
        let shard = |micros: &[u64]| {
            let histogram = Histogram::new();
            for &m in micros {
                histogram.record(Duration::from_micros(m));
            }
            histogram.snapshot()
        };
        let a = shard(&[5, 9, 13]);
        let b = shard(&[900, 1100]);
        let c = shard(&[200_000_000]); // ≈ 200 s: overflow bucket

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) == c ⊕ b ⊕ a, bucket for bucket.
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        let mut reversed = c;
        reversed.merge(&b);
        reversed.merge(&a);
        assert_eq!(left, right);
        assert_eq!(left, reversed);

        // Totals, overflow and extracted percentiles survive the merge.
        assert_eq!(left.count(), 6);
        assert_eq!(left.overflow(), 1);
        assert_eq!(left.mean(), reversed.mean());
        assert_eq!(left.quantile(0.50).unwrap(), Duration::from_micros(16));
        assert_eq!(
            left.quantile(1.0).unwrap(),
            Duration::from_micros(bound_micros(FINITE_BUCKETS)),
            "the max lives in the overflow bucket"
        );

        // Merging an empty snapshot is the identity.
        let mut with_empty = left;
        with_empty.merge(&HistogramSnapshot::default());
        assert_eq!(with_empty, left);
    }

    #[test]
    fn overflow_quantile_reports_past_the_finite_range() {
        let histogram = Histogram::new();
        histogram.record(Duration::from_secs(3600));
        let q = histogram.snapshot().quantile(0.99).unwrap();
        assert!(q > bucket_bound(FINITE_BUCKETS - 1).unwrap());
    }
}
