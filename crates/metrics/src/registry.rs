//! The metrics registry: named, labelled, help-annotated metric families.
//!
//! Recording stays lock-free — handles returned by registration are
//! atomics shared with the recording site — and the registry's own lock is
//! touched only at registration and scrape time (*lock-light*): the hot
//! path never sees it.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::metric::{Counter, Gauge};

/// What kind of time series a sample belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing.
    Counter,
    /// Free-moving scalar.
    Gauge,
    /// Bucketed latency distribution.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A sample's value.
///
/// The histogram variant is an order of magnitude larger than the scalar
/// ones, but samples exist only on the scrape path (gather/render/parse),
/// never per query, so the footprint is irrelevant and boxing would only
/// add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Counter total.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// One scraped time series: a metric name, its metadata, one label set and
/// the current value. The unit both exporters render and the fleet
/// aggregator consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric family name (`snake_case`, e.g. `sdoh_queries_total`).
    pub name: String,
    /// Help string shown in the Prometheus exposition.
    pub help: String,
    /// Label pairs identifying this series within the family.
    pub labels: Vec<(String, String)>,
    /// The current value.
    pub value: SampleValue,
}

impl Sample {
    /// The sample's kind, implied by its value.
    pub fn kind(&self) -> MetricKind {
        match self.value {
            SampleValue::Counter(_) => MetricKind::Counter,
            SampleValue::Gauge(_) => MetricKind::Gauge,
            SampleValue::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// Error of [`find_sample`]: the requested metric name is absent from a
/// sample set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleMissing {
    /// The name that was looked up.
    pub name: String,
}

impl std::fmt::Display for SampleMissing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no sample named `{}` in the scrape", self.name)
    }
}

impl std::error::Error for SampleMissing {}

/// Finds the first sample with the given family name, reporting which
/// name was missing instead of panicking — the lookup exporters, tests
/// and reconcilers should use rather than `unwrap_or_else(|| panic!(...))`.
pub fn find_sample<'a>(samples: &'a [Sample], name: &str) -> Result<&'a Sample, SampleMissing> {
    samples
        .iter()
        .find(|sample| sample.name == name)
        .ok_or_else(|| SampleMissing {
            name: name.to_string(),
        })
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Registered {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    metric: Metric,
}

/// A collector is polled at scrape time for samples the registry does not
/// own directly — e.g. the serving shards' snapshot counters, which live
/// inside worker threads and are fetched over a channel per scrape.
pub type Collector = Box<dyn Fn() -> Vec<Sample> + Send + Sync>;

/// The registry. Cheap to clone (handles share one store); `Send + Sync`.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Inner>>,
}

#[derive(Default)]
struct Inner {
    metrics: Vec<Registered>,
    collectors: Vec<Collector>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The store lock, recovering from poisoning: a panic in one
    /// registration (a programmer error, by contract) must not wedge every
    /// later scrape.
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Registers a counter without labels. See [`Registry::counter_with`].
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers a labelled counter and returns the recording handle.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric name or a duplicate `(name, labels)`
    /// registration — both programmer errors. An empty help string is
    /// accepted but flagged by [`Registry::lint`].
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let counter = Counter::new();
        self.insert(name, help, labels, Metric::Counter(counter.clone()));
        counter
    }

    /// Registers a gauge without labels.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers a labelled gauge and returns the recording handle.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let gauge = Gauge::new();
        self.insert(name, help, labels, Metric::Gauge(gauge.clone()));
        gauge
    }

    /// Registers a histogram without labels.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Registers a labelled histogram and returns the recording handle.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        let histogram = Histogram::new();
        self.insert(name, help, labels, Metric::Histogram(histogram.clone()));
        histogram
    }

    /// Registers a scrape-time collector (see [`Collector`]).
    pub fn register_collector(&self, collector: Collector) {
        self.lock().collectors.push(collector);
    }

    fn insert(&self, name: &str, help: &str, labels: &[(&str, &str)], metric: Metric) {
        assert!(
            valid_metric_name(name),
            "invalid metric name {name:?}: use [a-zA-Z_][a-zA-Z0-9_]*"
        );
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| {
                assert!(
                    valid_metric_name(k),
                    "invalid label name {k:?} on metric {name:?}"
                );
                (k.to_string(), v.to_string())
            })
            .collect();
        let mut inner = self.lock();
        assert!(
            !inner
                .metrics
                .iter()
                .any(|m| m.name == name && m.labels == labels),
            "metric {name:?} with labels {labels:?} registered twice"
        );
        inner.metrics.push(Registered {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            metric,
        });
    }

    /// Takes one scrape: every owned metric's current value plus every
    /// collector's output, sorted by `(name, labels)` so renderings are
    /// deterministic.
    pub fn gather(&self) -> Vec<Sample> {
        let inner = self.lock();
        let mut samples: Vec<Sample> = inner
            .metrics
            .iter()
            .map(|registered| Sample {
                name: registered.name.clone(),
                help: registered.help.clone(),
                labels: registered.labels.clone(),
                value: match &registered.metric {
                    Metric::Counter(c) => SampleValue::Counter(c.get()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                    Metric::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        for collector in &inner.collectors {
            samples.extend(collector());
        }
        samples.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        samples
    }

    /// Lints the registry (and one gathered scrape, covering collectors):
    /// returns the names of series whose help string is empty. CI runs this
    /// against the full runtime registry so every public counter ships with
    /// operator-readable documentation.
    pub fn lint(&self) -> Vec<String> {
        let mut missing: Vec<String> = self
            .gather()
            .iter()
            .filter(|sample| sample.help.trim().is_empty())
            .map(|sample| sample.name.clone())
            .collect();
        missing.dedup();
        missing
    }

    /// Help strings by family name from one scrape (diagnostics, tests).
    pub fn help_index(&self) -> BTreeMap<String, String> {
        self.gather()
            .into_iter()
            .map(|sample| (sample.name, sample.help))
            .collect()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("Registry")
            .field("metrics", &inner.metrics.len())
            .field("collectors", &inner.collectors.len())
            .finish()
    }
}

/// Prometheus metric/label name shape.
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn gather_reflects_live_handles_and_sorts() {
        let registry = Registry::new();
        let queries = registry.counter("queries_total", "Queries served.");
        let depth = registry.gauge("queue_depth", "Work items queued.");
        let latency = registry.histogram("latency_seconds", "Serve latency.");
        queries.add(3);
        depth.set(2.0);
        latency.record(Duration::from_micros(100));

        let samples = registry.gather();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].name, "latency_seconds");
        assert_eq!(samples[0].kind(), MetricKind::Histogram);
        assert_eq!(samples[1].value, SampleValue::Counter(3));
        assert_eq!(samples[2].value, SampleValue::Gauge(2.0));
        assert!(registry.lint().is_empty());
        assert_eq!(registry.help_index()["queries_total"], "Queries served.");
    }

    #[test]
    fn labels_distinguish_series_and_duplicates_panic() {
        let registry = Registry::new();
        let a = registry.counter_with(
            "shard_queries_total",
            "Per-shard queries.",
            &[("shard", "0")],
        );
        let b = registry.counter_with(
            "shard_queries_total",
            "Per-shard queries.",
            &[("shard", "1")],
        );
        a.inc();
        b.add(2);
        let samples = registry.gather();
        assert_eq!(
            samples[0].labels,
            vec![("shard".to_string(), "0".to_string())]
        );
        assert_eq!(samples[0].value, SampleValue::Counter(1));
        assert_eq!(samples[1].value, SampleValue::Counter(2));

        let duplicate = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            registry.counter_with("shard_queries_total", "again", &[("shard", "0")])
        }));
        assert!(duplicate.is_err(), "duplicate series must panic");
        let bad_name = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            registry.counter("0bad", "help")
        }));
        assert!(bad_name.is_err(), "invalid name must panic");
    }

    #[test]
    fn collectors_feed_the_scrape_and_the_lint() {
        let registry = Registry::new();
        registry.register_collector(Box::new(|| {
            vec![Sample {
                name: "collected_total".to_string(),
                help: String::new(), // deliberately missing
                labels: Vec::new(),
                value: SampleValue::Counter(9),
            }]
        }));
        let samples = registry.gather();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].value, SampleValue::Counter(9));
        assert_eq!(registry.lint(), vec!["collected_total".to_string()]);
    }

    #[test]
    fn find_sample_reports_the_missing_name_instead_of_panicking() {
        let registry = Registry::new();
        registry.counter("present_total", "here").inc();
        let samples = registry.gather();
        assert_eq!(
            find_sample(&samples, "present_total").map(|s| s.value.clone()),
            Ok(SampleValue::Counter(1))
        );
        let missing = find_sample(&samples, "absent_total");
        assert_eq!(
            missing,
            Err(SampleMissing {
                name: "absent_total".to_string()
            })
        );
        assert_eq!(
            missing.map(|_| ()).unwrap_err().to_string(),
            "no sample named `absent_total` in the scrape"
        );
    }
}
