//! The scalar metric handles: monotonic [`Counter`]s and [`Gauge`]s.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
///
/// Clones share the same cell, so the recording site keeps one handle and
/// the registry another. All operations are relaxed atomics — safe from
/// any thread, never a lock.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta` (counters only ever go up).
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move in both directions (queue depths, entry
/// counts, ratios). Stored as `f64` bits in an atomic cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the current value.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_one_cell() {
        let counter = Counter::new();
        let writer = counter.clone();
        writer.inc();
        writer.add(41);
        assert_eq!(counter.get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let gauge = Gauge::new();
        assert_eq!(gauge.get(), 0.0);
        gauge.set(7.5);
        assert_eq!(gauge.get(), 7.5);
        gauge.set(-1.25);
        assert_eq!(gauge.get(), -1.25);
    }
}
