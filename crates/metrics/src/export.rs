//! Rendering and parsing the export formats.
//!
//! * [`render_prometheus`] — the Prometheus text exposition format
//!   (`# HELP`/`# TYPE` headers, cumulative `_bucket{le=…}` histogram
//!   series with `_sum`/`_count`, label escaping);
//! * [`render_json`] — the same scrape as a JSON document for programmatic
//!   consumers;
//! * [`parse_prometheus`] — the inverse of [`render_prometheus`], used by
//!   the fleet aggregator to consume other instances' `/metrics` output
//!   and re-assemble histogram snapshots for merging.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::histogram::{bucket_bound, HistogramSnapshot, BUCKETS};
use crate::registry::{MetricKind, Sample, SampleValue};

/// Renders one scrape in the Prometheus text exposition format.
pub fn render_prometheus(samples: &[Sample]) -> String {
    let mut out = String::new();
    let mut last_family: Option<&str> = None;
    for sample in samples {
        if last_family != Some(sample.name.as_str()) {
            if !sample.help.trim().is_empty() {
                out.push_str(&format!(
                    "# HELP {} {}\n",
                    sample.name,
                    escape_help(&sample.help)
                ));
            }
            out.push_str(&format!(
                "# TYPE {} {}\n",
                sample.name,
                sample.kind().as_str()
            ));
            last_family = Some(sample.name.as_str());
        }
        match &sample.value {
            SampleValue::Counter(v) => {
                out.push_str(&format!(
                    "{}{} {v}\n",
                    sample.name,
                    render_labels(&sample.labels, None)
                ));
            }
            SampleValue::Gauge(v) => {
                out.push_str(&format!(
                    "{}{} {v}\n",
                    sample.name,
                    render_labels(&sample.labels, None)
                ));
            }
            SampleValue::Histogram(snapshot) => {
                let mut cumulative = 0u64;
                for (index, count) in snapshot.buckets.iter().enumerate() {
                    cumulative += count;
                    let le = match bucket_bound(index) {
                        Some(bound) => format_seconds(bound),
                        None => "+Inf".to_string(),
                    };
                    out.push_str(&format!(
                        "{}_bucket{} {cumulative}\n",
                        sample.name,
                        render_labels(&sample.labels, Some(&le))
                    ));
                }
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    sample.name,
                    render_labels(&sample.labels, None),
                    Duration::from_nanos(snapshot.sum_nanos).as_secs_f64()
                ));
                out.push_str(&format!(
                    "{}_count{} {cumulative}\n",
                    sample.name,
                    render_labels(&sample.labels, None)
                ));
            }
        }
    }
    out
}

/// Renders one scrape as a JSON document: an array of series objects, with
/// histograms carried as explicit bucket arrays plus extracted
/// p50/p99/p999.
pub fn render_json(samples: &[Sample]) -> String {
    let mut out = String::from("{\n  \"metrics\": [\n");
    for (i, sample) in samples.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": {},\n", json_string(&sample.name)));
        out.push_str(&format!(
            "      \"kind\": {},\n",
            json_string(sample.kind().as_str())
        ));
        out.push_str(&format!("      \"help\": {},\n", json_string(&sample.help)));
        out.push_str("      \"labels\": {");
        for (j, (k, v)) in sample.labels.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", json_string(k), json_string(v)));
        }
        out.push_str("},\n");
        match &sample.value {
            SampleValue::Counter(v) => out.push_str(&format!("      \"value\": {v}\n")),
            SampleValue::Gauge(v) => out.push_str(&format!(
                "      \"value\": {}\n",
                if v.is_finite() {
                    format!("{v}")
                } else {
                    "null".to_string()
                }
            )),
            SampleValue::Histogram(snapshot) => {
                out.push_str("      \"buckets\": [");
                for (j, count) in snapshot.buckets.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&count.to_string());
                }
                out.push_str("],\n");
                out.push_str(&format!(
                    "      \"count\": {},\n      \"sum_seconds\": {},\n",
                    snapshot.count(),
                    Duration::from_nanos(snapshot.sum_nanos).as_secs_f64()
                ));
                let quantile = |q: f64| {
                    snapshot
                        .quantile(q)
                        .map(|d| format!("{}", d.as_secs_f64()))
                        .unwrap_or_else(|| "null".to_string())
                };
                out.push_str(&format!(
                    "      \"p50\": {}, \"p99\": {}, \"p999\": {}\n",
                    quantile(0.50),
                    quantile(0.99),
                    quantile(0.999)
                ));
            }
        }
        out.push_str(if i + 1 == samples.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// A parse failure of [`parse_prometheus`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The offending line (1-based) and what was wrong with it.
    pub detail: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "prometheus parse error: {}", self.detail)
    }
}

impl std::error::Error for ParseError {}

/// Parses a Prometheus text exposition back into [`Sample`]s — the fleet
/// aggregator's input path. Counter/gauge kinds come from the `# TYPE`
/// headers; `_bucket`/`_sum`/`_count` series of a histogram family are
/// re-assembled into [`HistogramSnapshot`]s (the bucket layout is this
/// crate's own, so `le` bounds map back onto bucket indexes exactly).
pub fn parse_prometheus(text: &str) -> Result<Vec<Sample>, ParseError> {
    let mut kinds: BTreeMap<String, MetricKind> = BTreeMap::new();
    let mut helps: BTreeMap<String, String> = BTreeMap::new();
    let mut scalars: Vec<Sample> = Vec::new();
    // (family, labels-without-le) -> partially assembled histogram.
    let mut histograms: BTreeMap<(String, Vec<(String, String)>), PartialHistogram> =
        BTreeMap::new();

    for (number, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                return Err(error(number, "malformed TYPE line"));
            };
            let kind = match kind {
                "counter" => MetricKind::Counter,
                "gauge" => MetricKind::Gauge,
                "histogram" => MetricKind::Histogram,
                other => return Err(error(number, &format!("unknown metric type {other:?}"))),
            };
            kinds.insert(name.to_string(), kind);
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            if let Some((name, help)) = rest.split_once(' ') {
                helps.insert(name.to_string(), help.to_string());
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }

        let (series, labels, value) = parse_series_line(line)
            .ok_or_else(|| error(number, &format!("malformed sample line {line:?}")))?;

        // Histogram component series?
        let family_of = |suffix: &str| -> Option<String> {
            let family = series.strip_suffix(suffix)?;
            (kinds.get(family) == Some(&MetricKind::Histogram)).then(|| family.to_string())
        };
        if let Some(family) = family_of("_bucket") {
            let mut le = None;
            let rest: Vec<(String, String)> = labels
                .into_iter()
                .filter(|(k, v)| {
                    if k == "le" {
                        le = Some(v.clone());
                        false
                    } else {
                        true
                    }
                })
                .collect();
            let le = le.ok_or_else(|| error(number, "_bucket series without le label"))?;
            let cumulative = as_count(value);
            let partial = histograms.entry((family, rest)).or_default();
            let index = bucket_index_for_le(&le)
                .ok_or_else(|| error(number, &format!("unknown bucket bound le={le:?}")))?;
            if let Some(slot) = partial.cumulative.get_mut(index) {
                *slot = Some(cumulative);
            }
        } else if let Some(family) = family_of("_sum") {
            histograms.entry((family, labels)).or_default().sum_seconds = value;
        } else if let Some(family) = family_of("_count") {
            histograms.entry((family, labels)).or_default().count = Some(as_count(value));
        } else {
            let kind = kinds.get(&series).copied().unwrap_or(MetricKind::Gauge);
            scalars.push(Sample {
                help: helps.get(&series).cloned().unwrap_or_default(),
                name: series,
                labels,
                value: match kind {
                    MetricKind::Counter => SampleValue::Counter(as_count(value)),
                    _ => SampleValue::Gauge(value),
                },
            });
        }
    }

    let mut samples = scalars;
    for ((family, labels), partial) in histograms {
        let snapshot = partial.finish().map_err(|detail| ParseError {
            detail: format!("histogram {family}: {detail}"),
        })?;
        samples.push(Sample {
            help: helps.get(&family).cloned().unwrap_or_default(),
            name: family,
            labels,
            value: SampleValue::Histogram(snapshot),
        });
    }
    samples.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    Ok(samples)
}

/// A counter value parsed from exposition text. Float-to-int `as` casts
/// saturate at the integer range and map NaN to zero, so any parsed value
/// converts without surprises.
fn as_count(value: f64) -> u64 {
    value as u64 // sdoh-lint: allow(no-narrowing-cast, "float-to-int as-casts saturate and map NaN to zero")
}

fn error(line_number: usize, detail: &str) -> ParseError {
    ParseError {
        detail: format!("line {}: {detail}", line_number + 1),
    }
}

#[derive(Default)]
struct PartialHistogram {
    cumulative: [Option<u64>; BUCKETS],
    sum_seconds: f64,
    count: Option<u64>,
}

impl PartialHistogram {
    fn finish(self) -> Result<HistogramSnapshot, String> {
        let mut buckets = [0u64; BUCKETS];
        let mut previous = 0u64;
        for (index, slot) in self.cumulative.iter().enumerate() {
            let cumulative = slot.ok_or_else(|| format!("missing bucket {index}"))?;
            let delta = cumulative
                .checked_sub(previous)
                .ok_or_else(|| format!("non-cumulative bucket {index}"))?;
            if let Some(bucket) = buckets.get_mut(index) {
                *bucket = delta;
            }
            previous = cumulative;
        }
        if let Some(count) = self.count {
            if count != previous {
                return Err(format!("count {count} != +Inf bucket {previous}"));
            }
        }
        Ok(HistogramSnapshot {
            buckets,
            sum_nanos: as_count((self.sum_seconds * 1e9).round()),
        })
    }
}

/// Parts of one exposition line: name, label pairs, value.
type ParsedSeries = (String, Vec<(String, String)>, f64);

/// `name{labels} value` → parts. `None` on malformed lines.
fn parse_series_line(line: &str) -> Option<ParsedSeries> {
    let (name_and_labels, value) = line.rsplit_once(' ')?;
    let value: f64 = value.trim().parse().ok()?;
    let name_and_labels = name_and_labels.trim();
    if let Some((name, rest)) = name_and_labels.split_once('{') {
        let body = rest.strip_suffix('}')?;
        let mut labels = Vec::new();
        for pair in split_label_pairs(body) {
            if pair.is_empty() {
                continue;
            }
            let (key, quoted) = pair.split_once('=')?;
            let unquoted = quoted.strip_prefix('"')?.strip_suffix('"')?;
            labels.push((key.trim().to_string(), unescape_label(unquoted)));
        }
        Some((name.to_string(), labels, value))
    } else {
        Some((name_and_labels.to_string(), Vec::new(), value))
    }
}

/// Splits `k1="v1",k2="v2"` on commas outside quotes.
fn split_label_pairs(body: &str) -> Vec<String> {
    let mut pairs = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut escaped = false;
    for c in body.chars() {
        if escaped {
            current.push(c);
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => {
                current.push(c);
                escaped = true;
            }
            '"' => {
                in_quotes = !in_quotes;
                current.push(c);
            }
            ',' if !in_quotes => {
                pairs.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.is_empty() {
        pairs.push(current);
    }
    pairs
}

/// The bucket index whose rendered `le` equals `le` (`+Inf` → overflow).
fn bucket_index_for_le(le: &str) -> Option<usize> {
    if le == "+Inf" {
        return Some(BUCKETS - 1);
    }
    (0..BUCKETS - 1)
        .find(|&index| bucket_bound(index).is_some_and(|bound| format_seconds(bound) == le))
}

fn format_seconds(duration: Duration) -> String {
    format!("{}", duration.as_secs_f64())
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (key, value) in labels {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("{key}=\"{}\"", escape_label(value)));
        first = false;
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("le=\"{le}\""));
    }
    out.push('}');
    out
}

fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn unescape_label(value: &str) -> String {
    let mut out = String::new();
    let mut chars = value.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn escape_help(value: &str) -> String {
    value.replace('\\', "\\\\").replace('\n', "\\n")
}

fn json_string(value: &str) -> String {
    let mut out = String::from("\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn scrape() -> Vec<Sample> {
        let registry = Registry::new();
        let queries = registry.counter_with(
            "sdoh_queries_total",
            "Queries received.",
            &[("instance", "a")],
        );
        let depth = registry.gauge("sdoh_pending_refreshes", "Refreshes queued.");
        let latency = registry.histogram_with(
            "sdoh_serve_latency_seconds",
            "Per-query serve latency.",
            &[("shard", "0")],
        );
        queries.add(12);
        depth.set(3.0);
        for micros in [5u64, 5, 90, 90, 90, 2000] {
            latency.record(Duration::from_micros(micros));
        }
        registry.gather()
    }

    #[test]
    fn prometheus_rendering_has_headers_buckets_and_escaping() {
        let text = render_prometheus(&scrape());
        assert!(text.contains("# HELP sdoh_queries_total Queries received.\n"));
        assert!(text.contains("# TYPE sdoh_queries_total counter\n"));
        assert!(text.contains("sdoh_queries_total{instance=\"a\"} 12\n"));
        assert!(text.contains("# TYPE sdoh_serve_latency_seconds histogram\n"));
        assert!(text.contains("sdoh_serve_latency_seconds_bucket{shard=\"0\",le=\"+Inf\"} 6\n"));
        assert!(text.contains("sdoh_serve_latency_seconds_count{shard=\"0\"} 6\n"));
        assert!(text.contains("sdoh_pending_refreshes 3\n"));

        let weird = vec![Sample {
            name: "weird".to_string(),
            help: "multi\nline".to_string(),
            labels: vec![("path".to_string(), "a\"b\\c".to_string())],
            value: SampleValue::Counter(1),
        }];
        let text = render_prometheus(&weird);
        assert!(text.contains("# HELP weird multi\\nline\n"));
        assert!(text.contains("weird{path=\"a\\\"b\\\\c\"} 1\n"));
    }

    #[test]
    fn prometheus_round_trips_through_the_parser() {
        let samples = scrape();
        let parsed = parse_prometheus(&render_prometheus(&samples)).unwrap();
        assert_eq!(parsed.len(), samples.len());
        for (original, reparsed) in samples.iter().zip(&parsed) {
            assert_eq!(original.name, reparsed.name);
            assert_eq!(original.labels, reparsed.labels);
            match (&original.value, &reparsed.value) {
                (SampleValue::Counter(a), SampleValue::Counter(b)) => assert_eq!(a, b),
                (SampleValue::Gauge(a), SampleValue::Gauge(b)) => assert_eq!(a, b),
                (SampleValue::Histogram(a), SampleValue::Histogram(b)) => {
                    assert_eq!(a.buckets, b.buckets);
                    assert_eq!(a.count(), b.count());
                    // The sum travels as seconds; nanosecond rounding only.
                    assert!(a.sum_nanos.abs_diff(b.sum_nanos) < 1000);
                }
                other => panic!("kind changed in round trip: {other:?}"),
            }
        }

        let escaped = vec![Sample {
            name: "weird".to_string(),
            help: String::new(),
            labels: vec![("path".to_string(), "a\"b\\c,d".to_string())],
            value: SampleValue::Gauge(1.5),
        }];
        let reparsed = parse_prometheus(&render_prometheus(&escaped)).unwrap();
        assert_eq!(reparsed[0].labels, escaped[0].labels);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_prometheus("# TYPE x wat\n").is_err());
        assert!(parse_prometheus("# TYPE h histogram\nh_bucket{shard=\"0\"} 3\n").is_err());
        assert!(parse_prometheus("just words\n").is_err());
        // Unknown le bound on a declared histogram family.
        assert!(parse_prometheus("# TYPE h histogram\nh_bucket{le=\"0.33\"} 3\n").is_err());
    }

    #[test]
    fn json_rendering_is_structured_and_escaped() {
        let json = render_json(&scrape());
        assert!(json.contains("\"name\": \"sdoh_queries_total\""));
        assert!(json.contains("\"kind\": \"counter\""));
        assert!(json.contains("\"value\": 12"));
        assert!(json.contains("\"labels\": {\"shard\": \"0\"}"));
        assert!(json.contains("\"buckets\": ["));
        assert!(json.contains("\"p99\":"));
        assert!(render_json(&[]).contains("\"metrics\": [\n  ]"));
    }
}
