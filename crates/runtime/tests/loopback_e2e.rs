//! Loopback end-to-end proof of the real-socket runtime: real UDP clients
//! query a [`PoolRuntime`], which generates pools through full in-process
//! RFC 8484 DoH terminators — one of them compromised — and every served
//! answer satisfies the paper's benign-fraction guarantee. Also exercises
//! the TCP fallback for truncated answers and the off-query-path
//! background refresh.

use std::time::Duration;

use sdoh_core::{check_guarantee, AddressPool, CacheConfig, GroundTruth, PoolConfig};
use sdoh_dns_wire::{Message, Rcode, RrType, Ttl};
use sdoh_runtime::{
    LoopbackConfig, LoopbackFleet, PoolRuntime, RuntimeClient, RuntimeConfig, RuntimeStats, Shard,
};

const SHARDS: usize = 4;

fn build(compromised: Vec<usize>, ttl: Ttl, stale: Duration) -> (LoopbackFleet, Vec<Shard>) {
    let fleet = LoopbackFleet::build(LoopbackConfig {
        resolvers: 3,
        pool_domains: 4,
        addresses_per_domain: 8,
        compromised,
        ..LoopbackConfig::default()
    });
    let shards = fleet
        .shards(
            SHARDS,
            PoolConfig::algorithm1(),
            CacheConfig::default()
                .with_ttl(ttl)
                .with_stale_window(stale),
        )
        .expect("valid config");
    (fleet, shards)
}

fn assert_guarantee(response: &Message, truth: &GroundTruth) {
    assert_eq!(response.header.rcode, Rcode::NoError);
    let addresses = response.answer_addresses();
    assert!(!addresses.is_empty(), "empty answer");
    let mut pool = AddressPool::new();
    for addr in addresses {
        pool.push(addr, "served");
    }
    let check = check_guarantee(&pool, truth, 0.5);
    assert!(check.holds, "guarantee violated: {check:?}");
}

#[test]
fn udp_clients_get_guaranteed_pools_from_in_process_doh() {
    // One of three upstream resolvers is compromised: truncation caps its
    // share of every pool at 1/3, so the x = 1/2 guarantee must hold for
    // every answer the runtime serves over the real socket.
    let (fleet, shards) = build(vec![0], Ttl::from_secs(60), Duration::from_secs(60));
    let truth = fleet.ground_truth();
    let runtime = PoolRuntime::start(RuntimeConfig::default(), shards).expect("bind loopback");
    assert_eq!(runtime.shard_count(), SHARDS);
    let client = RuntimeClient::connect(runtime.udp_addr(), runtime.tcp_addr()).expect("client");

    let mut id: u16 = 0;
    for round in 0..3 {
        for domain in &fleet.domains {
            id += 1;
            let response = client
                .query(&Message::query(id, domain.clone(), RrType::A))
                .expect("query answered");
            assert_guarantee(&response, &truth);
            assert_eq!(
                response.answer_addresses().len(),
                24,
                "8 addresses x 3 resolvers, round {round}"
            );
        }
    }

    let stats = runtime.shutdown();
    assert_eq!(stats.total.serve.queries, 12);
    assert_eq!(
        stats.total.serve.generations, 4,
        "one generation per domain, everything else cache hits"
    );
    assert_eq!(stats.total.serve.hits, 8);
    assert_eq!(stats.udp_queries, 12);
    // Distinct domains spread across more than one shard-owned cache.
    let active = stats
        .per_shard
        .iter()
        .flatten()
        .filter(|s| s.serve.queries > 0)
        .count();
    assert!(active > 1, "4 domains served by {active} shard(s)");
    assert_eq!(stats.unresponsive_shards(), 0);
    for shard in stats.per_shard.iter().flatten() {
        assert_eq!(shard.serve.queries, shard.cache.hits + shard.cache.misses);
    }
}

#[test]
fn oversized_udp_answers_fall_back_to_tcp() {
    let (fleet, shards) = build(Vec::new(), Ttl::from_secs(60), Duration::from_secs(60));
    let truth = fleet.ground_truth();
    // A 24-record answer is ~700 bytes; a 128-byte limit forces TC=1.
    let config = RuntimeConfig {
        udp_payload_limit: 128,
        ..RuntimeConfig::default()
    };
    let runtime = PoolRuntime::start(config, shards).expect("bind loopback");
    let client = RuntimeClient::connect(runtime.udp_addr(), runtime.tcp_addr()).expect("client");

    // The client follows the TC signal transparently: the answer it
    // returns is the full TCP response.
    let response = client
        .query(&Message::query(9, fleet.domains[0].clone(), RrType::A))
        .expect("query answered");
    assert!(!response.header.truncated);
    assert_eq!(response.answer_addresses().len(), 24);
    assert_guarantee(&response, &truth);

    // Direct TCP works too and serves from the now-warm cache.
    let tcp_response = client
        .query_tcp(&Message::query(10, fleet.domains[0].clone(), RrType::A))
        .expect("tcp query answered");
    assert_eq!(tcp_response.answer_addresses().len(), 24);

    let stats = runtime.shutdown();
    assert!(stats.truncated_responses >= 1, "the TC path was exercised");
    assert!(stats.tcp_queries >= 2, "retry + direct tcp");
    assert_eq!(
        stats.total.serve.generations, 1,
        "TC retry was served from cache, not regenerated"
    );
}

#[test]
fn background_refresh_runs_off_the_query_path() {
    // Tiny TTL + wide stale window: after the TTL expires, queries are
    // served stale (TTL 0) immediately while the refresh thread
    // regenerates in the background.
    let (fleet, shards) = build(Vec::new(), Ttl::from_secs(2), Duration::from_secs(3600));
    let config = RuntimeConfig {
        refresh_interval: Duration::from_millis(20),
        ..RuntimeConfig::default()
    };
    let runtime = PoolRuntime::start(config, shards).expect("bind loopback");
    let client = RuntimeClient::connect(runtime.udp_addr(), runtime.tcp_addr()).expect("client");
    let domain = fleet.domains[0].clone();

    let first = client
        .query(&Message::query(1, domain.clone(), RrType::A))
        .expect("cold query");
    assert!(first.answers.iter().all(|r| r.ttl >= 1), "fresh TTL served");

    std::thread::sleep(Duration::from_millis(2300)); // past the 2 s TTL
    let stale = client
        .query(&Message::query(2, domain.clone(), RrType::A))
        .expect("stale query");
    assert_eq!(stale.answer_addresses().len(), 24, "stale but served");
    assert!(
        stale.answers.iter().all(|r| r.ttl == 0),
        "stale TTL is zero"
    );

    // Give the refresh thread a few ticks, then expect a fresh hit.
    std::thread::sleep(Duration::from_millis(300));
    let fresh = client
        .query(&Message::query(3, domain.clone(), RrType::A))
        .expect("refreshed query");
    assert!(fresh.answers.iter().all(|r| r.ttl >= 1), "refreshed entry");

    let stats: RuntimeStats = runtime.shutdown();
    assert_eq!(stats.total.serve.stale_serves, 1);
    assert!(
        stats.total.serve.refreshes >= 1,
        "the refresh thread regenerated in the background: {:?}",
        stats.total.serve
    );
    assert_eq!(stats.total.serve.queries, 3);
}

#[test]
fn clock_syncs_through_the_real_socket_runtime() {
    // The paper's pipeline, with the DNS leg over real sockets: a stub
    // obtains its NTP pool from the threaded runtime via actual loopback
    // UDP (consensus-generated behind the scenes, one of three upstream
    // resolvers compromised), then disciplines a clock with Chronos over
    // that pool against a simulated server fleet whose malicious members
    // are exactly the fleet's ground truth.
    use sdoh_netsim::{LinkConfig, SimAddr, SimNet};
    use sdoh_ntp::{
        register_pool, ChronosClient, ChronosConfig, LocalClock, NtpClient, NtpServerConfig,
        NtpServerService,
    };

    let (fleet, shards) = build(vec![1], Ttl::from_secs(300), Duration::from_secs(300));
    let truth = fleet.ground_truth();
    let runtime = PoolRuntime::start(RuntimeConfig::default(), shards).expect("bind loopback");
    let client = RuntimeClient::connect(runtime.udp_addr(), runtime.tcp_addr()).expect("client");

    // The DNS leg: a real UDP round trip to the serving runtime.
    let response = client
        .query(&Message::query(1, fleet.domains[0].clone(), RrType::A))
        .expect("pool query over loopback UDP");
    assert_guarantee(&response, &truth);
    let pool = response.answer_addresses();
    assert_eq!(pool.len(), 24, "8 addresses x 3 resolvers");

    // The NTP leg: time servers behind those addresses — honest ones for
    // the published fleet, 1000 s shifters for the attacker block the
    // compromised resolver injected.
    let net = SimNet::new(77);
    net.set_default_link(LinkConfig::with_latency(Duration::from_millis(5)));
    let benign_addrs: Vec<SimAddr> = fleet
        .benign
        .iter()
        .map(|&ip| SimAddr::new(ip, sdoh_netsim::ports::NTP))
        .collect();
    register_pool(&net, &benign_addrs, 0, 0.0, 77);
    for &ip in &fleet.attacker {
        net.register(
            SimAddr::new(ip, sdoh_netsim::ports::NTP),
            NtpServerService::new(NtpServerConfig::malicious(1000.0), net.clock(), 78),
        );
    }

    let mut clock = LocalClock::new(net.clock(), -30.0);
    let mut chronos = ChronosClient::new(
        ChronosConfig::default(),
        NtpClient::new(SimAddr::v4(10, 0, 0, 1, 123)),
        79,
    )
    .expect("valid chronos config");
    chronos
        .update(&net, &mut clock, &pool)
        .expect("chronos update over the served pool");
    assert!(
        clock.offset_from_true().abs() < 1.0,
        "the runtime-served pool's bad minority is tolerated: {}",
        clock.offset_from_true()
    );

    let stats = runtime.shutdown();
    assert_eq!(stats.total.serve.queries, 1);
    assert_eq!(stats.total.serve.generations, 1);
}
