//! Loopback end-to-end proof of the real-socket runtime: real UDP clients
//! query a [`PoolRuntime`], which generates pools through full in-process
//! RFC 8484 DoH terminators — one of them compromised — and every served
//! answer satisfies the paper's benign-fraction guarantee. Also exercises
//! the TCP fallback for truncated answers and the off-query-path
//! background refresh.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sdoh_core::{
    check_guarantee, AddressPool, AddressSource, CacheConfig, DohSource, GroundTruth, PoolConfig,
};
use sdoh_dns_wire::{Message, Rcode, RrType, Ttl};
use sdoh_doh::DohMethod;
use sdoh_metrics::{http_get, parse_prometheus, SampleValue};
use sdoh_runtime::{
    ConfigDelta, LoopbackConfig, LoopbackFleet, PoolRuntime, RuntimeClient, RuntimeConfig,
    RuntimeStats, Shard,
};

const SHARDS: usize = 4;

fn build(compromised: Vec<usize>, ttl: Ttl, stale: Duration) -> (LoopbackFleet, Vec<Shard>) {
    let fleet = LoopbackFleet::build(LoopbackConfig {
        resolvers: 3,
        pool_domains: 4,
        addresses_per_domain: 8,
        compromised,
        ..LoopbackConfig::default()
    });
    let shards = fleet
        .shards(
            SHARDS,
            PoolConfig::algorithm1(),
            CacheConfig::default()
                .with_ttl(ttl)
                .with_stale_window(stale),
        )
        .expect("valid config");
    (fleet, shards)
}

fn assert_guarantee(response: &Message, truth: &GroundTruth) {
    assert_eq!(response.header.rcode, Rcode::NoError);
    let addresses = response.answer_addresses();
    assert!(!addresses.is_empty(), "empty answer");
    let mut pool = AddressPool::new();
    for addr in addresses {
        pool.push(addr, "served");
    }
    let check = check_guarantee(&pool, truth, 0.5);
    assert!(check.holds, "guarantee violated: {check:?}");
}

#[test]
fn udp_clients_get_guaranteed_pools_from_in_process_doh() {
    // One of three upstream resolvers is compromised: truncation caps its
    // share of every pool at 1/3, so the x = 1/2 guarantee must hold for
    // every answer the runtime serves over the real socket.
    let (fleet, shards) = build(vec![0], Ttl::from_secs(60), Duration::from_secs(60));
    let truth = fleet.ground_truth();
    let runtime = PoolRuntime::start(RuntimeConfig::default(), shards).expect("bind loopback");
    assert_eq!(runtime.shard_count(), SHARDS);
    let client = RuntimeClient::connect(runtime.udp_addr(), runtime.tcp_addr()).expect("client");

    let mut id: u16 = 0;
    for round in 0..3 {
        for domain in &fleet.domains {
            id += 1;
            let response = client
                .query(&Message::query(id, domain.clone(), RrType::A))
                .expect("query answered");
            assert_guarantee(&response, &truth);
            assert_eq!(
                response.answer_addresses().len(),
                24,
                "8 addresses x 3 resolvers, round {round}"
            );
        }
    }

    let stats = runtime.shutdown();
    assert_eq!(stats.total.serve.queries, 12);
    assert_eq!(
        stats.total.serve.generations, 4,
        "one generation per domain, everything else cache hits"
    );
    assert_eq!(stats.total.serve.hits, 8);
    assert_eq!(stats.udp_queries, 12);
    // Distinct domains spread across more than one shard-owned cache.
    let active = stats
        .per_shard
        .iter()
        .flatten()
        .filter(|s| s.serve.queries > 0)
        .count();
    assert!(active > 1, "4 domains served by {active} shard(s)");
    assert_eq!(stats.unresponsive_shards(), 0);
    for shard in stats.per_shard.iter().flatten() {
        assert_eq!(shard.serve.queries, shard.cache.hits + shard.cache.misses);
    }
}

#[test]
fn oversized_udp_answers_fall_back_to_tcp() {
    let (fleet, shards) = build(Vec::new(), Ttl::from_secs(60), Duration::from_secs(60));
    let truth = fleet.ground_truth();
    // A 24-record answer is ~700 bytes; a 128-byte limit forces TC=1.
    let config = RuntimeConfig::default().with_udp_payload_limit(128);
    let runtime = PoolRuntime::start(config, shards).expect("bind loopback");
    let client = RuntimeClient::connect(runtime.udp_addr(), runtime.tcp_addr()).expect("client");

    // The client follows the TC signal transparently: the answer it
    // returns is the full TCP response.
    let response = client
        .query(&Message::query(9, fleet.domains[0].clone(), RrType::A))
        .expect("query answered");
    assert!(!response.header.truncated);
    assert_eq!(response.answer_addresses().len(), 24);
    assert_guarantee(&response, &truth);

    // Direct TCP works too and serves from the now-warm cache.
    let tcp_response = client
        .query_tcp(&Message::query(10, fleet.domains[0].clone(), RrType::A))
        .expect("tcp query answered");
    assert_eq!(tcp_response.answer_addresses().len(), 24);

    let stats = runtime.shutdown();
    assert!(stats.truncated_responses >= 1, "the TC path was exercised");
    assert!(stats.tcp_queries >= 2, "retry + direct tcp");
    assert_eq!(
        stats.total.serve.generations, 1,
        "TC retry was served from cache, not regenerated"
    );
}

#[test]
fn background_refresh_runs_off_the_query_path() {
    // Tiny TTL + wide stale window: after the TTL expires, queries are
    // served stale (TTL 0) immediately while the refresh thread
    // regenerates in the background.
    let (fleet, shards) = build(Vec::new(), Ttl::from_secs(2), Duration::from_secs(3600));
    let config = RuntimeConfig::default().with_refresh_interval(Duration::from_millis(20));
    let runtime = PoolRuntime::start(config, shards).expect("bind loopback");
    let client = RuntimeClient::connect(runtime.udp_addr(), runtime.tcp_addr()).expect("client");
    let domain = fleet.domains[0].clone();

    let first = client
        .query(&Message::query(1, domain.clone(), RrType::A))
        .expect("cold query");
    assert!(first.answers.iter().all(|r| r.ttl >= 1), "fresh TTL served");

    std::thread::sleep(Duration::from_millis(2300)); // past the 2 s TTL
    let stale = client
        .query(&Message::query(2, domain.clone(), RrType::A))
        .expect("stale query");
    assert_eq!(stale.answer_addresses().len(), 24, "stale but served");
    assert!(
        stale.answers.iter().all(|r| r.ttl == 0),
        "stale TTL is zero"
    );

    // Give the refresh thread a few ticks, then expect a fresh hit.
    std::thread::sleep(Duration::from_millis(300));
    let fresh = client
        .query(&Message::query(3, domain.clone(), RrType::A))
        .expect("refreshed query");
    assert!(fresh.answers.iter().all(|r| r.ttl >= 1), "refreshed entry");

    let stats: RuntimeStats = runtime.shutdown();
    assert_eq!(stats.total.serve.stale_serves, 1);
    assert!(
        stats.total.serve.refreshes >= 1,
        "the refresh thread regenerated in the background: {:?}",
        stats.total.serve
    );
    assert_eq!(stats.total.serve.queries, 3);
}

#[test]
fn reconfiguration_and_rescale_under_load_drop_nothing() {
    // The control-plane e2e: while real UDP clients hammer the runtime,
    // apply a full config delta (TTL + stale window, pool hardening, a
    // smaller upstream resolver set) and rescale 4 -> 8 -> 4 shards. Not
    // one query may be dropped, every answer must satisfy the x = 1/2
    // guarantee, the epoch transitions must be visible through the
    // /metrics gauges, and afterwards no cache key may live on two shards.
    let (fleet, shards) = build(vec![0], Ttl::from_secs(60), Duration::from_secs(60));
    let truth = Arc::new(fleet.ground_truth());
    let config = RuntimeConfig::default()
        .with_stats_bind(Some(std::net::SocketAddr::from(([127, 0, 0, 1], 0))));
    let runtime = PoolRuntime::start(config, shards).expect("bind loopback");
    let control = runtime.control();
    let stats_addr = runtime.stats_addr().expect("stats listener bound");
    let udp = runtime.udp_addr();
    let tcp = runtime.tcp_addr();

    // Three loader threads; every query must come back (a drop surfaces
    // as a client timeout) and every answer must hold the guarantee.
    let stop = Arc::new(AtomicBool::new(false));
    let loaders: Vec<std::thread::JoinHandle<u64>> = (0..3)
        .map(|thread| {
            let stop = stop.clone();
            let truth = truth.clone();
            let domains = fleet.domains.clone();
            std::thread::spawn(move || {
                let client = RuntimeClient::connect(udp, tcp).expect("client");
                let mut id: u16 = (thread as u16) * 16384;
                let mut sent = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for domain in &domains {
                        id = id.wrapping_add(1);
                        let response = client
                            .query(&Message::query(id, domain.clone(), RrType::A))
                            .expect("no query may be dropped during reconfiguration");
                        assert_guarantee(&response, &truth);
                        sent += 1;
                    }
                }
                sent
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(150));

    // The full delta, mid-load: flip the TTL and stale window, harden the
    // pool config, and drop the compromised upstream from the resolver
    // set (new generations fan out to the two honest resolvers only).
    let honest: Vec<_> = fleet.infos[1..].to_vec();
    let delta = ConfigDelta::new()
        .with_cache(
            CacheConfig::default()
                .with_ttl(Ttl::from_secs(2))
                .with_stale_window(Duration::from_secs(10)),
        )
        .with_pool(PoolConfig::algorithm1().with_min_responses(2))
        .with_sources(Arc::new(move |_shard| {
            honest
                .iter()
                .map(|info| {
                    Box::new(DohSource::new(info.clone()).method(DohMethod::Get))
                        as Box<dyn AddressSource>
                })
                .collect()
        }));
    let receipt = control.apply(delta).expect("valid delta");
    assert_eq!(receipt.epoch, 1);
    assert_eq!(receipt.shards, SHARDS);
    assert!(
        control.wait_for_epoch(receipt.epoch, Duration::from_secs(10)),
        "shards acked the new epoch while serving: {:?}",
        control.acked_epochs()
    );

    // Grow 4 -> 8 mid-load: pre-built shards take indices 4..8.
    let mut spare: Vec<Option<Shard>> = fleet
        .shards(
            8,
            PoolConfig::algorithm1().with_min_responses(2),
            *control.current_config().cache(),
        )
        .expect("valid config")
        .into_iter()
        .map(Some)
        .collect();
    let receipt = control
        .rescale(8, |index| spare[index].take().expect("fresh shard"))
        .expect("grow rescale");
    assert_eq!(receipt.shards, 8);
    assert_eq!(control.shard_count(), 8);
    assert!(control.wait_for_epoch(receipt.epoch, Duration::from_secs(10)));
    std::thread::sleep(Duration::from_millis(150));

    // The epoch transition is observable through the /metrics gauges:
    // the published epoch and all eight per-shard acked-epoch gauges.
    let scrape = http_get(stats_addr, "/metrics", Duration::from_secs(5)).expect("scrape");
    let samples = parse_prometheus(&scrape.body).expect("parseable exposition");
    let gauge = |name: &str| -> Vec<f64> {
        samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| match s.value {
                SampleValue::Gauge(v) => v,
                ref other => panic!("{name} is not a gauge: {other:?}"),
            })
            .collect()
    };
    let expected = receipt.epoch as f64;
    assert_eq!(gauge("sdoh_config_epoch"), vec![expected]);
    let acked = gauge("sdoh_shard_acked_epoch");
    assert_eq!(acked.len(), 8, "one acked gauge per live shard");
    assert!(
        acked.iter().all(|&epoch| epoch == expected),
        "every shard acked epoch {expected}: {acked:?}"
    );
    let config_doc = http_get(stats_addr, "/config", Duration::from_secs(5)).expect("/config");
    assert_eq!(config_doc.status, 200);
    assert!(config_doc
        .body
        .contains(&format!("\"epoch\": {}", receipt.epoch)));
    assert!(config_doc.body.contains("\"shards\": 8"));

    // Shrink back 8 -> 4 mid-load: retirees hand entries to survivors and
    // linger for stray in-flight queries.
    let receipt = control
        .rescale(4, |_| unreachable!("shrinking builds no shards"))
        .expect("shrink rescale");
    assert_eq!(receipt.shards, 4);
    assert_eq!(control.shard_count(), 4);
    assert!(control.wait_for_epoch(receipt.epoch, Duration::from_secs(10)));
    std::thread::sleep(Duration::from_millis(150));

    // No cache key is owned by two shards at once after the rescales.
    let probes = control.probe_entries(Duration::from_secs(5));
    assert_eq!(probes.len(), 4, "every live shard answered the probe");
    let mut seen = std::collections::HashSet::new();
    for (shard, entries) in &probes {
        for probe in entries {
            assert!(
                seen.insert(probe.key.clone()),
                "{} cached by shard {shard} and another shard at once",
                probe.key
            );
        }
    }

    stop.store(true, Ordering::Relaxed);
    let sent: u64 = loaders.into_iter().map(|h| h.join().expect("loader")).sum();
    assert!(sent > 0, "the loaders actually ran");

    let stats = runtime.shutdown();
    assert_eq!(
        stats.dropped_queries, 0,
        "zero dropped queries across apply + grow + shrink"
    );
    assert_eq!(stats.config_epoch, 3, "apply, grow, shrink: three epochs");
    assert_eq!(
        stats.udp_queries, sent,
        "the front door counted every query"
    );
    // Serve counters are owned per shard: the queries shards 4..7 served
    // between the grow and the shrink retired with their workers, so the
    // aggregate covers the four survivors only.
    assert!(
        stats.total.serve.queries <= sent,
        "surviving shards served {} of {sent}",
        stats.total.serve.queries
    );
    assert!(stats.total.serve.queries > 0);
}

#[test]
fn clock_syncs_through_the_real_socket_runtime() {
    // The paper's pipeline, with the DNS leg over real sockets: a stub
    // obtains its NTP pool from the threaded runtime via actual loopback
    // UDP (consensus-generated behind the scenes, one of three upstream
    // resolvers compromised), then disciplines a clock with Chronos over
    // that pool against a simulated server fleet whose malicious members
    // are exactly the fleet's ground truth.
    use sdoh_netsim::{LinkConfig, SimAddr, SimNet};
    use sdoh_ntp::{
        register_pool, ChronosClient, ChronosConfig, LocalClock, NtpClient, NtpServerConfig,
        NtpServerService,
    };

    let (fleet, shards) = build(vec![1], Ttl::from_secs(300), Duration::from_secs(300));
    let truth = fleet.ground_truth();
    let runtime = PoolRuntime::start(RuntimeConfig::default(), shards).expect("bind loopback");
    let client = RuntimeClient::connect(runtime.udp_addr(), runtime.tcp_addr()).expect("client");

    // The DNS leg: a real UDP round trip to the serving runtime.
    let response = client
        .query(&Message::query(1, fleet.domains[0].clone(), RrType::A))
        .expect("pool query over loopback UDP");
    assert_guarantee(&response, &truth);
    let pool = response.answer_addresses();
    assert_eq!(pool.len(), 24, "8 addresses x 3 resolvers");

    // The NTP leg: time servers behind those addresses — honest ones for
    // the published fleet, 1000 s shifters for the attacker block the
    // compromised resolver injected.
    let net = SimNet::new(77);
    net.set_default_link(LinkConfig::with_latency(Duration::from_millis(5)));
    let benign_addrs: Vec<SimAddr> = fleet
        .benign
        .iter()
        .map(|&ip| SimAddr::new(ip, sdoh_netsim::ports::NTP))
        .collect();
    register_pool(&net, &benign_addrs, 0, 0.0, 77);
    for &ip in &fleet.attacker {
        net.register(
            SimAddr::new(ip, sdoh_netsim::ports::NTP),
            NtpServerService::new(NtpServerConfig::malicious(1000.0), net.clock(), 78),
        );
    }

    let mut clock = LocalClock::new(net.clock(), -30.0);
    let mut chronos = ChronosClient::new(
        ChronosConfig::default(),
        NtpClient::new(SimAddr::v4(10, 0, 0, 1, 123)),
        79,
    )
    .expect("valid chronos config");
    chronos
        .update(&net, &mut clock, &pool)
        .expect("chronos update over the served pool");
    assert!(
        clock.offset_from_true().abs() < 1.0,
        "the runtime-served pool's bad minority is tolerated: {}",
        clock.offset_from_true()
    );

    let stats = runtime.shutdown();
    assert_eq!(stats.total.serve.queries, 1);
    assert_eq!(stats.total.serve.generations, 1);
}
