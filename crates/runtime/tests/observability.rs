//! The observability plane, end to end over real sockets: a loopback
//! runtime exports `/metrics`, `/metrics.json` and `/healthz` from its
//! stats listener; exported counters reconcile exactly with the queries a
//! real UDP client sent; cross-shard histogram merge and percentile
//! extraction behave; and the registry lints clean — every public counter
//! ships a help string (this test backs the CI counter-help lint).

use std::time::Duration;

use sdoh_core::{CacheConfig, PoolConfig};
use sdoh_dns_wire::{Message, RrType, Ttl};
use sdoh_metrics::{http_get, parse_prometheus, HistogramSnapshot, Sample, SampleValue};
use sdoh_runtime::{
    LoopbackConfig, LoopbackFleet, PoolRuntime, RuntimeClient, RuntimeConfig, Shard,
};

const SHARDS: usize = 4;

fn build() -> (LoopbackFleet, Vec<Shard>) {
    let fleet = LoopbackFleet::build(LoopbackConfig {
        resolvers: 3,
        pool_domains: 4,
        addresses_per_domain: 8,
        ..LoopbackConfig::default()
    });
    let shards = fleet
        .shards(
            SHARDS,
            PoolConfig::algorithm1(),
            CacheConfig::default()
                .with_ttl(Ttl::from_secs(60))
                .with_stale_window(Duration::from_secs(60)),
        )
        .expect("valid config");
    (fleet, shards)
}

fn stats_config() -> RuntimeConfig {
    RuntimeConfig::default().with_stats_bind(Some(std::net::SocketAddr::from(([127, 0, 0, 1], 0))))
}

fn counter(samples: &[Sample], name: &str) -> u64 {
    samples
        .iter()
        .filter(|s| s.name == name)
        .map(|s| match &s.value {
            SampleValue::Counter(v) => *v,
            other => panic!("{name} is not a counter: {other:?}"),
        })
        .sum()
}

#[test]
fn exported_counters_reconcile_with_client_ground_truth() {
    let (fleet, shards) = build();
    let runtime = PoolRuntime::start(stats_config(), shards).expect("bind loopback");
    let stats_addr = runtime.stats_addr().expect("stats listener bound");
    let client = RuntimeClient::connect(runtime.udp_addr(), runtime.tcp_addr()).expect("client");

    let mut sent = 0u64;
    for round in 0..5 {
        for domain in &fleet.domains {
            sent += 1;
            let response = client
                .query(&Message::query(sent as u16, domain.clone(), RrType::A))
                .expect("query answered");
            assert!(!response.answer_addresses().is_empty(), "round {round}");
        }
    }

    // Scrape over real HTTP and parse the Prometheus text back.
    let scrape = http_get(stats_addr, "/metrics", Duration::from_secs(5)).expect("scrape");
    assert_eq!(scrape.status, 200);
    let samples = parse_prometheus(&scrape.body).expect("parseable exposition");

    // Exact reconciliation: every query the client sent is counted, once.
    assert_eq!(counter(&samples, "sdoh_udp_queries_total"), sent);
    assert_eq!(counter(&samples, "sdoh_serve_queries_total"), sent);
    let hits = counter(&samples, "sdoh_serve_hits_total");
    let misses = counter(&samples, "sdoh_serve_misses_total");
    let coalesced = counter(&samples, "sdoh_serve_coalesced_waiters_total");
    assert_eq!(hits + misses + coalesced, sent, "every query hit or missed");

    // The per-shard latency histograms merge to exactly one observation
    // per query, and the merged p99 is a plausible serving latency.
    let latency: Vec<&Sample> = samples
        .iter()
        .filter(|s| s.name == "sdoh_serve_latency_seconds")
        .collect();
    assert!(!latency.is_empty(), "latency histograms exported");
    let mut merged = HistogramSnapshot::default();
    for sample in &latency {
        match &sample.value {
            SampleValue::Histogram(h) => merged.merge(h),
            other => panic!("latency series is not a histogram: {other:?}"),
        }
    }
    assert_eq!(merged.count(), sent, "one latency observation per query");
    let p99 = merged.quantile(0.99).expect("non-empty histogram");
    assert!(p99 < Duration::from_secs(10), "implausible p99 {p99:?}");

    // JSON flavour serves the same counters.
    let json = http_get(stats_addr, "/metrics.json", Duration::from_secs(5)).expect("json");
    assert_eq!(json.status, 200);
    assert!(json.body.contains("\"sdoh_udp_queries_total\""));
    assert!(json.body.contains(&format!("\"value\": {sent}")));

    // Healthy instance: all shards answer, probe says ready.
    let health = http_get(stats_addr, "/healthz", Duration::from_secs(5)).expect("healthz");
    assert_eq!(health.status, 200, "body: {}", health.body);
    assert!(health.body.starts_with("ok\n"));
    assert!(health.body.contains(&format!("shards {SHARDS}")));
    assert!(health.body.contains("unresponsive_shards 0"));

    // Unknown paths 404 without killing the listener.
    let missing = http_get(stats_addr, "/nope", Duration::from_secs(5)).expect("404");
    assert_eq!(missing.status, 404);

    let stats = runtime.shutdown();
    assert_eq!(stats.total.serve.queries, sent);
    // After shutdown the listener is gone.
    assert!(http_get(stats_addr, "/metrics", Duration::from_millis(300)).is_err());
}

#[test]
fn registry_lints_clean_every_counter_has_help() {
    // The CI counter-help lint: a full runtime registry — front-door
    // counters, per-shard histograms and the serve-layer collector — must
    // not export a single series without a help string.
    let (_fleet, shards) = build();
    let runtime = PoolRuntime::start(RuntimeConfig::default(), shards).expect("bind loopback");
    let missing = runtime.registry().lint();
    assert!(
        missing.is_empty(),
        "series without help strings: {missing:?}"
    );
    let samples = runtime.registry().gather();
    assert!(samples.iter().any(|s| s.name == "sdoh_udp_queries_total"));
    assert!(samples.iter().any(|s| s.name == "sdoh_serve_queries_total"));
    assert!(samples.iter().any(|s| s.name == "sdoh_unresponsive_shards"));
    assert!(
        samples
            .iter()
            .filter(|s| s.name == "sdoh_serve_latency_seconds")
            .count()
            == SHARDS,
        "one latency histogram per shard"
    );
    runtime.shutdown();
}

#[test]
fn latency_recording_can_be_disabled_for_overhead_runs() {
    let (fleet, shards) = build();
    let config = stats_config().with_record_latency(false);
    let runtime = PoolRuntime::start(config, shards).expect("bind loopback");
    let client = RuntimeClient::connect(runtime.udp_addr(), runtime.tcp_addr()).expect("client");
    client
        .query(&Message::query(1, fleet.domains[0].clone(), RrType::A))
        .expect("query answered");
    let samples = runtime.registry().gather();
    assert!(
        !samples
            .iter()
            .any(|s| s.name == "sdoh_serve_latency_seconds"),
        "no latency histograms registered when recording is off"
    );
    runtime.shutdown();
}

#[test]
fn runtime_stats_render_as_text_and_json() {
    let (fleet, shards) = build();
    let runtime = PoolRuntime::start(RuntimeConfig::default(), shards).expect("bind loopback");
    let client = RuntimeClient::connect(runtime.udp_addr(), runtime.tcp_addr()).expect("client");
    for (i, domain) in fleet.domains.iter().enumerate() {
        client
            .query(&Message::query(i as u16 + 1, domain.clone(), RrType::A))
            .expect("query answered");
    }
    let stats = runtime.shutdown();

    let text = stats.to_string();
    assert!(text.contains("runtime stats @"), "{text}");
    assert!(text.contains(&format!("queries={}", stats.total.serve.queries)));
    assert!(text.contains("shard 0:"));
    assert!(!text.contains("unresponsive (snapshot timed out)"));

    let json = stats.to_json();
    assert!(json.contains(&format!("\"udp_queries\": {}", stats.udp_queries)));
    assert!(json.contains("\"unresponsive_shards\": 0"));
    assert!(json.contains("\"per_shard\": ["));
    assert!(!json.contains("null"), "all shards answered: {json}");
}
