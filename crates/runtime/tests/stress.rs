//! Multi-threaded stress test of the real-socket runtime: N client
//! threads hammer the UDP front end over loopback. Asserts that no
//! response is lost or duplicated, that per-shard metrics only ever move
//! forward, and that shutdown drains cleanly with every thread joined.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sdoh_core::{CacheConfig, PoolConfig, ServeSnapshot};
use sdoh_dns_wire::{Message, Rcode, RrType, Ttl};
use sdoh_runtime::{LoopbackConfig, LoopbackFleet, PoolRuntime, RuntimeClient, RuntimeConfig};

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 50;
const SHARDS: usize = 4;
const DOMAINS: usize = 6;

/// Every counter pair of `later` is at least `earlier`'s — metrics never
/// move backwards between two observations of the same shard.
fn assert_monotone(earlier: &ServeSnapshot, later: &ServeSnapshot, shard: usize) {
    let pairs = [
        (earlier.serve.queries, later.serve.queries, "queries"),
        (earlier.serve.hits, later.serve.hits, "hits"),
        (earlier.serve.misses, later.serve.misses, "misses"),
        (
            earlier.serve.generations,
            later.serve.generations,
            "generations",
        ),
        (
            earlier.cache.insertions,
            later.cache.insertions,
            "insertions",
        ),
    ];
    for (before, after, name) in pairs {
        assert!(
            after >= before,
            "shard {shard}: {name} went backwards ({before} -> {after})"
        );
    }
}

#[test]
fn concurrent_clients_lose_nothing_and_shutdown_is_clean() {
    let fleet = LoopbackFleet::build(LoopbackConfig {
        resolvers: 3,
        pool_domains: DOMAINS,
        addresses_per_domain: 4, // 12-record answers fit the UDP limit
        ..LoopbackConfig::default()
    });
    let shards = fleet
        .shards(
            SHARDS,
            PoolConfig::algorithm1(),
            CacheConfig::default()
                .with_ttl(Ttl::from_secs(300))
                .with_stale_window(Duration::from_secs(300)),
        )
        .expect("valid config");
    let runtime = PoolRuntime::start(RuntimeConfig::default(), shards).expect("bind loopback");
    let udp = runtime.udp_addr();
    let tcp = runtime.tcp_addr();
    let domains = fleet.domains.clone();

    let answered = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let domains = domains.clone();
            let answered = Arc::clone(&answered);
            std::thread::spawn(move || {
                let stub = RuntimeClient::connect(udp, tcp).expect("client socket");
                for i in 0..QUERIES_PER_CLIENT {
                    // Unique id per in-flight query of this client; the
                    // client discards responses that answer anything else,
                    // so a duplicate or crossed response would surface as
                    // a timeout here.
                    let id = (client * QUERIES_PER_CLIENT + i) as u16;
                    let domain = domains[(client + i) % domains.len()].clone();
                    let response = stub
                        .query(&Message::query(id, domain, RrType::A))
                        .unwrap_or_else(|e| panic!("client {client} query {i}: {e}"));
                    assert_eq!(response.header.id, id);
                    assert_eq!(response.header.rcode, Rcode::NoError);
                    assert_eq!(response.answer_addresses().len(), 12);
                    answered.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // Observe mid-flight and once more near the end: per-shard counters
    // must be monotone across observations.
    std::thread::sleep(Duration::from_millis(50));
    let mid = runtime.stats();
    std::thread::sleep(Duration::from_millis(100));
    let later = runtime.stats();
    for (shard, (earlier, after)) in mid.per_shard.iter().zip(&later.per_shard).enumerate() {
        let earlier = earlier
            .as_ref()
            .expect("shard answered mid-flight snapshot");
        let after = after.as_ref().expect("shard answered later snapshot");
        assert_monotone(earlier, after, shard);
    }
    assert_eq!(
        later.unresponsive_shards(),
        0,
        "no wedged shards under load"
    );

    for worker in workers {
        worker.join().expect("client thread panicked");
    }
    let sent = (CLIENTS * QUERIES_PER_CLIENT) as u64;
    assert_eq!(answered.load(Ordering::Relaxed), sent, "no lost responses");

    // Graceful shutdown: drains the queues, joins every runtime thread
    // (a hang here fails the test by timeout) and the final aggregate
    // accounts for every accepted query exactly once.
    let stats = runtime.shutdown();
    assert_eq!(stats.total.serve.queries, sent, "no duplicated accounting");
    assert_eq!(stats.udp_queries, sent);
    assert_eq!(
        stats.total.serve.generations as usize, DOMAINS,
        "cold burst coalesced to one generation per domain"
    );
    assert_eq!(
        stats.total.serve.hits + stats.total.serve.misses + stats.total.serve.coalesced_waiters,
        // Misses either led or coalesced; hits cover the rest.
        sent,
        "every query is a hit or a miss: {:?}",
        stats.total.serve
    );
    for (shard, snapshot) in stats.per_shard.iter().enumerate() {
        let snapshot = snapshot.as_ref().expect("shard answered final snapshot");
        let earlier = later.per_shard[shard]
            .as_ref()
            .expect("shard answered later snapshot");
        assert_monotone(earlier, snapshot, shard);
        // Shard-local consistency of the final snapshot.
        assert_eq!(
            snapshot.serve.queries,
            snapshot.cache.hits + snapshot.cache.misses,
            "shard {shard} snapshot is internally consistent"
        );
    }
    let active = stats
        .per_shard
        .iter()
        .flatten()
        .filter(|s| s.serve.queries > 0)
        .count();
    assert!(active > 1, "{DOMAINS} domains only ever hit {active} shard");
}

#[test]
fn shutdown_with_queued_work_answers_before_exiting() {
    // A runtime shut down immediately after a burst must still drain the
    // queue: accepted queries are answered, not dropped.
    let fleet = LoopbackFleet::build(LoopbackConfig {
        resolvers: 3,
        pool_domains: 2,
        addresses_per_domain: 4,
        ..LoopbackConfig::default()
    });
    let shards = fleet
        .shards(2, PoolConfig::algorithm1(), CacheConfig::default())
        .expect("valid config");
    let runtime = PoolRuntime::start(RuntimeConfig::default(), shards).expect("bind loopback");
    let client =
        RuntimeClient::connect(runtime.udp_addr(), runtime.tcp_addr()).expect("client socket");

    let response = client
        .query(&Message::query(1, fleet.domains[0].clone(), RrType::A))
        .expect("answered");
    assert_eq!(response.answer_addresses().len(), 12);

    let stats = runtime.shutdown();
    assert_eq!(stats.total.serve.queries, 1);
    // Shutting down twice is impossible by construction (shutdown consumes
    // the runtime) — the type system is the orphan-thread guard.
}
