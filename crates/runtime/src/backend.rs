//! In-process backends: the upstream endpoints a runtime's pool
//! generations talk to without leaving the process.
//!
//! A real deployment would fan pool generations out to public DoH
//! resolvers over the Internet. The runtime's loopback configuration —
//! end-to-end tests, the throughput experiment, the example binary — keeps
//! the full protocol stack (secure envelope, HTTP/2, RFC 8484, DNS wire)
//! but terminates it in-process: a [`BackendNet`] maps resolver addresses
//! to [`PayloadService`] endpoints, and each worker thread reaches them
//! through a [`BackendExchanger`], a `Send` implementation of the
//! workspace's [`Exchanger`] transport abstraction driven by the host
//! clock instead of the simulator's virtual one.
//!
//! Endpoints sit behind one mutex each (never a registry-wide lock), so
//! two shards only contend when they query the *same* upstream resolver
//! at the same instant — mirroring how independent sockets to distinct
//! servers behave.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use sdoh_dns_server::{ExchangeOutcome, ExchangeRequest, Exchanger, QueryHandler};
use sdoh_doh::DohServerService;
use sdoh_netsim::{ChannelKind, NetError, NetResult, SimAddr, SimInstant};

use crate::clock::RuntimeClock;

/// Nested-dispatch ceiling mirroring the simulator's routing-loop guard.
const MAX_DEPTH: usize = 8;

std::thread_local! {
    /// Endpoints the current thread is serving right now, outermost first —
    /// the re-entry detector that keeps a dispatch cycle from deadlocking
    /// on an endpoint mutex the thread already holds.
    static IN_FLIGHT: std::cell::RefCell<Vec<SimAddr>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// An endpoint reachable inside a [`BackendNet`]: takes one request
/// payload, returns the reply payload (`None` models a dropped request —
/// the caller observes [`NetError::Timeout`]).
///
/// The `exchanger` parameter lets an endpoint make upstream calls of its
/// own through the same backend net (a recursive resolver behind a DoH
/// terminator, for instance).
pub trait PayloadService: Send {
    /// Handles one request payload addressed to this endpoint.
    fn serve(
        &mut self,
        exchanger: &mut dyn Exchanger,
        channel: ChannelKind,
        payload: &[u8],
    ) -> Option<Vec<u8>>;

    /// Human-readable name used in diagnostics.
    fn service_name(&self) -> &str {
        "payload-service"
    }
}

/// A full RFC 8484 DoH terminator as an in-process endpoint: the loopback
/// stand-in for one public resolver of the paper's fleet.
impl<H: QueryHandler + Send> PayloadService for DohServerService<H> {
    fn serve(
        &mut self,
        exchanger: &mut dyn Exchanger,
        channel: ChannelKind,
        payload: &[u8],
    ) -> Option<Vec<u8>> {
        self.serve_payload(exchanger, channel, payload)
    }

    fn service_name(&self) -> &str {
        "doh-server"
    }
}

struct Inner {
    endpoints: HashMap<SimAddr, Mutex<Box<dyn PayloadService>>>,
    /// Artificial one-way latency added before each dispatch (applied
    /// outside any endpoint lock, so it delays the caller without
    /// serializing the endpoint).
    latency: Duration,
    clock: RuntimeClock,
    ids: AtomicU64,
}

/// Builder for a [`BackendNet`]: register endpoints, then freeze.
pub struct BackendNetBuilder {
    endpoints: HashMap<SimAddr, Mutex<Box<dyn PayloadService>>>,
    latency: Duration,
}

impl BackendNetBuilder {
    /// Registers `service` at `addr`, replacing any previous registration.
    pub fn register(mut self, addr: SimAddr, service: impl PayloadService + 'static) -> Self {
        self.endpoints.insert(addr, Mutex::new(Box::new(service)));
        self
    }

    /// Adds an artificial per-exchange latency, emulating a network round
    /// trip (the sleep happens before the endpoint lock is taken).
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }

    /// Freezes the registry into a shareable [`BackendNet`].
    pub fn build(self) -> BackendNet {
        BackendNet {
            inner: Arc::new(Inner {
                endpoints: self.endpoints,
                latency: self.latency,
                clock: RuntimeClock::new(),
                ids: AtomicU64::new(0x9E37_79B9_7F4A_7C15),
            }),
        }
    }
}

/// The frozen, thread-safe registry of in-process endpoints. Cloning is
/// cheap (an `Arc` bump); all clones share the endpoints and the clock.
#[derive(Clone)]
pub struct BackendNet {
    inner: Arc<Inner>,
}

impl BackendNet {
    /// Starts building a backend net.
    pub fn builder() -> BackendNetBuilder {
        BackendNetBuilder {
            endpoints: HashMap::new(),
            latency: Duration::ZERO,
        }
    }

    /// The wall clock shared by every exchanger of this net.
    pub fn clock(&self) -> RuntimeClock {
        self.inner.clock
    }

    /// Number of registered endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.inner.endpoints.len()
    }

    /// Creates an exchanger sending from `source` — one per worker thread;
    /// the exchanger is `Send` and owns no endpoint state.
    pub fn exchanger(&self, source: SimAddr) -> BackendExchanger {
        BackendExchanger {
            net: self.clone(),
            _source: source,
            depth: 0,
            id_state: self.inner.ids.fetch_add(0x632B_E5AB, Ordering::Relaxed) | 1,
        }
    }

    fn dispatch(
        &self,
        depth: usize,
        dst: SimAddr,
        channel: ChannelKind,
        payload: &[u8],
    ) -> NetResult<Vec<u8>> {
        if depth >= MAX_DEPTH {
            return Err(NetError::TooDeep);
        }
        if !self.inner.latency.is_zero() {
            std::thread::sleep(self.inner.latency);
        }
        let endpoint = self
            .inner
            .endpoints
            .get(&dst)
            .ok_or(NetError::Unreachable(dst))?;
        // Endpoint mutexes are not re-entrant: a dispatch chain that leads
        // back to an endpoint this same thread is already serving would
        // deadlock on its own lock. The thread-local in-flight stack
        // detects exactly that case (cross-thread contention on a popular
        // endpoint still blocks normally, as intended).
        let re_entered = IN_FLIGHT.with(|stack| {
            let mut stack = stack.borrow_mut();
            if stack.contains(&dst) {
                true
            } else {
                stack.push(dst);
                false
            }
        });
        if re_entered {
            return Err(NetError::TooDeep);
        }
        let mut nested = BackendExchanger {
            net: self.clone(),
            _source: dst,
            depth: depth + 1,
            id_state: self.inner.ids.fetch_add(0x632B_E5AB, Ordering::Relaxed) | 1,
        };
        let reply = endpoint.lock().serve(&mut nested, channel, payload);
        IN_FLIGHT.with(|stack| {
            stack.borrow_mut().pop();
        });
        reply.ok_or(NetError::Timeout)
    }
}

impl std::fmt::Debug for BackendNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendNet")
            .field("endpoints", &self.inner.endpoints.len())
            .field("latency", &self.inner.latency)
            .finish()
    }
}

/// A `Send` [`Exchanger`] over a [`BackendNet`]: what a runtime worker
/// thread hands to its `CachingPoolResolver` so generations and background
/// refreshes reach the in-process resolver fleet.
pub struct BackendExchanger {
    net: BackendNet,
    _source: SimAddr,
    depth: usize,
    /// xorshift state for transaction ids; seeded per exchanger so two
    /// workers never walk the same id sequence.
    id_state: u64,
}

impl Exchanger for BackendExchanger {
    fn exchange(
        &mut self,
        dst: SimAddr,
        channel: ChannelKind,
        payload: &[u8],
        _timeout: Duration,
    ) -> NetResult<Vec<u8>> {
        self.net.dispatch(self.depth, dst, channel, payload)
    }

    fn next_id(&mut self) -> u16 {
        let mut x = self.id_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.id_state = x;
        (x >> 24) as u16 // sdoh-lint: allow(no-narrowing-cast, "intentionally takes 16 bits of the mixed xorshift state")
    }

    fn now(&self) -> SimInstant {
        self.net.inner.clock.now()
    }

    /// Performs the batch **concurrently**, one thread per exchange — the
    /// real-transport counterpart of the simulator's overlapped fan-out:
    /// a generation over N resolvers costs the slowest upstream round
    /// trip, not the sum. Outcomes come back in completion order, like the
    /// simulator's.
    fn exchange_all(&mut self, requests: Vec<ExchangeRequest>) -> Vec<ExchangeOutcome> {
        if requests.len() <= 1 {
            // No overlap to win; skip the thread spawn.
            return requests
                .into_iter()
                .enumerate()
                .map(|(index, request)| ExchangeOutcome {
                    index,
                    result: self.exchange(
                        request.dst,
                        request.channel,
                        &request.payload,
                        request.timeout,
                    ),
                    completed_at: self.now(),
                })
                .collect();
        }
        let net = &self.net;
        let depth = self.depth;
        // The re-entry detector is thread-local; the batch threads must
        // inherit this thread's in-flight endpoint stack, or a dispatch
        // cycle through a batched fan-out would sail past the detector
        // and deadlock on a mutex this thread already holds.
        let in_flight: Vec<SimAddr> = IN_FLIGHT.with(|stack| stack.borrow().clone());
        let mut outcomes = std::thread::scope(|scope| {
            let handles: Vec<_> = requests
                .into_iter()
                .enumerate()
                .map(|(index, request)| {
                    let in_flight = in_flight.clone();
                    scope.spawn(move || {
                        IN_FLIGHT.with(|stack| *stack.borrow_mut() = in_flight);
                        let result =
                            net.dispatch(depth, request.dst, request.channel, &request.payload);
                        ExchangeOutcome {
                            index,
                            completed_at: net.clock().now(),
                            result,
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("exchange thread panicked")) // sdoh-lint: allow(no-panic, "re-raising a worker thread panic is the only sound response")
                .collect::<Vec<_>>()
        });
        outcomes.sort_by_key(|outcome| outcome.completed_at);
        outcomes
    }
}

impl std::fmt::Debug for BackendExchanger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendExchanger")
            .field("net", &self.net)
            .field("depth", &self.depth)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl PayloadService for Echo {
        fn serve(
            &mut self,
            _exchanger: &mut dyn Exchanger,
            _channel: ChannelKind,
            payload: &[u8],
        ) -> Option<Vec<u8>> {
            Some(payload.to_vec())
        }
    }

    /// Forwards to another endpoint through the nested exchanger.
    struct Forward(SimAddr);
    impl PayloadService for Forward {
        fn serve(
            &mut self,
            exchanger: &mut dyn Exchanger,
            channel: ChannelKind,
            payload: &[u8],
        ) -> Option<Vec<u8>> {
            exchanger
                .exchange(self.0, channel, payload, Duration::from_secs(1))
                .ok()
        }
    }

    #[test]
    fn dispatch_reaches_endpoints_and_reports_unreachable() {
        let echo_addr = SimAddr::v4(192, 0, 2, 1, 443);
        let net = BackendNet::builder().register(echo_addr, Echo).build();
        assert_eq!(net.endpoint_count(), 1);
        let mut exchanger = net.exchanger(SimAddr::v4(10, 0, 0, 1, 40000));
        let reply = exchanger
            .exchange(
                echo_addr,
                ChannelKind::Secure,
                b"ping",
                Duration::from_secs(1),
            )
            .unwrap();
        assert_eq!(reply, b"ping");
        let err = exchanger
            .exchange(
                SimAddr::v4(192, 0, 2, 9, 443),
                ChannelKind::Secure,
                b"ping",
                Duration::from_secs(1),
            )
            .unwrap_err();
        assert!(matches!(err, NetError::Unreachable(_)));
        assert!(exchanger.now() >= SimInstant::EPOCH);
        assert_ne!(exchanger.next_id(), exchanger.next_id());
    }

    #[test]
    fn nested_dispatch_works_and_cycles_are_cut() {
        let echo = SimAddr::v4(192, 0, 2, 1, 443);
        let hop = SimAddr::v4(192, 0, 2, 2, 443);
        let loopy = SimAddr::v4(192, 0, 2, 3, 443);
        let net = BackendNet::builder()
            .register(echo, Echo)
            .register(hop, Forward(echo))
            .register(loopy, Forward(loopy))
            .build();
        let mut exchanger = net.exchanger(SimAddr::v4(10, 0, 0, 1, 40000));
        let reply = exchanger
            .exchange(hop, ChannelKind::Secure, b"via", Duration::from_secs(1))
            .unwrap();
        assert_eq!(reply, b"via");
        // A self-forwarding endpoint terminates via the re-entry detector
        // instead of deadlocking; the endpoint's inner failure surfaces as
        // a timeout at the caller.
        let err = exchanger
            .exchange(loopy, ChannelKind::Secure, b"x", Duration::from_secs(1))
            .unwrap_err();
        assert_eq!(err, NetError::Timeout);
    }

    /// Fans out to its two targets with a batched `exchange_all` and
    /// replies with the first successful payload.
    struct BatchFanout(SimAddr, SimAddr);
    impl PayloadService for BatchFanout {
        fn serve(
            &mut self,
            exchanger: &mut dyn Exchanger,
            channel: ChannelKind,
            payload: &[u8],
        ) -> Option<Vec<u8>> {
            let outcomes = exchanger.exchange_all(vec![
                ExchangeRequest::new(self.0, channel, payload.to_vec(), Duration::ZERO),
                ExchangeRequest::new(self.1, channel, payload.to_vec(), Duration::ZERO),
            ]);
            outcomes.into_iter().find_map(|o| o.result.ok())
        }
    }

    #[test]
    fn batched_cycles_error_instead_of_deadlocking() {
        // The fan-out endpoint batches to [echo, itself]: the self-request
        // runs on a batch thread, which must inherit the caller chain's
        // in-flight stack and fail with the re-entry error rather than
        // block on the endpoint mutex the chain already holds.
        let echo = SimAddr::v4(192, 0, 2, 1, 443);
        let fanout = SimAddr::v4(192, 0, 2, 2, 443);
        let net = BackendNet::builder()
            .register(echo, Echo)
            .register(fanout, BatchFanout(echo, fanout))
            .build();
        let mut exchanger = net.exchanger(SimAddr::v4(10, 0, 0, 1, 40000));
        let reply = exchanger
            .exchange(fanout, ChannelKind::Secure, b"hi", Duration::from_secs(1))
            .unwrap();
        assert_eq!(reply, b"hi", "the echo half of the batch still answers");
    }

    #[test]
    fn exchange_all_overlaps_upstream_latency() {
        let servers: Vec<SimAddr> = (1..=3).map(|i| SimAddr::v4(192, 0, 2, i, 443)).collect();
        let mut builder = BackendNet::builder().with_latency(Duration::from_millis(30));
        for &server in &servers {
            builder = builder.register(server, Echo);
        }
        let net = builder.build();
        let mut exchanger = net.exchanger(SimAddr::v4(10, 0, 0, 1, 40000));
        let started = std::time::Instant::now();
        let outcomes = exchanger.exchange_all(
            servers
                .iter()
                .map(|&dst| {
                    ExchangeRequest::new(dst, ChannelKind::Secure, b"q".to_vec(), Duration::ZERO)
                })
                .collect(),
        );
        let elapsed = started.elapsed();
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes.iter().all(|o| o.result.is_ok()));
        // Three concurrent 30 ms round trips cost ~30 ms, not 90 ms.
        assert!(
            elapsed < Duration::from_millis(75),
            "batch took {elapsed:?}, upstream latency did not overlap"
        );
    }

    #[test]
    fn exchangers_cross_threads() {
        let echo = SimAddr::v4(192, 0, 2, 1, 443);
        let net = BackendNet::builder().register(echo, Echo).build();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let mut exchanger = net.exchanger(SimAddr::v4(10, 0, 0, i, 40000));
                std::thread::spawn(move || {
                    exchanger
                        .exchange(echo, ChannelKind::Secure, &[i], Duration::from_secs(1))
                        .unwrap()
                })
            })
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            assert_eq!(handle.join().unwrap(), vec![i as u8]);
        }
    }
}
