//! Threaded real-socket serving runtime for the secure pool-serving
//! subsystem of *"Secure Consensus Generation with Distributed DoH"*.
//!
//! Everything below this crate is sans-IO: pool generation
//! ([`sdoh_core::PoolSession`]), the serving subsystem
//! ([`sdoh_core::CachingPoolResolver`]) and the DoH stack all *describe*
//! their I/O and run equally well inside the deterministic simulator or
//! against a real transport. This crate is the second of those drivers:
//! a multi-threaded Do53 front end over `std::net` sockets.
//!
//! * [`PoolRuntime`] — binds a UDP socket (plus a TCP listener for
//!   truncated-answer retries), routes each query by
//!   `(domain, address family)` hash to one of N worker threads, each of
//!   which **owns** its [`CachingPoolResolver`](sdoh_core::CachingPoolResolver)
//!   shard outright (no shared lock on the serving path), pumps background
//!   refreshes from a
//!   dedicated thread, aggregates per-shard
//!   [`ServeSnapshot`](sdoh_core::ServeSnapshot)s into periodic
//!   [`RuntimeStats`], and shuts down gracefully.
//! * [`BackendNet`] — in-process upstream endpoints (full RFC 8484 DoH
//!   terminators via [`PayloadService`]) reached through `Send`
//!   [`BackendExchanger`]s, so a complete serving stack runs end-to-end
//!   over loopback without leaving the process.
//! * [`RuntimeClient`] — a real-socket stub client (UDP with TCP retry on
//!   TC=1) for tests, experiments and examples.
//! * [`RuntimeClock`] — the host clock expressed as the workspace's
//!   instant type, so cache TTLs and refresh deadlines measure real time.
//!
//! # Observability
//!
//! Every [`PoolRuntime`] owns an [`sdoh_metrics::Registry`]
//! ([`PoolRuntime::registry`]): the front-door socket counters
//! (`sdoh_udp_queries_total`, `sdoh_tcp_queries_total`,
//! `sdoh_truncated_responses_total`) are registry counters, each shard
//! worker records per-query serving latency into its own
//! `sdoh_serve_latency_seconds` histogram (two relaxed atomic adds on the
//! hot path — disable via [`RuntimeConfig::record_latency`] for overhead
//! runs), and a scrape-time collector pulls fresh
//! [`ServeSnapshot`](sdoh_core::ServeSnapshot)s from the workers and
//! exports them through the shared vocabulary in
//! [`sdoh_core::snapshot_samples`].
//!
//! Set [`RuntimeConfig::stats_bind`] to bind the HTTP stats listener:
//! `/metrics` serves the Prometheus text exposition, `/metrics.json` the
//! JSON flavour, and `/healthz` is the readiness probe — 200 while every
//! shard answers its snapshot within the health deadline, 503 with an
//! `unresponsive_shards` count otherwise, plus the pool-guarantee state
//! (generation failures / negative serves). Point the workspace's
//! `fleet-aggregator` binary (or [`sdoh_metrics::scrape_fleet`]) at
//! several instances' listeners for fleet-wide rollups. Shards that miss
//! a snapshot deadline surface as `None` entries in
//! [`RuntimeStats::per_shard`] and are never silently counted as zeros.
//!
//! # Hot reconfiguration
//!
//! A running [`PoolRuntime`] hands out a cloneable [`ControlHandle`]
//! ([`PoolRuntime::control`]). Serving configuration lives in immutable,
//! monotonically numbered **epochs** ([`sdoh_core::ServeConfig`]):
//! [`ControlHandle::apply`] validates a [`ConfigDelta`] (new TTLs, stale
//! window, upstream resolver set, pool hardening knobs), publishes the
//! next epoch and fans it to every shard **through the shard's existing
//! work queue** — no lock is added to the serving path, and each shard
//! acks the epoch in its next loop iteration. Cached entries are never
//! invalidated by an epoch switch; they are re-judged against the new
//! knobs at lookup time, and a served answer's age is always bounded by
//! the *maximum* of the old and new `TTL + stale window` horizons.
//! [`ControlHandle::rescale`] changes the shard count live, handing cache
//! entries from retiring shards to their new owners while queries keep
//! flowing.
//!
//! ```
//! use std::time::Duration;
//! use sdoh_core::{AddressSource, CacheConfig, CachingPoolResolver, PoolConfig,
//!                 SecurePoolGenerator, StaticSource};
//! use sdoh_netsim::SimAddr;
//! use sdoh_runtime::{BackendNet, ConfigDelta, PoolRuntime, RuntimeConfig, Shard};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let backends = BackendNet::builder().build();
//! let shards = (0..2)
//!     .map(|i| {
//!         let sources: Vec<Box<dyn AddressSource>> = vec![
//!             Box::new(StaticSource::answering("r1", vec!["203.0.113.1".parse().unwrap()])),
//!             Box::new(StaticSource::answering("r2", vec!["203.0.113.2".parse().unwrap()])),
//!         ];
//!         let generator = SecurePoolGenerator::new(PoolConfig::algorithm1(), sources)?;
//!         Ok(Shard::new(
//!             CachingPoolResolver::new(generator, CacheConfig::default()),
//!             Box::new(backends.exchanger(SimAddr::v4(10, 0, 0, i, 40000))),
//!         ))
//!     })
//!     .collect::<Result<Vec<_>, sdoh_core::PoolError>>()?;
//! let runtime = PoolRuntime::start(RuntimeConfig::default(), shards)?;
//!
//! // Flip the TTL live: epoch 0 -> 1, acked by every shard, no restart.
//! let control = runtime.control();
//! let mut cache = *control.current_config().cache();
//! cache.ttl = Duration::from_secs(2).into();
//! let receipt = control.apply(ConfigDelta::new().with_cache(cache))?;
//! assert_eq!(receipt.epoch, 1);
//! assert!(control.wait_for_epoch(receipt.epoch, Duration::from_secs(5)));
//!
//! let stats = runtime.shutdown();
//! assert_eq!(stats.config_epoch, 1);
//! # Ok(())
//! # }
//! ```
//!
//! # Example: serving static pools over real sockets
//!
//! ```
//! use sdoh_core::{AddressSource, CacheConfig, CachingPoolResolver, PoolConfig,
//!                 SecurePoolGenerator, StaticSource};
//! use sdoh_netsim::SimAddr;
//! use sdoh_runtime::{BackendNet, PoolRuntime, RuntimeClient, RuntimeConfig, Shard};
//! use sdoh_dns_wire::{Message, RrType};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let backends = BackendNet::builder().build(); // static sources: no upstreams needed
//! let shards = (0..2)
//!     .map(|i| {
//!         let sources: Vec<Box<dyn AddressSource>> = vec![
//!             Box::new(StaticSource::answering("r1", vec!["203.0.113.1".parse().unwrap()])),
//!             Box::new(StaticSource::answering("r2", vec!["203.0.113.2".parse().unwrap()])),
//!         ];
//!         let generator = SecurePoolGenerator::new(PoolConfig::algorithm1(), sources)?;
//!         Ok(Shard::new(
//!             CachingPoolResolver::new(generator, CacheConfig::default()),
//!             Box::new(backends.exchanger(SimAddr::v4(10, 0, 0, i, 40000))),
//!         ))
//!     })
//!     .collect::<Result<Vec<_>, sdoh_core::PoolError>>()?;
//!
//! let runtime = PoolRuntime::start(RuntimeConfig::default(), shards)?;
//! let client = RuntimeClient::connect(runtime.udp_addr(), runtime.tcp_addr())?;
//! let response = client.query(&Message::query(1, "pool.ntp.org".parse()?, RrType::A))?;
//! assert_eq!(response.answer_addresses().len(), 2);
//!
//! let stats = runtime.shutdown();
//! assert_eq!(stats.total.serve.queries, 1);
//! assert_eq!(stats.total.serve.generations, 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod backend;
mod client;
mod clock;
mod control;
mod loopback;
mod runtime;

pub use backend::{BackendExchanger, BackendNet, BackendNetBuilder, PayloadService};
pub use client::RuntimeClient;
pub use clock::RuntimeClock;
pub use control::{ConfigDelta, ControlHandle, EpochReceipt, SourceFactory};
pub use loopback::{LoopbackConfig, LoopbackFleet};
pub use runtime::{PoolRuntime, RuntimeConfig, RuntimeStats, Shard};
