//! Threaded real-socket serving runtime for the secure pool-serving
//! subsystem of *"Secure Consensus Generation with Distributed DoH"*.
//!
//! Everything below this crate is sans-IO: pool generation
//! ([`sdoh_core::PoolSession`]), the serving subsystem
//! ([`sdoh_core::CachingPoolResolver`]) and the DoH stack all *describe*
//! their I/O and run equally well inside the deterministic simulator or
//! against a real transport. This crate is the second of those drivers:
//! a multi-threaded Do53 front end over `std::net` sockets.
//!
//! * [`PoolRuntime`] — binds a UDP socket (plus a TCP listener for
//!   truncated-answer retries), routes each query by
//!   `(domain, address family)` hash to one of N worker threads, each of
//!   which **owns** its [`CachingPoolResolver`](sdoh_core::CachingPoolResolver)
//!   shard outright (no shared lock on the serving path), pumps background
//!   refreshes from a
//!   dedicated thread, aggregates per-shard
//!   [`ServeSnapshot`](sdoh_core::ServeSnapshot)s into periodic
//!   [`RuntimeStats`], and shuts down gracefully.
//! * [`BackendNet`] — in-process upstream endpoints (full RFC 8484 DoH
//!   terminators via [`PayloadService`]) reached through `Send`
//!   [`BackendExchanger`]s, so a complete serving stack runs end-to-end
//!   over loopback without leaving the process.
//! * [`RuntimeClient`] — a real-socket stub client (UDP with TCP retry on
//!   TC=1) for tests, experiments and examples.
//! * [`RuntimeClock`] — the host clock expressed as the workspace's
//!   instant type, so cache TTLs and refresh deadlines measure real time.
//!
//! # Example: serving static pools over real sockets
//!
//! ```
//! use sdoh_core::{AddressSource, CacheConfig, CachingPoolResolver, PoolConfig,
//!                 SecurePoolGenerator, StaticSource};
//! use sdoh_netsim::SimAddr;
//! use sdoh_runtime::{BackendNet, PoolRuntime, RuntimeClient, RuntimeConfig, Shard};
//! use sdoh_dns_wire::{Message, RrType};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let backends = BackendNet::builder().build(); // static sources: no upstreams needed
//! let shards = (0..2)
//!     .map(|i| {
//!         let sources: Vec<Box<dyn AddressSource>> = vec![
//!             Box::new(StaticSource::answering("r1", vec!["203.0.113.1".parse().unwrap()])),
//!             Box::new(StaticSource::answering("r2", vec!["203.0.113.2".parse().unwrap()])),
//!         ];
//!         let generator = SecurePoolGenerator::new(PoolConfig::algorithm1(), sources)?;
//!         Ok(Shard::new(
//!             CachingPoolResolver::new(generator, CacheConfig::default()),
//!             Box::new(backends.exchanger(SimAddr::v4(10, 0, 0, i, 40000))),
//!         ))
//!     })
//!     .collect::<Result<Vec<_>, sdoh_core::PoolError>>()?;
//!
//! let runtime = PoolRuntime::start(RuntimeConfig::default(), shards)?;
//! let client = RuntimeClient::connect(runtime.udp_addr(), runtime.tcp_addr())?;
//! let response = client.query(&Message::query(1, "pool.ntp.org".parse()?, RrType::A))?;
//! assert_eq!(response.answer_addresses().len(), 2);
//!
//! let stats = runtime.shutdown();
//! assert_eq!(stats.total.serve.queries, 1);
//! assert_eq!(stats.total.serve.generations, 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod backend;
mod client;
mod clock;
mod loopback;
mod runtime;

pub use backend::{BackendExchanger, BackendNet, BackendNetBuilder, PayloadService};
pub use client::RuntimeClient;
pub use clock::RuntimeClock;
pub use loopback::{LoopbackConfig, LoopbackFleet};
pub use runtime::{PoolRuntime, RuntimeConfig, RuntimeStats, Shard};
