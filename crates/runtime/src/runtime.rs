//! The threaded real-socket serving runtime: [`PoolRuntime`].
//!
//! # Architecture
//!
//! ```text
//!               UDP datagrams                TCP (truncated retries)
//!                    │                                │
//!              ┌─────▼──────┐                  ┌──────▼──────┐
//!              │ dispatcher │                  │ tcp acceptor│
//!              └─────┬──────┘                  └──────┬──────┘
//!        hash(qname, qtype) ──────────────────────────┘
//!         ┌──────────┼─────────────┐
//!   ┌─────▼────┐ ┌───▼──────┐ ┌────▼─────┐     ┌───────────┐
//!   │ shard 0  │ │ shard 1  │ │ shard N-1│ ◄── │ refresh   │ (Pump tick)
//!   │ resolver │ │ resolver │ │ resolver │ ◄── │ stats     │ (Snapshot tick)
//!   └──────────┘ └──────────┘ └──────────┘     └───────────┘
//! ```
//!
//! Each worker thread **owns** one [`CachingPoolResolver`] shard and one
//! `Send` exchanger — there is no lock around the pool cache at all;
//! queries are routed by `(domain, address family)` hash so every key
//! always lands on the same shard and singleflight coalescing keeps
//! working per shard. A dedicated refresh thread ticks the workers to pump
//! [`run_due_refreshes`](CachingPoolResolver::run_due_refreshes) off the
//! query path, and a stats thread aggregates per-shard
//! [`ServeSnapshot`]s into a periodic [`RuntimeStats`].
//!
//! Responses that exceed the configured UDP payload limit are answered
//! with an empty TC=1 message; clients retry over the TCP listener bound
//! to the same port number (RFC 1035 length-prefixed framing).
//! [`PoolRuntime::shutdown`] stops the socket threads, drains the worker
//! queues, takes a final snapshot and joins every thread.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::Hasher;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use sdoh_core::{
    snapshot_samples, CacheEntryProbe, CachedPool, CachingPoolResolver, ConfigError, PoolKey,
    ServeConfig, ServeSnapshot,
};
use sdoh_dns_server::Exchanger;
use sdoh_dns_wire::{Message, Rcode};
use sdoh_metrics::{
    render_json, render_prometheus, Counter, Histogram, HttpResponse, Registry, Sample,
    SampleValue, StatsServer,
};
use sdoh_netsim::SimInstant;

use crate::control::{owner_of, ControlHandle, EpochOrder, RouteState, RouteTable};

/// How long a stats aggregation waits for each shard before marking it
/// unresponsive (a wedged worker must not wedge the exporter).
const SNAPSHOT_TIMEOUT: Duration = Duration::from_secs(5);

/// The shorter deadline `/healthz` probes shards with: a readiness check
/// has to answer promptly even when a worker is stuck in a generation.
const HEALTH_TIMEOUT: Duration = Duration::from_secs(1);

/// Configuration of a [`PoolRuntime`].
///
/// Non-exhaustive: build it from [`RuntimeConfig::default`] with the
/// `with_*` builder methods so future knobs aren't breaking changes.
/// [`RuntimeConfig::validate`] (also run by [`PoolRuntime::start`])
/// rejects combinations that would misbehave at runtime instead of
/// letting them wedge a tick loop.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RuntimeConfig {
    /// Address to bind the UDP socket (and the TCP listener) on. Port 0
    /// picks an ephemeral port; read it back from
    /// [`PoolRuntime::udp_addr`].
    pub bind: SocketAddr,
    /// How often the refresh thread ticks the workers to pump due
    /// background refreshes. `Duration::ZERO` disables the refresh pump
    /// entirely — then [`PoolRuntime::start`] rejects shards configured
    /// with a stale window, which would queue refreshes nothing ever runs.
    pub refresh_interval: Duration,
    /// How often the stats thread aggregates per-shard snapshots into
    /// [`PoolRuntime::latest_stats`].
    pub stats_interval: Duration,
    /// Largest UDP response payload served without truncation. Larger
    /// answers are replaced by an empty TC=1 response so the client
    /// retries over TCP.
    pub udp_payload_limit: usize,
    /// Granularity at which blocking socket loops re-check the shutdown
    /// flag.
    pub poll_interval: Duration,
    /// Whether to bind the TCP fallback listener.
    pub enable_tcp: bool,
    /// Address to bind the HTTP stats listener on (`/metrics`,
    /// `/metrics.json`, `/healthz`); `None` disables it. Port 0 picks an
    /// ephemeral port; read it back from [`PoolRuntime::stats_addr`].
    pub stats_bind: Option<SocketAddr>,
    /// Whether shard workers record per-query serving latency into the
    /// `sdoh_serve_latency_seconds` histograms. On by default; the E17
    /// overhead measurement compares warm throughput with this on and off.
    pub record_latency: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            bind: SocketAddr::from(([127, 0, 0, 1], 0)),
            refresh_interval: Duration::from_millis(50),
            stats_interval: Duration::from_millis(500),
            udp_payload_limit: 1232,
            poll_interval: Duration::from_millis(5),
            enable_tcp: true,
            stats_bind: None,
            record_latency: true,
        }
    }
}

impl RuntimeConfig {
    /// Sets the UDP/TCP bind address.
    pub fn with_bind(mut self, bind: SocketAddr) -> Self {
        self.bind = bind;
        self
    }

    /// Sets the refresh-pump interval (`Duration::ZERO` disables it).
    pub fn with_refresh_interval(mut self, interval: Duration) -> Self {
        self.refresh_interval = interval;
        self
    }

    /// Sets the periodic stats-aggregation interval (must be non-zero).
    pub fn with_stats_interval(mut self, interval: Duration) -> Self {
        self.stats_interval = interval;
        self
    }

    /// Sets the UDP truncation threshold (must be non-zero).
    pub fn with_udp_payload_limit(mut self, limit: usize) -> Self {
        self.udp_payload_limit = limit;
        self
    }

    /// Sets the shutdown-flag polling granularity (must be non-zero).
    pub fn with_poll_interval(mut self, interval: Duration) -> Self {
        self.poll_interval = interval;
        self
    }

    /// Enables or disables the TCP fallback listener.
    pub fn with_tcp(mut self, enable: bool) -> Self {
        self.enable_tcp = enable;
        self
    }

    /// Sets the HTTP stats listener bind address (`None` disables it).
    pub fn with_stats_bind(mut self, bind: Option<SocketAddr>) -> Self {
        self.stats_bind = bind;
        self
    }

    /// Enables or disables per-query latency histograms.
    pub fn with_record_latency(mut self, record: bool) -> Self {
        self.record_latency = record;
        self
    }

    /// Validates the runtime knobs: the stats and poll intervals drive
    /// tick loops and must be non-zero, and a zero payload limit would
    /// truncate every answer.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Zero`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.stats_interval.is_zero() {
            return Err(ConfigError::Zero("stats_interval"));
        }
        if self.poll_interval.is_zero() {
            return Err(ConfigError::Zero("poll_interval"));
        }
        if self.udp_payload_limit == 0 {
            return Err(ConfigError::Zero("udp_payload_limit"));
        }
        Ok(())
    }
}

/// One serving shard: a caching resolver plus the exchanger its
/// generations and refreshes go out through. Both move into the shard's
/// worker thread at [`PoolRuntime::start`] — which is exactly why the
/// whole serve layer is `Send`.
pub struct Shard {
    resolver: CachingPoolResolver,
    exchanger: Box<dyn Exchanger + Send>,
}

impl Shard {
    /// Pairs a resolver with its upstream exchanger.
    pub fn new(resolver: CachingPoolResolver, exchanger: Box<dyn Exchanger + Send>) -> Self {
        Shard {
            resolver,
            exchanger,
        }
    }
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("resolver", &self.resolver)
            .finish()
    }
}

/// Front-door counters kept by the socket threads (everything behind the
/// dispatch point is counted per shard in [`ServeSnapshot`]s). The cells
/// are registry [`Counter`] handles, so the same bumps feed both
/// [`RuntimeStats`] and the `/metrics` exposition.
#[derive(Debug)]
pub(crate) struct FrontCounters {
    udp_received: Counter,
    tcp_received: Counter,
    truncated: Counter,
    dropped: Counter,
}

impl FrontCounters {
    fn register(registry: &Registry) -> FrontCounters {
        let counter = |(name, help): (&str, &str)| registry.counter(name, help);
        FrontCounters {
            udp_received: counter(sdoh_core::METRIC_UDP_QUERIES),
            tcp_received: counter(sdoh_core::METRIC_TCP_QUERIES),
            truncated: counter(sdoh_core::METRIC_TRUNCATED_RESPONSES),
            dropped: counter(sdoh_core::METRIC_DROPPED_QUERIES),
        }
    }
}

/// One aggregated statistics observation of a running [`PoolRuntime`].
#[derive(Debug, Clone)]
pub struct RuntimeStats {
    /// Snapshot of every shard, in shard order. `None` for shards that did
    /// not answer the snapshot request within the timeout — a wedged
    /// worker (e.g. stuck in a generation), never silently folded into the
    /// totals as zeros.
    pub per_shard: Vec<Option<ServeSnapshot>>,
    /// The fleet-wide aggregate of the *responsive* shards.
    pub total: ServeSnapshot,
    /// Datagrams accepted by the UDP dispatcher.
    pub udp_queries: u64,
    /// Queries accepted over the TCP fallback listener.
    pub tcp_queries: u64,
    /// UDP responses truncated to TC=1 because they exceeded the payload
    /// limit.
    pub truncated_responses: u64,
    /// Accepted queries that could not be handed to a shard worker — zero
    /// during normal operation, including live rescales.
    pub dropped_queries: u64,
    /// The config epoch published when the snapshot was taken.
    pub config_epoch: u64,
    /// Runtime uptime when the snapshot was taken.
    pub taken_at: SimInstant,
}

impl RuntimeStats {
    /// Shards that missed the snapshot deadline (their `per_shard` entry
    /// is `None`). Non-zero means `total` undercounts and `/healthz`
    /// reports the instance unready.
    pub fn unresponsive_shards(&self) -> usize {
        self.per_shard.iter().filter(|s| s.is_none()).count()
    }

    /// Renders the stats as a JSON document (stable hand-rolled schema:
    /// `total`, `per_shard` with `null` for unresponsive shards, and the
    /// front-door counters).
    // sdoh-lint: allow(hot-path-purity, "stats rendering runs at scrape cadence, not per query")
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"taken_at_seconds\": {}, \"udp_queries\": {}, \"tcp_queries\": {}, \
             \"truncated_responses\": {}, \"dropped_queries\": {}, \"config_epoch\": {}, \
             \"unresponsive_shards\": {}, \"total\": {}, \
             \"per_shard\": [",
            self.taken_at.as_nanos() as f64 / 1e9,
            self.udp_queries,
            self.tcp_queries,
            self.truncated_responses,
            self.dropped_queries,
            self.config_epoch,
            self.unresponsive_shards(),
            snapshot_json(&self.total),
        ));
        for (index, shard) in self.per_shard.iter().enumerate() {
            if index > 0 {
                out.push_str(", ");
            }
            match shard {
                Some(snapshot) => out.push_str(&snapshot_json(snapshot)),
                None => out.push_str("null"),
            }
        }
        out.push_str("]}");
        out
    }
}

/// One [`ServeSnapshot`] as a JSON object (helper of
/// [`RuntimeStats::to_json`]).
// sdoh-lint: allow(hot-path-purity, "stats rendering runs at scrape cadence, not per query")
fn snapshot_json(snapshot: &ServeSnapshot) -> String {
    format!(
        "{{\"queries\": {}, \"hits\": {}, \"stale_serves\": {}, \"negative_hits\": {}, \
         \"misses\": {}, \"coalesced_waiters\": {}, \"generations\": {}, \
         \"generation_failures\": {}, \"refreshes\": {}, \"hit_ratio\": {:.6}, \
         \"cache_entries\": {}, \"pending_refreshes\": {}}}",
        snapshot.serve.queries,
        snapshot.serve.hits,
        snapshot.serve.stale_serves,
        snapshot.serve.negative_hits,
        snapshot.serve.misses,
        snapshot.serve.coalesced_waiters,
        snapshot.serve.generations,
        snapshot.serve.generation_failures,
        snapshot.serve.refreshes,
        snapshot.serve.hit_ratio(),
        snapshot.entries,
        snapshot.pending_refreshes,
    )
}

impl std::fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "runtime stats @ {:.1}s: epoch={} udp={} tcp={} truncated={} dropped={} \
             shards={} unresponsive={}",
            self.taken_at.as_nanos() as f64 / 1e9,
            self.config_epoch,
            self.udp_queries,
            self.tcp_queries,
            self.truncated_responses,
            self.dropped_queries,
            self.per_shard.len(),
            self.unresponsive_shards(),
        )?;
        writeln!(
            f,
            "  total: queries={} hits={} stale={} neg={} misses={} coalesced={} \
             generations={} failures={} refreshes={} hit_ratio={:.1}% entries={} pending={}",
            self.total.serve.queries,
            self.total.serve.hits,
            self.total.serve.stale_serves,
            self.total.serve.negative_hits,
            self.total.serve.misses,
            self.total.serve.coalesced_waiters,
            self.total.serve.generations,
            self.total.serve.generation_failures,
            self.total.serve.refreshes,
            self.total.serve.hit_ratio() * 100.0,
            self.total.entries,
            self.total.pending_refreshes,
        )?;
        for (index, shard) in self.per_shard.iter().enumerate() {
            match shard {
                Some(snapshot) => writeln!(
                    f,
                    "  shard {index}: queries={} hits={} misses={} generations={} entries={}",
                    snapshot.serve.queries,
                    snapshot.serve.hits,
                    snapshot.serve.misses,
                    snapshot.serve.generations,
                    snapshot.entries,
                )?,
                None => writeln!(f, "  shard {index}: unresponsive (snapshot timed out)")?,
            }
        }
        Ok(())
    }
}

pub(crate) enum WorkItem {
    /// Serve one wire-format query and reply along the given path.
    Query { wire: Vec<u8>, reply: ReplyPath },
    /// Pump due background refreshes (sent by the refresh thread).
    Pump,
    /// Report a consistent snapshot of this shard's state.
    Snapshot(mpsc::Sender<(usize, ServeSnapshot)>),
    /// Report a probe of every cache entry (control-plane invariant
    /// checks).
    Probe(mpsc::Sender<(usize, Vec<CacheEntryProbe>)>),
    /// Adopt a new config epoch and ack its number into the slot.
    Reconfigure {
        order: Arc<EpochOrder>,
        ack: Arc<AtomicU64>,
    },
    /// The hash ring now spans `shards` shards: extract every entry this
    /// shard no longer owns and forward it to its new owner over `table`,
    /// then confirm on `done`.
    Rehash {
        table: Arc<Vec<mpsc::Sender<WorkItem>>>,
        shards: usize,
        done: mpsc::Sender<usize>,
    },
    /// Adopt an entry handed off by another shard (stamps intact).
    Install { key: PoolKey, cached: CachedPool },
    /// This shard left the hash ring: hand every entry to its owner under
    /// the `shards`-wide ring, confirm on `done`, then linger in retired
    /// mode — still answering stray queries (and immediately forwarding
    /// whatever they generate) — until the queue disconnects.
    Retire {
        table: Arc<Vec<mpsc::Sender<WorkItem>>>,
        shards: usize,
        done: mpsc::Sender<usize>,
    },
    /// Drain and exit.
    Shutdown,
}

pub(crate) enum ReplyPath {
    /// Answer with `send_to` on the shared UDP socket; responses above the
    /// payload limit are truncated to TC=1.
    Udp(SocketAddr),
    /// Hand the full response back to the TCP connection handler.
    Tcp(mpsc::Sender<Vec<u8>>),
}

/// Everything a worker thread needs besides its shard: shared by
/// [`PoolRuntime::start`] and [`ControlHandle::rescale`] (which spawns
/// additional workers on a live runtime).
pub(crate) struct WorkerContext {
    socket: Arc<UdpSocket>,
    counters: Arc<FrontCounters>,
    udp_payload_limit: usize,
    record_latency: bool,
    registry: Registry,
    /// Per-shard latency histograms, cached so a shrink-then-grow cycle
    /// reuses shard `i`'s histogram instead of re-registering it (the
    /// registry rejects duplicate registrations).
    latency: Mutex<HashMap<usize, Histogram>>,
}

impl WorkerContext {
    // sdoh-lint: allow(hot-path-purity, "runs once per shard at spawn/rescale, not per query")
    fn latency_for(&self, index: usize) -> Option<Histogram> {
        if !self.record_latency {
            return None;
        }
        let mut cache = self.latency.lock();
        Some(
            cache
                .entry(index)
                .or_insert_with(|| {
                    let (name, help) = sdoh_core::METRIC_SERVE_LATENCY;
                    self.registry
                        .histogram_with(name, help, &[("shard", &index.to_string())])
                })
                .clone(),
        )
    }
}

/// Spawns one shard worker thread. `index` is the shard's position in the
/// route table.
// sdoh-lint: allow(hot-path-purity, "thread naming happens once at spawn time")
pub(crate) fn spawn_worker(
    ctx: &WorkerContext,
    index: usize,
    shard: Shard,
    rx: mpsc::Receiver<WorkItem>,
) -> std::io::Result<JoinHandle<()>> {
    let socket = Arc::clone(&ctx.socket);
    let counters = Arc::clone(&ctx.counters);
    let limit = ctx.udp_payload_limit;
    let latency = ctx.latency_for(index);
    std::thread::Builder::new()
        .name(format!("sdoh-shard-{index}"))
        .spawn(move || worker_loop(index, shard, rx, socket, limit, counters, latency))
}

/// The running threaded front end. Dropping it without calling
/// [`PoolRuntime::shutdown`] aborts the process threads ungracefully
/// (detached); always shut down explicitly.
pub struct PoolRuntime {
    udp_addr: SocketAddr,
    tcp_addr: Option<SocketAddr>,
    control: ControlHandle,
    service_handles: Vec<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    counters: Arc<FrontCounters>,
    latest: Arc<Mutex<Option<RuntimeStats>>>,
    clock: crate::clock::RuntimeClock,
    registry: Registry,
    stats_server: Option<StatsServer>,
}

impl PoolRuntime {
    /// Binds the sockets and spawns the worker, dispatcher, TCP, refresh
    /// and stats threads. One worker thread per entry of `shards`.
    ///
    /// # Errors
    ///
    /// Propagates socket binding/configuration failures. `shards` must be
    /// non-empty, [`RuntimeConfig::validate`] must pass, and a disabled
    /// refresh pump ([`RuntimeConfig::refresh_interval`] zero) rejects
    /// shards configured with a stale window — they would queue
    /// background refreshes nothing ever runs.
    pub fn start(config: RuntimeConfig, shards: Vec<Shard>) -> std::io::Result<PoolRuntime> {
        // The runtime-level config epoch starts from the first shard's
        // cache knobs (shards are normally built homogeneous); epoch 0.
        let first_cache_config = match shards.first() {
            Some(shard) => *shard.resolver.cache().config(),
            None => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "a runtime needs at least one shard",
                ))
            }
        };
        let invalid = |err: ConfigError| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, err.to_string())
        };
        config.validate().map_err(invalid)?;
        if config.refresh_interval.is_zero()
            && shards
                .iter()
                .any(|shard| !shard.resolver.cache().config().stale_window.is_zero())
        {
            return Err(invalid(ConfigError::Invalid {
                field: "refresh_interval",
                reason: "a stale window is configured but the refresh pump is disabled".into(),
            }));
        }
        let udp = Arc::new(UdpSocket::bind(config.bind)?);
        udp.set_read_timeout(Some(config.poll_interval))?;
        let udp_addr = udp.local_addr()?;
        let tcp = if config.enable_tcp {
            // Same address, same port number, TCP — the classic Do53 pair.
            let listener = TcpListener::bind(udp_addr)?;
            listener.set_nonblocking(true)?;
            Some(listener)
        } else {
            None
        };
        let tcp_addr = tcp.as_ref().map(|l| l.local_addr()).transpose()?;

        let stop = Arc::new(AtomicBool::new(false));
        let registry = Registry::new();
        let counters = Arc::new(FrontCounters::register(&registry));
        let latest: Arc<Mutex<Option<RuntimeStats>>> = Arc::new(Mutex::new(None));
        let clock = crate::clock::RuntimeClock::new();

        let initial = Arc::new(ServeConfig::initial(first_cache_config));

        let ctx = WorkerContext {
            socket: Arc::clone(&udp),
            counters: Arc::clone(&counters),
            udp_payload_limit: config.udp_payload_limit,
            record_latency: config.record_latency,
            registry: registry.clone(),
            latency: Mutex::new(HashMap::new()),
        };

        let shard_count = shards.len();
        let mut senders = Vec::with_capacity(shard_count);
        let mut acked = Vec::with_capacity(shard_count);
        let mut worker_handles = Vec::with_capacity(shard_count);
        for (index, shard) in shards.into_iter().enumerate() {
            let (tx, rx) = mpsc::channel::<WorkItem>();
            worker_handles.push(spawn_worker(&ctx, index, shard, rx)?);
            senders.push(tx);
            // Workers implicitly serve under epoch 0 from construction.
            acked.push(Arc::new(AtomicU64::new(0)));
        }
        let routes = Arc::new(RouteState::new(RouteTable { senders, acked }));
        let control = ControlHandle::new(Arc::clone(&routes), initial, ctx, worker_handles);

        // The serve-layer counters live inside the worker threads; a
        // scrape-time collector fetches fresh snapshots over the work
        // queues (reading the *live* route table, so rescales are
        // reflected) and renders them through the shared serve vocabulary,
        // plus the control-plane epoch gauges.
        {
            let routes = Arc::clone(&routes);
            let epoch = Arc::clone(&control.inner.epoch);
            // sdoh-lint: allow(hot-path-purity, "scrape-time collector: runs per /metrics pull, not per query")
            registry.register_collector(Box::new(move || {
                let (senders, acked) = {
                    let table = routes.table.lock();
                    (table.senders.clone(), table.acked.clone())
                };
                let per_shard = take_shard_snapshots(&senders, SNAPSHOT_TIMEOUT);
                let unresponsive = per_shard.iter().filter(|s| s.is_none()).count();
                let mut total = ServeSnapshot::default();
                for snapshot in per_shard.iter().flatten() {
                    total.absorb(snapshot);
                }
                let gauge =
                    |(name, help): (&str, &str), labels: Vec<(String, String)>, v: f64| Sample {
                        name: name.to_string(),
                        help: help.to_string(),
                        labels,
                        value: SampleValue::Gauge(v),
                    };
                let mut samples = snapshot_samples(&total, &[]);
                samples.push(gauge(
                    sdoh_core::METRIC_SHARDS,
                    Vec::new(),
                    senders.len() as f64,
                ));
                samples.push(gauge(
                    sdoh_core::METRIC_UNRESPONSIVE_SHARDS,
                    Vec::new(),
                    unresponsive as f64,
                ));
                samples.push(gauge(
                    sdoh_core::METRIC_CONFIG_EPOCH,
                    Vec::new(),
                    epoch.load(Ordering::Acquire) as f64,
                ));
                for (index, slot) in acked.iter().enumerate() {
                    samples.push(gauge(
                        sdoh_core::METRIC_SHARD_ACKED_EPOCH,
                        vec![("shard".to_string(), index.to_string())],
                        slot.load(Ordering::Acquire) as f64,
                    ));
                }
                samples
            }));
        }

        let stats_server = match config.stats_bind {
            Some(bind) => {
                let scrape_registry = registry.clone();
                let scrape_routes = Arc::clone(&routes);
                let scrape_control = control.clone();
                let handler: sdoh_metrics::Handler = Arc::new(move |path| match path {
                    "/metrics" => {
                        HttpResponse::ok_text(render_prometheus(&scrape_registry.gather()))
                    }
                    "/metrics.json" => {
                        HttpResponse::ok_json(render_json(&scrape_registry.gather()))
                    }
                    "/config" => HttpResponse::ok_json(scrape_control.config_json()),
                    "/healthz" => healthz(&scrape_routes),
                    _ => HttpResponse::text(404, "not found\n"),
                });
                Some(StatsServer::start(bind, handler)?)
            }
            None => None,
        };

        // Dispatcher + TCP + refresh + stats: at most four service threads.
        let mut service_handles = Vec::with_capacity(4);
        {
            let socket = Arc::clone(&udp);
            let routes = Arc::clone(&routes);
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            service_handles.push(
                std::thread::Builder::new()
                    .name("sdoh-dispatch".into())
                    .spawn(move || dispatcher_loop(socket, routes, stop, counters))?,
            );
        }
        if let Some(listener) = tcp {
            let routes = Arc::clone(&routes);
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            let poll = config.poll_interval;
            service_handles.push(
                std::thread::Builder::new()
                    .name("sdoh-tcp".into())
                    .spawn(move || tcp_loop(listener, routes, stop, poll, counters))?,
            );
        }
        if !config.refresh_interval.is_zero() {
            let routes = Arc::clone(&routes);
            let stop = Arc::clone(&stop);
            let interval = config.refresh_interval;
            let poll = config.poll_interval;
            service_handles.push(
                std::thread::Builder::new()
                    .name("sdoh-refresh".into())
                    .spawn(move || {
                        tick_loop(stop, interval, poll, move || {
                            for sender in &routes.senders() {
                                let _ = sender.send(WorkItem::Pump);
                            }
                        })
                    })?,
            );
        }
        {
            let routes = Arc::clone(&routes);
            let stop = Arc::clone(&stop);
            let interval = config.stats_interval;
            let poll = config.poll_interval;
            let latest = Arc::clone(&latest);
            let counters = Arc::clone(&counters);
            let epoch = Arc::clone(&control.inner.epoch);
            service_handles.push(
                std::thread::Builder::new()
                    .name("sdoh-stats".into())
                    .spawn(move || {
                        tick_loop(stop, interval, poll, move || {
                            let stats = take_stats(
                                &routes,
                                &counters,
                                epoch.load(Ordering::Acquire),
                                clock.now(),
                            );
                            *latest.lock() = Some(stats); // sdoh-lint: allow(hot-path-purity, "stats-thread tick, scrape cadence")
                        })
                    })?,
            );
        }

        Ok(PoolRuntime {
            udp_addr,
            tcp_addr,
            control,
            service_handles,
            stop,
            counters,
            latest,
            clock,
            registry,
            stats_server,
        })
    }

    /// The bound UDP address clients send queries to.
    pub fn udp_addr(&self) -> SocketAddr {
        self.udp_addr
    }

    /// The bound TCP fallback address (`None` when TCP is disabled).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound stats-listener address (`None` when
    /// [`RuntimeConfig::stats_bind`] was `None`).
    pub fn stats_addr(&self) -> Option<SocketAddr> {
        self.stats_server.as_ref().map(|server| server.addr())
    }

    /// The metrics registry this runtime exports: the front-door counters,
    /// per-shard serving-latency histograms and the serve-layer snapshot
    /// collector. Clone it to register additional application metrics
    /// (e.g. time-sync or chaos counters) on the same `/metrics` endpoint.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Number of serving shards (worker threads) currently routed to.
    pub fn shard_count(&self) -> usize {
        self.control.shard_count()
    }

    /// The control plane of this runtime: hot reconfiguration
    /// ([`ControlHandle::apply`]) and live shard rescale
    /// ([`ControlHandle::rescale`]). Cloneable; hold it on an operator
    /// thread while the runtime serves.
    pub fn control(&self) -> ControlHandle {
        self.control.clone()
    }

    /// The most recent **periodic** aggregate cached by the stats thread
    /// (`None` until the first tick).
    #[deprecated(
        note = "use `PoolRuntime::stats` for an on-demand aggregate; the periodic \
                         cache mainly feeds dashboards that tolerate stats_interval staleness"
    )]
    pub fn latest_stats(&self) -> Option<RuntimeStats> {
        self.latest.lock().clone() // sdoh-lint: allow(hot-path-purity, "operator accessor, never on the query path")
    }

    /// **The** statistics accessor: takes an on-demand aggregate right
    /// now, asking every shard for a [`ServeSnapshot`] and merging them.
    /// Each shard's snapshot is internally consistent; shards are sampled
    /// at slightly different instants (they answer between queries). For
    /// the cheaper periodic reading the stats thread already took, see
    /// the deprecated [`PoolRuntime::latest_stats`].
    pub fn stats(&self) -> RuntimeStats {
        take_stats(
            &self.control.inner.routes,
            &self.counters,
            self.control.current_epoch(),
            self.clock.now(),
        )
    }

    /// Graceful shutdown: stop accepting traffic, drain the worker queues,
    /// take the final aggregate and join every thread — including workers
    /// still lingering in retired mode from a shrink. Returns the final
    /// statistics; [`RuntimeStats::config_epoch`] is the final epoch.
    // sdoh-lint: allow(hot-path-purity, "shutdown path: serving has already stopped")
    pub fn shutdown(mut self) -> RuntimeStats {
        // 1. Stop the socket/tick threads (and the stats listener, so no
        //    scrape races the drain); no new work enters the queues.
        self.stop.store(true, Ordering::SeqCst);
        if let Some(mut server) = self.stats_server.take() {
            server.shutdown();
        }
        for handle in self.service_handles {
            let _ = handle.join();
        }
        // 2. The final snapshot request queues *behind* any remaining
        //    queries, so the numbers include every accepted query.
        let stats = take_stats(
            &self.control.inner.routes,
            &self.counters,
            self.control.current_epoch(),
            self.clock.now(),
        );
        // 3. Clear the route table: live shards get a Shutdown item, and
        //    dropping the runtime's senders disconnects any retired
        //    workers still lingering from a shrink (their exit signal),
        //    even while the user holds ControlHandle clones.
        let table = {
            let mut table = self.control.inner.routes.table.lock();
            std::mem::replace(
                &mut *table,
                RouteTable {
                    senders: Vec::new(),
                    acked: Vec::new(),
                },
            )
        };
        self.control
            .inner
            .routes
            .version
            .fetch_add(1, Ordering::Release);
        for sender in &table.senders {
            let _ = sender.send(WorkItem::Shutdown);
        }
        drop(table);
        let handles = std::mem::take(&mut *self.control.inner.worker_handles.lock());
        for handle in handles {
            let _ = handle.join();
        }
        stats
    }
}

impl std::fmt::Debug for PoolRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolRuntime")
            .field("udp_addr", &self.udp_addr)
            .field("tcp_addr", &self.tcp_addr)
            .field("shards", &self.shard_count())
            .field("epoch", &self.control.current_epoch())
            .finish()
    }
}

/// Runs `tick` every `interval` until `stop`, re-checking the flag every
/// `poll` so shutdown is prompt.
fn tick_loop(stop: Arc<AtomicBool>, interval: Duration, poll: Duration, mut tick: impl FnMut()) {
    let mut since_tick = Duration::ZERO;
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(poll.min(interval));
        since_tick += poll.min(interval);
        if since_tick >= interval {
            since_tick = Duration::ZERO;
            tick();
        }
    }
}

/// Asks every shard for a snapshot over its work queue. Shards that do
/// not answer within `timeout` — wedged in a generation, or already shut
/// down — come back as `None`, never as silently-zero defaults.
// sdoh-lint: allow(hot-path-purity, "snapshot fan-out buffers; runs at scrape/health cadence")
fn take_shard_snapshots(
    workers: &[mpsc::Sender<WorkItem>],
    timeout: Duration,
) -> Vec<Option<ServeSnapshot>> {
    let (tx, rx) = mpsc::channel();
    let mut requested = 0;
    for sender in workers {
        if sender.send(WorkItem::Snapshot(tx.clone())).is_ok() {
            requested += 1;
        }
    }
    drop(tx);
    let mut per_shard: Vec<Option<ServeSnapshot>> = vec![None; workers.len()];
    let deadline = Instant::now() + timeout;
    for _ in 0..requested {
        let remaining = deadline.saturating_duration_since(Instant::now());
        match rx.recv_timeout(remaining) {
            Ok((index, snapshot)) => {
                if let Some(slot) = per_shard.get_mut(index) {
                    *slot = Some(snapshot);
                }
            }
            Err(_) => break,
        }
    }
    per_shard
}

fn take_stats(
    routes: &RouteState,
    counters: &FrontCounters,
    config_epoch: u64,
    taken_at: SimInstant,
) -> RuntimeStats {
    let per_shard = take_shard_snapshots(&routes.senders(), SNAPSHOT_TIMEOUT);
    let mut total = ServeSnapshot::default();
    for snapshot in per_shard.iter().flatten() {
        total.absorb(snapshot);
    }
    RuntimeStats {
        per_shard,
        total,
        udp_queries: counters.udp_received.get(),
        tcp_queries: counters.tcp_received.get(),
        truncated_responses: counters.truncated.get(),
        dropped_queries: counters.dropped.get(),
        config_epoch,
        taken_at,
    }
}

/// The `/healthz` readiness probe: 200 when every shard answered its
/// snapshot within the (short) health deadline, 503 otherwise. The body
/// reports shard liveness plus the pool-guarantee state — generation
/// failures mean some queries were answered from negatively-cached
/// failures rather than fresh secure generations.
// sdoh-lint: allow(hot-path-purity, "health probe renders at probe cadence, not per query")
fn healthz(routes: &RouteState) -> HttpResponse {
    let per_shard = take_shard_snapshots(&routes.senders(), HEALTH_TIMEOUT);
    let unresponsive = per_shard.iter().filter(|s| s.is_none()).count();
    let mut total = ServeSnapshot::default();
    for snapshot in per_shard.iter().flatten() {
        total.absorb(snapshot);
    }
    let ready = unresponsive == 0;
    let body = format!(
        "{}\nshards {}\nunresponsive_shards {}\ncache_entries {}\npending_refreshes {}\n\
         generation_failures {}\nnegative_hits {}\nguarantee_degraded {}\n",
        if ready { "ok" } else { "unready" },
        per_shard.len(),
        unresponsive,
        total.entries,
        total.pending_refreshes,
        total.serve.generation_failures,
        total.serve.negative_hits,
        total.serve.generation_failures > 0,
    );
    HttpResponse::text(if ready { 200 } else { 503 }, body)
}

/// Routes a wire-format query to its shard: hash of the lowercased qname
/// labels and the qtype — the runtime-level mirror of the cache's
/// `(domain, address family)` key, computed without decoding (or
/// allocating) the full message. Malformed or question-less queries go to
/// shard 0, which produces the proper error response.
fn shard_for(wire: &[u8], shards: usize) -> usize {
    match question_hash(wire) {
        // sdoh-lint: allow(no-narrowing-cast, "hash % shards < shards <= usize::MAX, so both conversions are lossless")
        Some(hash) => (hash % shards.max(1) as u64) as usize,
        None => 0,
    }
}

/// Hashes `(qname lowercase, qtype)` straight from the wire. `None` when
/// there is no parseable first question.
fn question_hash(wire: &[u8]) -> Option<u64> {
    if wire.len() < 12 {
        return None;
    }
    let qdcount = u16::from_be_bytes([*wire.get(4)?, *wire.get(5)?]);
    if qdcount == 0 {
        return None;
    }
    let mut hasher = DefaultHasher::new();
    let mut i = 12usize;
    loop {
        let len = usize::from(*wire.get(i)?);
        if len == 0 {
            i += 1;
            break;
        }
        if len & 0xC0 != 0 {
            // Compression pointers don't appear in well-formed questions.
            return None;
        }
        let label = wire.get(i + 1..i + 1 + len)?;
        for &byte in label {
            hasher.write_u8(byte.to_ascii_lowercase());
        }
        hasher.write_u8(b'.');
        i += 1 + len;
    }
    let qtype = u16::from_be_bytes([*wire.get(i)?, *wire.get(i + 1)?]);
    hasher.write_u16(qtype);
    Some(hasher.finish())
}

fn dispatcher_loop(
    socket: Arc<UdpSocket>,
    routes: Arc<RouteState>,
    stop: Arc<AtomicBool>,
    counters: Arc<FrontCounters>,
) {
    let mut buf = [0u8; 4096];
    // The hot path works on a local copy of the senders; one relaxed
    // version check per packet detects a published rescale and reloads
    // under the (cold) table lock. Retiring workers linger until every
    // sender is dropped, so even a packet routed through a stale local
    // copy is still served — never dropped.
    let mut senders = routes.senders();
    let mut version = routes.version.load(Ordering::Acquire);
    while !stop.load(Ordering::SeqCst) {
        match socket.recv_from(&mut buf) {
            Ok((len, peer)) => {
                counters.udp_received.inc();
                let current = routes.version.load(Ordering::Acquire);
                if current != version {
                    senders = routes.senders();
                    version = current;
                }
                if senders.is_empty() {
                    counters.dropped.inc();
                    continue;
                }
                // recv_from wrote `len <= buf.len()` bytes; the owned copy
                // is the queue hand-off, one allocation per datagram.
                // sdoh-lint: allow(hot-path-purity, "the owned copy is the mpsc hand-off; one alloc per datagram is the design")
                let Some(wire) = buf.get(..len).map(|datagram| datagram.to_vec()) else {
                    continue;
                };
                let shard = shard_for(&wire, senders.len());
                let delivered = senders.get(shard).is_some_and(|sender| {
                    sender
                        .send(WorkItem::Query {
                            wire,
                            reply: ReplyPath::Udp(peer),
                        })
                        .is_ok()
                });
                if !delivered {
                    counters.dropped.inc();
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
}

fn tcp_loop(
    listener: TcpListener,
    routes: Arc<RouteState>,
    stop: Arc<AtomicBool>,
    poll: Duration,
    counters: Arc<FrontCounters>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Connections are handled inline: the TCP path only exists
                // as the fallback for truncated answers, so one connection
                // at a time keeps the thread budget fixed. Heavy TCP
                // workloads would want an acceptor pool here.
                let _ = serve_tcp_connection(stream, &routes, &counters);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(poll);
            }
            Err(_) => break,
        }
    }
}

/// Serves RFC 1035 4.2.2 length-prefixed queries until the peer closes
/// (or a read times out). The (cold) TCP path re-reads the route table per
/// query, so it always follows the latest published ring.
// sdoh-lint: allow(hot-path-purity, "the TCP fallback is the cold path by design; see the doc comment")
fn serve_tcp_connection(
    mut stream: TcpStream,
    routes: &RouteState,
    counters: &FrontCounters,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_nodelay(true)?;
    loop {
        let mut len_buf = [0u8; 2];
        if stream.read_exact(&mut len_buf).is_err() {
            return Ok(()); // EOF or idle: connection done.
        }
        let len = usize::from(u16::from_be_bytes(len_buf));
        let mut wire = vec![0u8; len];
        stream.read_exact(&mut wire)?;
        counters.tcp_received.inc();
        let senders = routes.senders();
        if senders.is_empty() {
            counters.dropped.inc();
            return Ok(());
        }
        let shard = shard_for(&wire, senders.len());
        let (tx, rx) = mpsc::channel();
        let delivered = senders.get(shard).is_some_and(|sender| {
            sender
                .send(WorkItem::Query {
                    wire: wire.clone(),
                    reply: ReplyPath::Tcp(tx),
                })
                .is_ok()
        });
        if !delivered {
            counters.dropped.inc();
            return Ok(());
        }
        let mut response = match rx.recv_timeout(Duration::from_secs(10)) {
            Ok(bytes) => bytes,
            Err(_) => return Ok(()),
        };
        if u16::try_from(response.len()).is_err() {
            // Too big even for the 16-bit TCP frame: a truncated write
            // would be wire corruption, so answer SERVFAIL instead.
            response = Message::decode(&wire)
                .map(|query| {
                    Message::error_response(&query, Rcode::ServFail)
                        .encode()
                        .unwrap_or_default()
                })
                .unwrap_or_default();
            if response.is_empty() {
                return Ok(());
            }
        }
        let Ok(len) = u16::try_from(response.len()) else {
            return Ok(()); // A SERVFAIL over 64 KiB cannot happen.
        };
        stream.write_all(&len.to_be_bytes())?;
        stream.write_all(&response)?;
    }
}

fn worker_loop(
    index: usize,
    shard: Shard,
    rx: mpsc::Receiver<WorkItem>,
    socket: Arc<UdpSocket>,
    udp_payload_limit: usize,
    counters: Arc<FrontCounters>,
    latency: Option<Histogram>,
) {
    let Shard {
        mut resolver,
        mut exchanger,
    } = shard;
    // Set when this shard left the hash ring (a shrink retired it): the
    // ring to forward entries over and its width. A retired worker keeps
    // serving stray queries an in-flight dispatcher raced onto its queue,
    // but owns no keys — whatever it serves or generates is immediately
    // handed to the owning shard. It exits when the queue disconnects
    // (every sender dropped), which is what makes rescale zero-drop.
    let mut retired: Option<(Arc<Vec<mpsc::Sender<WorkItem>>>, usize)> = None;
    while let Ok(item) = rx.recv() {
        match item {
            WorkItem::Query { wire, reply } => {
                // Histogram recording is two relaxed fetch_adds on this
                // shard's own cache lines — no lock, no allocation.
                let started = latency.as_ref().map(|_| Instant::now());
                let response = serve_wire(&mut resolver, exchanger.as_mut(), &wire);
                if let (Some(histogram), Some(started)) = (&latency, started) {
                    histogram.record(started.elapsed());
                }
                match reply {
                    ReplyPath::Udp(peer) => {
                        let bytes = if response.len() > udp_payload_limit {
                            counters.truncated.inc();
                            truncate_for_udp(&wire)
                        } else {
                            response
                        };
                        if !bytes.is_empty() {
                            let _ = socket.send_to(&bytes, peer);
                        }
                    }
                    ReplyPath::Tcp(tx) => {
                        let _ = tx.send(response);
                    }
                }
                if let Some((ring, shards)) = &retired {
                    forward_entries(&mut resolver, ring, *shards, None);
                }
            }
            WorkItem::Pump => {
                resolver.run_due_refreshes(exchanger.as_mut());
            }
            WorkItem::Snapshot(tx) => {
                let _ = tx.send((index, resolver.snapshot()));
            }
            WorkItem::Probe(tx) => {
                let _ = tx.send((index, resolver.probe_entries(exchanger.now())));
            }
            WorkItem::Reconfigure { order, ack } => {
                if let Some(factory) = &order.sources {
                    // An empty per-shard set is rejected by the generator:
                    // the shard keeps its current sources.
                    let _ = resolver.generator_mut().replace_sources(factory(index));
                }
                if let Some(pool) = &order.pool {
                    // Pre-validated by ControlHandle::apply.
                    let _ = resolver.generator_mut().set_config(pool.clone());
                }
                resolver.apply_config(order.config.clone(), exchanger.now());
                ack.store(order.config.epoch(), Ordering::Release);
            }
            WorkItem::Rehash {
                table,
                shards,
                done,
            } => {
                forward_entries(&mut resolver, &table, shards, Some(index));
                let _ = done.send(index);
            }
            WorkItem::Install { key, cached } => {
                resolver.install_entry(key, cached, exchanger.now());
            }
            WorkItem::Retire {
                table,
                shards,
                done,
            } => {
                forward_entries(&mut resolver, &table, shards, None);
                retired = Some((table, shards));
                let _ = done.send(index);
            }
            WorkItem::Shutdown => break,
        }
    }
}

/// Extracts every cache entry whose owner under a `shards`-wide ring is
/// not `keep` and forwards it — stamps intact — to the owner's queue.
/// `keep = Some(index)` re-homes after a grow; `None` empties a retiring
/// shard completely. Extraction happens-before the forward, so no entry
/// is ever servable from two shards at once; `install` on the receiving
/// side refuses to clobber an at-least-as-fresh entry, so a racing
/// regeneration by the new owner wins over the handed-off copy.
fn forward_entries(
    resolver: &mut CachingPoolResolver,
    ring: &[mpsc::Sender<WorkItem>],
    shards: usize,
    keep: Option<usize>,
) {
    let moved = resolver.extract_entries(|key| Some(owner_of(key, shards)) != keep);
    for (key, cached) in moved {
        let owner = owner_of(&key, shards);
        if let Some(sender) = ring.get(owner) {
            let _ = sender.send(WorkItem::Install { key, cached });
        }
    }
}

/// Terminates one query through the shared Do53 core — identical wire
/// behaviour to the simulated `Do53Service` by construction. An empty
/// vector means "send nothing".
fn serve_wire(
    resolver: &mut CachingPoolResolver,
    exchanger: &mut dyn Exchanger,
    wire: &[u8],
) -> Vec<u8> {
    sdoh_dns_server::serve_do53_payload(resolver, exchanger, wire, false).unwrap_or_default()
}

/// Builds the empty TC=1 response for an oversized UDP answer: echo of the
/// query's id and question with the truncation bit set, no records — the
/// standard "retry over TCP" signal.
fn truncate_for_udp(query_wire: &[u8]) -> Vec<u8> {
    let Ok(query) = Message::decode(query_wire) else {
        return Vec::new(); // sdoh-lint: allow(hot-path-purity, "an empty Vec::new never allocates")
    };
    let mut tc = Message::response_to(&query);
    tc.header.truncated = true;
    tc.encode().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query_wire(domain: &str, rtype: sdoh_dns_wire::RrType) -> Vec<u8> {
        Message::query(7, domain.parse().unwrap(), rtype)
            .encode()
            .unwrap()
    }

    #[test]
    fn sharding_is_stable_and_family_aware() {
        let a1 = query_wire("pool.ntp.org", sdoh_dns_wire::RrType::A);
        let a2 = query_wire("POOL.NTP.ORG", sdoh_dns_wire::RrType::A);
        let aaaa = query_wire("pool.ntp.org", sdoh_dns_wire::RrType::Aaaa);
        // Same key, same shard, for any shard count; case-insensitive.
        for shards in 1..=16 {
            assert_eq!(shard_for(&a1, shards), shard_for(&a2, shards));
        }
        // The two families of one domain are distinct keys: with enough
        // shard counts they must land apart at least once.
        assert!(
            (2..=16).any(|n| shard_for(&a1, n) != shard_for(&aaaa, n)),
            "family never separated the shard choice"
        );
        // Malformed input routes to shard 0 instead of panicking.
        assert_eq!(shard_for(b"", 8), 0);
        assert_eq!(shard_for(&[0u8; 12], 8), 0);
    }

    #[test]
    fn question_hash_spreads_domains() {
        let shards = 8;
        let hit: std::collections::HashSet<usize> = (0..64)
            .map(|i| {
                shard_for(
                    &query_wire(&format!("pool{i}.ntpns.org"), sdoh_dns_wire::RrType::A),
                    shards,
                )
            })
            .collect();
        assert!(
            hit.len() > shards / 2,
            "64 domains hit {} shards",
            hit.len()
        );
    }

    #[test]
    fn owner_of_mirrors_wire_level_sharding() {
        // The control plane's key-level hash must agree with the
        // dispatcher's wire-level hash for every key, or a rescale would
        // hand entries to shards that never see their queries.
        for i in 0..64 {
            let domain = format!("pool{i}.NTPNS.org");
            for (rtype, family) in [
                (sdoh_dns_wire::RrType::A, sdoh_core::AddressFamily::V4),
                (sdoh_dns_wire::RrType::Aaaa, sdoh_core::AddressFamily::V6),
            ] {
                let key = PoolKey {
                    domain: domain.parse().unwrap(),
                    family,
                };
                let wire = query_wire(&domain, rtype);
                for shards in 1..=9 {
                    assert_eq!(
                        owner_of(&key, shards),
                        shard_for(&wire, shards),
                        "{domain} {family:?} diverged at {shards} shards"
                    );
                }
            }
        }
    }

    #[test]
    fn truncation_echoes_question_with_tc() {
        let wire = query_wire("pool.ntp.org", sdoh_dns_wire::RrType::A);
        let tc = Message::decode(&truncate_for_udp(&wire)).unwrap();
        assert!(tc.header.truncated);
        assert!(tc.header.response);
        assert_eq!(tc.header.id, 7);
        assert!(tc.answers.is_empty());
        assert_eq!(tc.question().unwrap().name.to_string(), "pool.ntp.org.");
        assert!(truncate_for_udp(b"junk").is_empty());
    }
}
