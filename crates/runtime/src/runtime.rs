//! The threaded real-socket serving runtime: [`PoolRuntime`].
//!
//! # Architecture
//!
//! ```text
//!               UDP datagrams                TCP (truncated retries)
//!                    │                                │
//!              ┌─────▼──────┐                  ┌──────▼──────┐
//!              │ dispatcher │                  │ tcp acceptor│
//!              └─────┬──────┘                  └──────┬──────┘
//!        hash(qname, qtype) ──────────────────────────┘
//!         ┌──────────┼─────────────┐
//!   ┌─────▼────┐ ┌───▼──────┐ ┌────▼─────┐     ┌───────────┐
//!   │ shard 0  │ │ shard 1  │ │ shard N-1│ ◄── │ refresh   │ (Pump tick)
//!   │ resolver │ │ resolver │ │ resolver │ ◄── │ stats     │ (Snapshot tick)
//!   └──────────┘ └──────────┘ └──────────┘     └───────────┘
//! ```
//!
//! Each worker thread **owns** one [`CachingPoolResolver`] shard and one
//! `Send` exchanger — there is no lock around the pool cache at all;
//! queries are routed by `(domain, address family)` hash so every key
//! always lands on the same shard and singleflight coalescing keeps
//! working per shard. A dedicated refresh thread ticks the workers to pump
//! [`run_due_refreshes`](CachingPoolResolver::run_due_refreshes) off the
//! query path, and a stats thread aggregates per-shard
//! [`ServeSnapshot`]s into a periodic [`RuntimeStats`].
//!
//! Responses that exceed the configured UDP payload limit are answered
//! with an empty TC=1 message; clients retry over the TCP listener bound
//! to the same port number (RFC 1035 length-prefixed framing).
//! [`PoolRuntime::shutdown`] stops the socket threads, drains the worker
//! queues, takes a final snapshot and joins every thread.

use std::collections::hash_map::DefaultHasher;
use std::hash::Hasher;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use sdoh_core::{CachingPoolResolver, ServeSnapshot};
use sdoh_dns_server::Exchanger;
use sdoh_dns_wire::{Message, Rcode};
use sdoh_netsim::SimInstant;

/// Configuration of a [`PoolRuntime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Address to bind the UDP socket (and the TCP listener) on. Port 0
    /// picks an ephemeral port; read it back from
    /// [`PoolRuntime::udp_addr`].
    pub bind: SocketAddr,
    /// How often the refresh thread ticks the workers to pump due
    /// background refreshes.
    pub refresh_interval: Duration,
    /// How often the stats thread aggregates per-shard snapshots into
    /// [`PoolRuntime::latest_stats`].
    pub stats_interval: Duration,
    /// Largest UDP response payload served without truncation. Larger
    /// answers are replaced by an empty TC=1 response so the client
    /// retries over TCP.
    pub udp_payload_limit: usize,
    /// Granularity at which blocking socket loops re-check the shutdown
    /// flag.
    pub poll_interval: Duration,
    /// Whether to bind the TCP fallback listener.
    pub enable_tcp: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            bind: SocketAddr::from(([127, 0, 0, 1], 0)),
            refresh_interval: Duration::from_millis(50),
            stats_interval: Duration::from_millis(500),
            udp_payload_limit: 1232,
            poll_interval: Duration::from_millis(5),
            enable_tcp: true,
        }
    }
}

/// One serving shard: a caching resolver plus the exchanger its
/// generations and refreshes go out through. Both move into the shard's
/// worker thread at [`PoolRuntime::start`] — which is exactly why the
/// whole serve layer is `Send`.
pub struct Shard {
    resolver: CachingPoolResolver,
    exchanger: Box<dyn Exchanger + Send>,
}

impl Shard {
    /// Pairs a resolver with its upstream exchanger.
    pub fn new(resolver: CachingPoolResolver, exchanger: Box<dyn Exchanger + Send>) -> Self {
        Shard {
            resolver,
            exchanger,
        }
    }
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("resolver", &self.resolver)
            .finish()
    }
}

/// Front-door counters kept by the socket threads (everything behind the
/// dispatch point is counted per shard in [`ServeSnapshot`]s).
#[derive(Debug, Default)]
struct FrontCounters {
    udp_received: AtomicU64,
    tcp_received: AtomicU64,
    truncated: AtomicU64,
}

/// One aggregated statistics observation of a running [`PoolRuntime`].
#[derive(Debug, Clone)]
pub struct RuntimeStats {
    /// Snapshot of every shard, in shard order. Entries of shards that did
    /// not answer the snapshot request within the timeout are defaulted
    /// (all-zero) — seen only if a worker is wedged in a generation.
    pub per_shard: Vec<ServeSnapshot>,
    /// The fleet-wide aggregate of `per_shard`.
    pub total: ServeSnapshot,
    /// Datagrams accepted by the UDP dispatcher.
    pub udp_queries: u64,
    /// Queries accepted over the TCP fallback listener.
    pub tcp_queries: u64,
    /// UDP responses truncated to TC=1 because they exceeded the payload
    /// limit.
    pub truncated_responses: u64,
    /// Runtime uptime when the snapshot was taken.
    pub taken_at: SimInstant,
}

enum WorkItem {
    /// Serve one wire-format query and reply along the given path.
    Query { wire: Vec<u8>, reply: ReplyPath },
    /// Pump due background refreshes (sent by the refresh thread).
    Pump,
    /// Report a consistent snapshot of this shard's state.
    Snapshot(mpsc::Sender<(usize, ServeSnapshot)>),
    /// Drain and exit.
    Shutdown,
}

enum ReplyPath {
    /// Answer with `send_to` on the shared UDP socket; responses above the
    /// payload limit are truncated to TC=1.
    Udp(SocketAddr),
    /// Hand the full response back to the TCP connection handler.
    Tcp(mpsc::Sender<Vec<u8>>),
}

/// The running threaded front end. Dropping it without calling
/// [`PoolRuntime::shutdown`] aborts the process threads ungracefully
/// (detached); always shut down explicitly.
pub struct PoolRuntime {
    udp_addr: SocketAddr,
    tcp_addr: Option<SocketAddr>,
    workers: Vec<mpsc::Sender<WorkItem>>,
    worker_handles: Vec<JoinHandle<()>>,
    service_handles: Vec<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    counters: Arc<FrontCounters>,
    latest: Arc<Mutex<Option<RuntimeStats>>>,
    clock: crate::clock::RuntimeClock,
}

impl PoolRuntime {
    /// Binds the sockets and spawns the worker, dispatcher, TCP, refresh
    /// and stats threads. One worker thread per entry of `shards`.
    ///
    /// # Errors
    ///
    /// Propagates socket binding/configuration failures. `shards` must be
    /// non-empty.
    pub fn start(config: RuntimeConfig, shards: Vec<Shard>) -> std::io::Result<PoolRuntime> {
        if shards.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a runtime needs at least one shard",
            ));
        }
        let udp = Arc::new(UdpSocket::bind(config.bind)?);
        udp.set_read_timeout(Some(config.poll_interval))?;
        let udp_addr = udp.local_addr()?;
        let tcp = if config.enable_tcp {
            // Same address, same port number, TCP — the classic Do53 pair.
            let listener = TcpListener::bind(udp_addr)?;
            listener.set_nonblocking(true)?;
            Some(listener)
        } else {
            None
        };
        let tcp_addr = tcp.as_ref().map(|l| l.local_addr()).transpose()?;

        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(FrontCounters::default());
        let latest: Arc<Mutex<Option<RuntimeStats>>> = Arc::new(Mutex::new(None));
        let clock = crate::clock::RuntimeClock::new();

        let mut workers = Vec::new();
        let mut worker_handles = Vec::new();
        for (index, shard) in shards.into_iter().enumerate() {
            let (tx, rx) = mpsc::channel::<WorkItem>();
            let socket = Arc::clone(&udp);
            let shard_counters = Arc::clone(&counters);
            let limit = config.udp_payload_limit;
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("sdoh-shard-{index}"))
                    .spawn(move || worker_loop(index, shard, rx, socket, limit, shard_counters))?,
            );
            workers.push(tx);
        }

        let mut service_handles = Vec::new();
        {
            let socket = Arc::clone(&udp);
            let senders = workers.clone();
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            service_handles.push(
                std::thread::Builder::new()
                    .name("sdoh-dispatch".into())
                    .spawn(move || dispatcher_loop(socket, senders, stop, counters))?,
            );
        }
        if let Some(listener) = tcp {
            let senders = workers.clone();
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            let poll = config.poll_interval;
            service_handles.push(
                std::thread::Builder::new()
                    .name("sdoh-tcp".into())
                    .spawn(move || tcp_loop(listener, senders, stop, poll, counters))?,
            );
        }
        {
            let senders = workers.clone();
            let stop = Arc::clone(&stop);
            let interval = config.refresh_interval;
            let poll = config.poll_interval;
            service_handles.push(
                std::thread::Builder::new()
                    .name("sdoh-refresh".into())
                    .spawn(move || {
                        tick_loop(stop, interval, poll, move || {
                            for sender in &senders {
                                let _ = sender.send(WorkItem::Pump);
                            }
                        })
                    })?,
            );
        }
        {
            let senders = workers.clone();
            let stop = Arc::clone(&stop);
            let interval = config.stats_interval;
            let poll = config.poll_interval;
            let latest = Arc::clone(&latest);
            let counters = Arc::clone(&counters);
            service_handles.push(
                std::thread::Builder::new()
                    .name("sdoh-stats".into())
                    .spawn(move || {
                        tick_loop(stop, interval, poll, move || {
                            let stats = take_stats(&senders, &counters, clock.now());
                            *latest.lock() = Some(stats);
                        })
                    })?,
            );
        }

        Ok(PoolRuntime {
            udp_addr,
            tcp_addr,
            workers,
            worker_handles,
            service_handles,
            stop,
            counters,
            latest,
            clock,
        })
    }

    /// The bound UDP address clients send queries to.
    pub fn udp_addr(&self) -> SocketAddr {
        self.udp_addr
    }

    /// The bound TCP fallback address (`None` when TCP is disabled).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Number of serving shards (worker threads).
    pub fn shard_count(&self) -> usize {
        self.workers.len()
    }

    /// The most recent periodic aggregate taken by the stats thread
    /// (`None` until the first tick).
    pub fn latest_stats(&self) -> Option<RuntimeStats> {
        self.latest.lock().clone()
    }

    /// Takes an on-demand aggregate right now: asks every shard for a
    /// [`ServeSnapshot`] and merges them. Each shard's snapshot is
    /// internally consistent; shards are sampled at slightly different
    /// instants (they answer between queries).
    pub fn stats(&self) -> RuntimeStats {
        take_stats(&self.workers, &self.counters, self.clock.now())
    }

    /// Graceful shutdown: stop accepting traffic, drain the worker queues,
    /// take the final aggregate and join every thread. Returns the final
    /// statistics.
    pub fn shutdown(self) -> RuntimeStats {
        // 1. Stop the socket/tick threads; no new work enters the queues.
        self.stop.store(true, Ordering::SeqCst);
        for handle in self.service_handles {
            let _ = handle.join();
        }
        // 2. The final snapshot request queues *behind* any remaining
        //    queries, so the numbers include every accepted query.
        let stats = take_stats(&self.workers, &self.counters, self.clock.now());
        // 3. Drain and join the workers.
        for sender in &self.workers {
            let _ = sender.send(WorkItem::Shutdown);
        }
        drop(self.workers);
        for handle in self.worker_handles {
            let _ = handle.join();
        }
        stats
    }
}

impl std::fmt::Debug for PoolRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolRuntime")
            .field("udp_addr", &self.udp_addr)
            .field("tcp_addr", &self.tcp_addr)
            .field("shards", &self.workers.len())
            .finish()
    }
}

/// Runs `tick` every `interval` until `stop`, re-checking the flag every
/// `poll` so shutdown is prompt.
fn tick_loop(stop: Arc<AtomicBool>, interval: Duration, poll: Duration, mut tick: impl FnMut()) {
    let mut since_tick = Duration::ZERO;
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(poll.min(interval));
        since_tick += poll.min(interval);
        if since_tick >= interval {
            since_tick = Duration::ZERO;
            tick();
        }
    }
}

fn take_stats(
    workers: &[mpsc::Sender<WorkItem>],
    counters: &FrontCounters,
    taken_at: SimInstant,
) -> RuntimeStats {
    let (tx, rx) = mpsc::channel();
    let mut requested = 0;
    for sender in workers {
        if sender.send(WorkItem::Snapshot(tx.clone())).is_ok() {
            requested += 1;
        }
    }
    drop(tx);
    let mut per_shard = vec![ServeSnapshot::default(); workers.len()];
    for _ in 0..requested {
        match rx.recv_timeout(Duration::from_secs(5)) {
            Ok((index, snapshot)) => per_shard[index] = snapshot,
            Err(_) => break,
        }
    }
    let mut total = ServeSnapshot::default();
    for snapshot in &per_shard {
        total.absorb(snapshot);
    }
    RuntimeStats {
        per_shard,
        total,
        udp_queries: counters.udp_received.load(Ordering::Relaxed),
        tcp_queries: counters.tcp_received.load(Ordering::Relaxed),
        truncated_responses: counters.truncated.load(Ordering::Relaxed),
        taken_at,
    }
}

/// Routes a wire-format query to its shard: hash of the lowercased qname
/// labels and the qtype — the runtime-level mirror of the cache's
/// `(domain, address family)` key, computed without decoding (or
/// allocating) the full message. Malformed or question-less queries go to
/// shard 0, which produces the proper error response.
fn shard_for(wire: &[u8], shards: usize) -> usize {
    match question_hash(wire) {
        Some(hash) => (hash % shards as u64) as usize,
        None => 0,
    }
}

/// Hashes `(qname lowercase, qtype)` straight from the wire. `None` when
/// there is no parseable first question.
fn question_hash(wire: &[u8]) -> Option<u64> {
    if wire.len() < 12 {
        return None;
    }
    let qdcount = u16::from_be_bytes([wire[4], wire[5]]);
    if qdcount == 0 {
        return None;
    }
    let mut hasher = DefaultHasher::new();
    let mut i = 12usize;
    loop {
        let len = *wire.get(i)? as usize;
        if len == 0 {
            i += 1;
            break;
        }
        if len & 0xC0 != 0 {
            // Compression pointers don't appear in well-formed questions.
            return None;
        }
        let label = wire.get(i + 1..i + 1 + len)?;
        for &byte in label {
            hasher.write_u8(byte.to_ascii_lowercase());
        }
        hasher.write_u8(b'.');
        i += 1 + len;
    }
    let qtype = u16::from_be_bytes([*wire.get(i)?, *wire.get(i + 1)?]);
    hasher.write_u16(qtype);
    Some(hasher.finish())
}

fn dispatcher_loop(
    socket: Arc<UdpSocket>,
    senders: Vec<mpsc::Sender<WorkItem>>,
    stop: Arc<AtomicBool>,
    counters: Arc<FrontCounters>,
) {
    let mut buf = [0u8; 4096];
    while !stop.load(Ordering::SeqCst) {
        match socket.recv_from(&mut buf) {
            Ok((len, peer)) => {
                counters.udp_received.fetch_add(1, Ordering::Relaxed);
                let wire = buf[..len].to_vec();
                let shard = shard_for(&wire, senders.len());
                let _ = senders[shard].send(WorkItem::Query {
                    wire,
                    reply: ReplyPath::Udp(peer),
                });
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
}

fn tcp_loop(
    listener: TcpListener,
    senders: Vec<mpsc::Sender<WorkItem>>,
    stop: Arc<AtomicBool>,
    poll: Duration,
    counters: Arc<FrontCounters>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Connections are handled inline: the TCP path only exists
                // as the fallback for truncated answers, so one connection
                // at a time keeps the thread budget fixed. Heavy TCP
                // workloads would want an acceptor pool here.
                let _ = serve_tcp_connection(stream, &senders, &counters);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(poll);
            }
            Err(_) => break,
        }
    }
}

/// Serves RFC 1035 4.2.2 length-prefixed queries until the peer closes
/// (or a read times out).
fn serve_tcp_connection(
    mut stream: TcpStream,
    senders: &[mpsc::Sender<WorkItem>],
    counters: &FrontCounters,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_nodelay(true)?;
    loop {
        let mut len_buf = [0u8; 2];
        if stream.read_exact(&mut len_buf).is_err() {
            return Ok(()); // EOF or idle: connection done.
        }
        let len = u16::from_be_bytes(len_buf) as usize;
        let mut wire = vec![0u8; len];
        stream.read_exact(&mut wire)?;
        counters.tcp_received.fetch_add(1, Ordering::Relaxed);
        let shard = shard_for(&wire, senders.len());
        let (tx, rx) = mpsc::channel();
        if senders[shard]
            .send(WorkItem::Query {
                wire: wire.clone(),
                reply: ReplyPath::Tcp(tx),
            })
            .is_err()
        {
            return Ok(());
        }
        let mut response = match rx.recv_timeout(Duration::from_secs(10)) {
            Ok(bytes) => bytes,
            Err(_) => return Ok(()),
        };
        if u16::try_from(response.len()).is_err() {
            // Too big even for the 16-bit TCP frame: a truncated write
            // would be wire corruption, so answer SERVFAIL instead.
            response = Message::decode(&wire)
                .map(|query| {
                    Message::error_response(&query, Rcode::ServFail)
                        .encode()
                        .unwrap_or_default()
                })
                .unwrap_or_default();
            if response.is_empty() {
                return Ok(());
            }
        }
        let len = response.len() as u16;
        stream.write_all(&len.to_be_bytes())?;
        stream.write_all(&response)?;
    }
}

fn worker_loop(
    index: usize,
    shard: Shard,
    rx: mpsc::Receiver<WorkItem>,
    socket: Arc<UdpSocket>,
    udp_payload_limit: usize,
    counters: Arc<FrontCounters>,
) {
    let Shard {
        mut resolver,
        mut exchanger,
    } = shard;
    while let Ok(item) = rx.recv() {
        match item {
            WorkItem::Query { wire, reply } => {
                let response = serve_wire(&mut resolver, exchanger.as_mut(), &wire);
                match reply {
                    ReplyPath::Udp(peer) => {
                        let bytes = if response.len() > udp_payload_limit {
                            counters.truncated.fetch_add(1, Ordering::Relaxed);
                            truncate_for_udp(&wire)
                        } else {
                            response
                        };
                        if !bytes.is_empty() {
                            let _ = socket.send_to(&bytes, peer);
                        }
                    }
                    ReplyPath::Tcp(tx) => {
                        let _ = tx.send(response);
                    }
                }
            }
            WorkItem::Pump => {
                resolver.run_due_refreshes(exchanger.as_mut());
            }
            WorkItem::Snapshot(tx) => {
                let _ = tx.send((index, resolver.snapshot()));
            }
            WorkItem::Shutdown => break,
        }
    }
}

/// Terminates one query through the shared Do53 core — identical wire
/// behaviour to the simulated `Do53Service` by construction. An empty
/// vector means "send nothing".
fn serve_wire(
    resolver: &mut CachingPoolResolver,
    exchanger: &mut dyn Exchanger,
    wire: &[u8],
) -> Vec<u8> {
    sdoh_dns_server::serve_do53_payload(resolver, exchanger, wire, false).unwrap_or_default()
}

/// Builds the empty TC=1 response for an oversized UDP answer: echo of the
/// query's id and question with the truncation bit set, no records — the
/// standard "retry over TCP" signal.
fn truncate_for_udp(query_wire: &[u8]) -> Vec<u8> {
    let Ok(query) = Message::decode(query_wire) else {
        return Vec::new();
    };
    let mut tc = Message::response_to(&query);
    tc.header.truncated = true;
    tc.encode().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query_wire(domain: &str, rtype: sdoh_dns_wire::RrType) -> Vec<u8> {
        Message::query(7, domain.parse().unwrap(), rtype)
            .encode()
            .unwrap()
    }

    #[test]
    fn sharding_is_stable_and_family_aware() {
        let a1 = query_wire("pool.ntp.org", sdoh_dns_wire::RrType::A);
        let a2 = query_wire("POOL.NTP.ORG", sdoh_dns_wire::RrType::A);
        let aaaa = query_wire("pool.ntp.org", sdoh_dns_wire::RrType::Aaaa);
        // Same key, same shard, for any shard count; case-insensitive.
        for shards in 1..=16 {
            assert_eq!(shard_for(&a1, shards), shard_for(&a2, shards));
        }
        // The two families of one domain are distinct keys: with enough
        // shard counts they must land apart at least once.
        assert!(
            (2..=16).any(|n| shard_for(&a1, n) != shard_for(&aaaa, n)),
            "family never separated the shard choice"
        );
        // Malformed input routes to shard 0 instead of panicking.
        assert_eq!(shard_for(b"", 8), 0);
        assert_eq!(shard_for(&[0u8; 12], 8), 0);
    }

    #[test]
    fn question_hash_spreads_domains() {
        let shards = 8;
        let hit: std::collections::HashSet<usize> = (0..64)
            .map(|i| {
                shard_for(
                    &query_wire(&format!("pool{i}.ntpns.org"), sdoh_dns_wire::RrType::A),
                    shards,
                )
            })
            .collect();
        assert!(
            hit.len() > shards / 2,
            "64 domains hit {} shards",
            hit.len()
        );
    }

    #[test]
    fn truncation_echoes_question_with_tc() {
        let wire = query_wire("pool.ntp.org", sdoh_dns_wire::RrType::A);
        let tc = Message::decode(&truncate_for_udp(&wire)).unwrap();
        assert!(tc.header.truncated);
        assert!(tc.header.response);
        assert_eq!(tc.header.id, 7);
        assert!(tc.answers.is_empty());
        assert_eq!(tc.question().unwrap().name.to_string(), "pool.ntp.org.");
        assert!(truncate_for_udp(b"junk").is_empty());
    }
}
