//! A minimal real-socket DNS client for querying a [`PoolRuntime`]:
//! UDP first, TCP retry on truncation — what a standards-following stub
//! resolver does. Used by the end-to-end tests, the stress test, the
//! throughput experiment and the example binaries.
//!
//! [`PoolRuntime`]: crate::PoolRuntime

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::time::Duration;

use sdoh_dns_wire::Message;

/// A blocking Do53 client over real sockets.
#[derive(Debug)]
pub struct RuntimeClient {
    socket: UdpSocket,
    server: SocketAddr,
    tcp_server: Option<SocketAddr>,
    timeout: Duration,
}

fn invalid(err: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, err.to_string())
}

impl RuntimeClient {
    /// Creates a client for the runtime at `server` (UDP), with `tcp` as
    /// the truncation-fallback target — pass
    /// [`PoolRuntime::tcp_addr`](crate::PoolRuntime::tcp_addr).
    ///
    /// # Errors
    ///
    /// Propagates socket binding failures.
    pub fn connect(server: SocketAddr, tcp: Option<SocketAddr>) -> std::io::Result<Self> {
        // Bind the unspecified address of the server's family so the
        // client reaches runtimes on v6 loopback or non-loopback binds.
        let bind: SocketAddr = if server.is_ipv6() {
            (std::net::Ipv6Addr::UNSPECIFIED, 0).into()
        } else {
            (std::net::Ipv4Addr::UNSPECIFIED, 0).into()
        };
        let socket = UdpSocket::bind(bind)?;
        let timeout = Duration::from_secs(5);
        socket.set_read_timeout(Some(timeout))?;
        Ok(RuntimeClient {
            socket,
            server,
            tcp_server: tcp,
            timeout,
        })
    }

    /// Sets the per-query timeout.
    ///
    /// # Errors
    ///
    /// Propagates socket configuration failures.
    pub fn with_timeout(mut self, timeout: Duration) -> std::io::Result<Self> {
        self.socket.set_read_timeout(Some(timeout))?;
        self.timeout = timeout;
        Ok(self)
    }

    /// Performs one query: UDP, then a TCP retry if the response came back
    /// truncated (TC=1) and a TCP target is configured. Responses whose id
    /// doesn't match the query are discarded (late arrivals from earlier
    /// timed-out queries), not returned.
    ///
    /// # Errors
    ///
    /// I/O errors, timeouts, and undecodable responses.
    pub fn query(&self, query: &Message) -> std::io::Result<Message> {
        let wire = query.encode().map_err(invalid)?;
        self.socket.send_to(&wire, self.server)?;
        let mut buf = [0u8; 4096];
        let start = std::time::Instant::now();
        loop {
            if start.elapsed() > self.timeout {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "no matching response within the timeout",
                ));
            }
            let (len, peer) = self.socket.recv_from(&mut buf)?;
            if peer != self.server {
                continue;
            }
            let response = match Message::decode(buf.get(..len).unwrap_or(&[])) {
                Ok(response) => response,
                Err(_) => continue,
            };
            if !response.answers_query(query) {
                continue;
            }
            if response.header.truncated {
                // A TC=1 response carries no records by design; without a
                // TCP target the real answer is unreachable, and handing
                // the empty echo back as a success would read as "the
                // pool is empty".
                return match self.tcp_server {
                    Some(tcp) => self.query_tcp_at(tcp, query, &wire),
                    None => Err(invalid(
                        "response was truncated and no TCP fallback is configured",
                    )),
                };
            }
            return Ok(response);
        }
    }

    /// Performs one query directly over TCP (RFC 1035 length-prefixed).
    ///
    /// # Errors
    ///
    /// I/O errors, timeouts, a missing TCP target, and undecodable
    /// responses.
    pub fn query_tcp(&self, query: &Message) -> std::io::Result<Message> {
        let tcp = self.tcp_server.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::Unsupported, "no TCP target configured")
        })?;
        let wire = query.encode().map_err(invalid)?;
        self.query_tcp_at(tcp, query, &wire)
    }

    fn query_tcp_at(
        &self,
        tcp: SocketAddr,
        query: &Message,
        wire: &[u8],
    ) -> std::io::Result<Message> {
        let mut stream = TcpStream::connect_timeout(&tcp, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.set_nodelay(true)?;
        let len = u16::try_from(wire.len()).map_err(invalid)?;
        stream.write_all(&len.to_be_bytes())?;
        stream.write_all(wire)?;
        let mut len_buf = [0u8; 2];
        stream.read_exact(&mut len_buf)?;
        let mut response_wire = vec![0u8; usize::from(u16::from_be_bytes(len_buf))];
        stream.read_exact(&mut response_wire)?;
        let response = Message::decode(&response_wire).map_err(invalid)?;
        if !response.answers_query(query) {
            return Err(invalid("TCP response does not answer the query"));
        }
        Ok(response)
    }
}
