//! Ready-made loopback deployments: a DoH resolver fleet as in-process
//! backends plus the shard set serving pools generated over it.
//!
//! This is the real-socket sibling of the simulator's scenario layer: it
//! wires the well-known resolver directory to full RFC 8484 terminators
//! (each answering from an authoritative pool zone, optionally poisoned)
//! and hands out [`Shard`]s whose generators fan out over that fleet —
//! everything a loopback end-to-end test, a stress run or a throughput
//! experiment needs to drive a [`PoolRuntime`](crate::PoolRuntime) without
//! touching the public Internet.

use std::net::IpAddr;
use std::time::Duration;

use sdoh_core::{
    AddressSource, CacheConfig, CachingPoolResolver, DohSource, GroundTruth, PoolConfig,
    PoolResult, SecurePoolGenerator,
};
use sdoh_dns_server::{
    Authority, Catalog, PoisonConfig, PoisonMode, PoisonedResolver, QueryHandler, Zone,
};
use sdoh_dns_wire::Name;
use sdoh_doh::{DohMethod, DohServerService, ResolverDirectory, ResolverInfo};
use sdoh_netsim::SimAddr;

use crate::backend::BackendNet;
use crate::runtime::Shard;

/// Parameters of a loopback fleet.
#[derive(Debug, Clone)]
pub struct LoopbackConfig {
    /// Number of DoH resolvers (the first `n` of the well-known
    /// directory).
    pub resolvers: usize,
    /// Number of pool domains the zone publishes (`pool.ntpns.org`,
    /// `pool2.ntpns.org`, …).
    pub pool_domains: usize,
    /// Benign addresses published per pool domain (clamped to 1..=254:
    /// both address blocks live in one /24 each).
    pub addresses_per_domain: usize,
    /// Indexes of resolvers that replace every pool answer with attacker
    /// addresses.
    pub compromised: Vec<usize>,
    /// Artificial per-exchange upstream latency (models the DoH round
    /// trip a generation pays; zero for raw-throughput runs).
    pub upstream_latency: Duration,
    /// Seed for the resolver directory keys.
    pub seed: u64,
}

impl Default for LoopbackConfig {
    fn default() -> Self {
        LoopbackConfig {
            resolvers: 3,
            pool_domains: 4,
            addresses_per_domain: 8,
            compromised: Vec::new(),
            upstream_latency: Duration::ZERO,
            seed: 1,
        }
    }
}

/// A built loopback fleet: the backend net plus everything needed to build
/// shards and check guarantees against it.
pub struct LoopbackFleet {
    /// The in-process endpoints (one DoH terminator per resolver).
    pub backends: BackendNet,
    /// The installed resolvers, in directory order.
    pub infos: Vec<ResolverInfo>,
    /// Every pool domain the fleet serves.
    pub domains: Vec<Name>,
    /// The benign addresses each pool domain publishes.
    pub benign: Vec<IpAddr>,
    /// The attacker addresses compromised resolvers answer with.
    pub attacker: Vec<IpAddr>,
}

impl LoopbackFleet {
    /// Builds the fleet: pool zone, DoH terminators, optional compromise.
    pub fn build(config: LoopbackConfig) -> Self {
        let domains: Vec<Name> = (0..config.pool_domains.max(1))
            .map(|i| {
                let label = if i == 0 {
                    "pool.ntpns.org".to_string()
                } else {
                    format!("pool{}.ntpns.org", i + 1)
                };
                label.parse().expect("valid name") // sdoh-lint: allow(no-panic, "the generated pool labels are statically well-formed host names")
            })
            .collect();
        let per_domain = config.addresses_per_domain.clamp(1, 254);
        let benign: Vec<IpAddr> = (1..=per_domain)
            .map(|i| IpAddr::V4(std::net::Ipv4Addr::new(203, 0, 113, i as u8))) // sdoh-lint: allow(no-narrowing-cast, "per_domain is clamped to at most 254, so i fits u8")
            .collect();
        let attacker: Vec<IpAddr> = (1..=per_domain)
            .map(|i| IpAddr::V4(std::net::Ipv4Addr::new(198, 18, 0, i as u8))) // sdoh-lint: allow(no-narrowing-cast, "per_domain is clamped to at most 254, so i fits u8")
            .collect();

        let mut zone = Zone::new("ntpns.org".parse().expect("valid")); // sdoh-lint: allow(no-panic, "the zone apex is a statically well-formed host name")
        for domain in &domains {
            for &addr in &benign {
                zone.add_address(domain.clone(), addr);
            }
        }
        let mut catalog = Catalog::new();
        catalog.add_zone(zone);

        let directory = ResolverDirectory::well_known(config.seed);
        let infos = directory.take(config.resolvers);
        let mut builder = BackendNet::builder().with_latency(config.upstream_latency);
        for (index, info) in infos.iter().enumerate() {
            let authority = Authority::new(catalog.clone());
            if config.compromised.contains(&index) {
                // A compromised resolver poisons every pool domain.
                let mut handler: CompromisedAuthority = Box::new(authority);
                for domain in &domains {
                    handler = Box::new(PoisonedResolver::new(
                        handler,
                        PoisonConfig::new(
                            domain.clone(),
                            PoisonMode::ReplaceAddresses(attacker.clone()),
                        ),
                    ));
                }
                builder = builder.register(info.addr, DohServerService::new(info.clone(), handler));
            } else {
                builder =
                    builder.register(info.addr, DohServerService::new(info.clone(), authority));
            }
        }

        LoopbackFleet {
            backends: builder.build(),
            infos,
            domains,
            benign,
            attacker,
        }
    }

    /// Builds `count` serving shards, each with its own caching resolver
    /// over a fresh generator fanning out to this fleet.
    ///
    /// # Errors
    ///
    /// Propagates generator configuration errors.
    pub fn shards(
        &self,
        count: usize,
        pool: PoolConfig,
        cache: CacheConfig,
    ) -> PoolResult<Vec<Shard>> {
        (0..count.max(1))
            .map(|i| {
                let sources: Vec<Box<dyn AddressSource>> = self
                    .infos
                    .iter()
                    .map(|info| {
                        Box::new(DohSource::new(info.clone()).method(DohMethod::Get))
                            as Box<dyn AddressSource>
                    })
                    .collect();
                let generator = SecurePoolGenerator::new(pool.clone(), sources)?;
                // Two octets of shard index: distinct source addresses up
                // to 64k shards without u8 wrap-around.
                let exchanger = self.backends.exchanger(SimAddr::v4(
                    10,
                    1,
                    (i / 256) as u8, // sdoh-lint: allow(no-narrowing-cast, "shard counts stay far below 64k, so the high octet fits u8")
                    (i % 256) as u8, // sdoh-lint: allow(no-narrowing-cast, "the modulo keeps the low octet below 256")
                    40000,
                ));
                Ok(Shard::new(
                    CachingPoolResolver::new(generator, cache),
                    Box::new(exchanger),
                ))
            })
            .collect()
    }

    /// Ground truth for guarantee checking: the attacker addresses are
    /// malicious, everything else benign.
    pub fn ground_truth(&self) -> GroundTruth {
        GroundTruth::with_malicious(self.attacker.iter().copied())
    }
}

impl std::fmt::Debug for LoopbackFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopbackFleet")
            .field("resolvers", &self.infos.len())
            .field("domains", &self.domains.len())
            .finish()
    }
}

/// A stack of poisoning wrappers around an authoritative answerer; boxed
/// because each poisoned domain adds one layer. `Send` end to end so the
/// terminator can serve as an in-process backend.
type CompromisedAuthority = Box<dyn QueryHandler + Send>;
