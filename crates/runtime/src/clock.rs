//! The runtime's wall clock, expressed in the workspace's instant type.
//!
//! Everything below the runtime — the pool cache, the refresh scheduler,
//! the exchanger trait — is sans-IO and reasons about time as a
//! [`SimInstant`] handed in by the driver. Inside the simulator that
//! instant comes from the virtual [`SimClock`](sdoh_netsim::SimClock);
//! inside the real-socket runtime it comes from here: a monotonic host
//! clock anchored at runtime start, so `SimInstant::EPOCH` is "the moment
//! the runtime came up" and TTLs, stale windows and refresh deadlines all
//! measure real elapsed time.

use std::time::Instant;

use sdoh_netsim::SimInstant;

/// A monotonic wall clock mapping host time onto [`SimInstant`]s.
///
/// Copies share the same epoch (the `Instant` captured at construction),
/// so every thread of a runtime observes one consistent timeline.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeClock {
    start: Instant,
}

impl RuntimeClock {
    /// Creates a clock whose epoch is "now".
    pub fn new() -> Self {
        RuntimeClock {
            start: Instant::now(),
        }
    }

    /// Nanoseconds of host time elapsed since the epoch, as an instant the
    /// sans-IO layers (cache TTLs, refresh deadlines) understand.
    pub fn now(&self) -> SimInstant {
        SimInstant::from_nanos(u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }
}

impl Default for RuntimeClock {
    fn default() -> Self {
        RuntimeClock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn clock_advances_monotonically_and_copies_share_the_epoch() {
        let clock = RuntimeClock::new();
        let copy = clock;
        let a = clock.now();
        std::thread::sleep(Duration::from_millis(2));
        let b = copy.now();
        assert!(b > a, "time moved forward across copies");
        assert!(b.saturating_duration_since(a) >= Duration::from_millis(1));
    }
}
