//! The runtime control plane: [`ControlHandle`], [`ConfigDelta`] and live
//! shard rescale.
//!
//! A running [`PoolRuntime`](crate::PoolRuntime) hands out a cloneable
//! [`ControlHandle`]. [`ControlHandle::apply`] turns a [`ConfigDelta`]
//! into the next validated [`ServeConfig`] epoch and fans it to every
//! shard worker **through the worker's existing work queue** — the same
//! FIFO its queries arrive on, so the epoch switch happens-after every
//! query already accepted under the old epoch and no lock is added to the
//! serving path. Each worker acks the epoch number into its own atomic
//! slot in its next loop iteration; the `/metrics` gauges
//! `sdoh_config_epoch` and `sdoh_shard_acked_epoch{shard}` expose the
//! propagation, and [`ControlHandle::wait_for_epoch`] blocks on it.
//!
//! [`ControlHandle::rescale`] changes the number of serving shards while
//! queries keep flowing. Growing publishes the widened route table and
//! then has the pre-existing workers extract every cache entry the new
//! hash ring assigns elsewhere and forward it to its new owner
//! (stamps intact — see [`PoolCache::install`](sdoh_core::PoolCache::install)).
//! Shrinking publishes the truncated table *first*, so retiring workers
//! stop receiving new queries, then tells them to hand every entry to its
//! surviving owner. A retiring worker never just exits: it lingers in
//! retired mode, still answering any stray query an in-flight dispatcher
//! raced onto its queue (immediately forwarding whatever that generated),
//! and terminates only when the last sender to its queue is dropped — so
//! a rescale drops **zero** queries by construction.

use std::collections::hash_map::DefaultHasher;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use sdoh_core::{
    AddressSource, CacheConfig, CacheEntryProbe, ConfigError, PoolConfig, PoolKey, ServeConfig,
};

use crate::runtime::{spawn_worker, Shard, WorkItem, WorkerContext};

/// Builds one shard's upstream source set, by shard index — how a
/// [`ConfigDelta`] carries a new resolver set to N workers when
/// [`AddressSource`]s are not cloneable (each worker needs its own
/// exchanger-bound instances).
pub type SourceFactory = Arc<dyn Fn(usize) -> Vec<Box<dyn AddressSource>> + Send + Sync>;

/// A requested change to the live serving configuration: the fields to
/// change, everything else carried over from the current epoch. Applied
/// with [`ControlHandle::apply`].
#[derive(Clone, Default)]
#[non_exhaustive]
pub struct ConfigDelta {
    pub(crate) cache: Option<CacheConfig>,
    pub(crate) pool: Option<PoolConfig>,
    pub(crate) sources: Option<SourceFactory>,
}

impl ConfigDelta {
    /// An empty delta (applying it still advances the epoch).
    pub fn new() -> Self {
        ConfigDelta::default()
    }

    /// Replace the cache/serving knobs (TTL, stale window, negative TTL,
    /// capacity).
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Replace the pool-generation configuration (combination mode,
    /// hardening knobs, `min_responses`, …).
    pub fn with_pool(mut self, pool: PoolConfig) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Replace the upstream resolver set. The factory is called once per
    /// shard with the shard index and must return a non-empty set; a shard
    /// handed an empty set keeps its current sources.
    pub fn with_sources(mut self, sources: SourceFactory) -> Self {
        self.sources = Some(sources);
        self
    }
}

impl std::fmt::Debug for ConfigDelta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConfigDelta")
            .field("cache", &self.cache)
            .field("pool", &self.pool)
            .field("sources", &self.sources.as_ref().map(|_| "<factory>"))
            .finish()
    }
}

/// Receipt of an accepted control operation: the epoch the fleet is
/// converging to and the shard count it was fanned out to. Workers ack
/// asynchronously — observe propagation via
/// [`ControlHandle::acked_epochs`] / [`ControlHandle::wait_for_epoch`] or
/// the `sdoh_shard_acked_epoch` gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct EpochReceipt {
    /// The newly published epoch number.
    pub epoch: u64,
    /// Shards the epoch was fanned out to.
    pub shards: usize,
}

/// The epoch fan-out order a worker receives over its queue.
pub(crate) struct EpochOrder {
    pub(crate) config: Arc<ServeConfig>,
    pub(crate) pool: Option<PoolConfig>,
    pub(crate) sources: Option<SourceFactory>,
}

/// The live routing table: one sender plus one acked-epoch slot per shard,
/// in shard order.
pub(crate) struct RouteTable {
    pub(crate) senders: Vec<mpsc::Sender<WorkItem>>,
    pub(crate) acked: Vec<Arc<AtomicU64>>,
}

/// Shared routing state. The dispatcher keeps a local copy of the senders
/// and re-reads the table only when the version counter moved — the hot
/// path costs one relaxed atomic load per packet, never a lock.
pub(crate) struct RouteState {
    pub(crate) version: AtomicU64,
    pub(crate) table: Mutex<RouteTable>,
}

impl RouteState {
    pub(crate) fn new(table: RouteTable) -> RouteState {
        RouteState {
            version: AtomicU64::new(0),
            table: Mutex::new(table),
        }
    }

    /// A snapshot of the current senders.
    pub(crate) fn senders(&self) -> Vec<mpsc::Sender<WorkItem>> {
        self.table.lock().senders.clone()
    }

    /// Swaps in a new table and bumps the version so dispatchers reload.
    pub(crate) fn publish(&self, table: RouteTable) {
        *self.table.lock() = table;
        self.version.fetch_add(1, Ordering::Release);
    }
}

/// How long a rescale waits for the handoff acknowledgements of the
/// pre-existing workers before returning anyway (the handoff itself has
/// completed or will complete; only the confirmation is late).
const RESCALE_TIMEOUT: Duration = Duration::from_secs(10);

pub(crate) struct ControlInner {
    pub(crate) routes: Arc<RouteState>,
    pub(crate) config: Mutex<Arc<ServeConfig>>,
    pub(crate) epoch: Arc<AtomicU64>,
    /// Serializes apply/rescale against each other (never against serving).
    op_lock: Mutex<()>,
    pub(crate) ctx: WorkerContext,
    pub(crate) worker_handles: Mutex<Vec<JoinHandle<()>>>,
}

/// The control plane of a running [`PoolRuntime`](crate::PoolRuntime):
/// hot reconfiguration ([`ControlHandle::apply`]) and live shard rescale
/// ([`ControlHandle::rescale`]). Cloneable and `Send` — hold it on an
/// operator thread while the runtime serves. See the module docs for the
/// propagation model.
#[derive(Clone)]
pub struct ControlHandle {
    pub(crate) inner: Arc<ControlInner>,
}

impl ControlHandle {
    pub(crate) fn new(
        routes: Arc<RouteState>,
        config: Arc<ServeConfig>,
        ctx: WorkerContext,
        worker_handles: Vec<JoinHandle<()>>,
    ) -> ControlHandle {
        ControlHandle {
            inner: Arc::new(ControlInner {
                routes,
                epoch: Arc::new(AtomicU64::new(config.epoch())),
                config: Mutex::new(config),
                op_lock: Mutex::new(()),
                ctx,
                worker_handles: Mutex::new(worker_handles),
            }),
        }
    }

    /// The currently published config epoch.
    pub fn current_epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Acquire)
    }

    /// The currently published serving configuration.
    pub fn current_config(&self) -> Arc<ServeConfig> {
        self.inner.config.lock().clone()
    }

    /// The epoch each shard last acked, in shard order. A shard whose
    /// entry lags [`ControlHandle::current_epoch`] has not yet processed
    /// the fan-out item in its queue.
    pub fn acked_epochs(&self) -> Vec<u64> {
        self.inner
            .routes
            .table
            .lock()
            .acked
            .iter()
            .map(|slot| slot.load(Ordering::Acquire))
            .collect()
    }

    /// Number of serving shards currently routed to.
    pub fn shard_count(&self) -> usize {
        self.inner.routes.table.lock().senders.len()
    }

    /// Blocks until every shard has acked at least `epoch` (true) or the
    /// timeout passed (false).
    pub fn wait_for_epoch(&self, epoch: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let acked = self.acked_epochs();
            if !acked.is_empty() && acked.iter().all(|&e| e >= epoch) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Publishes the next config epoch carrying `delta` and fans it to
    /// every shard through its work queue. Returns immediately with the
    /// receipt; workers adopt the epoch in their next loop iteration
    /// (observe via [`ControlHandle::wait_for_epoch`]).
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] of validating the delta's cache or pool
    /// configuration; nothing is published on error.
    pub fn apply(&self, delta: ConfigDelta) -> Result<EpochReceipt, ConfigError> {
        let _op = self.inner.op_lock.lock();
        if let Some(pool) = &delta.pool {
            pool.validate().map_err(|err| ConfigError::Invalid {
                field: "pool",
                reason: err.to_string(),
            })?;
        }
        let current = self.current_config();
        let cache = delta.cache.unwrap_or(*current.cache());
        let next = Arc::new(current.next(cache)?);
        let order = Arc::new(EpochOrder {
            config: next.clone(),
            pool: delta.pool,
            sources: delta.sources,
        });
        let shards = {
            let table = self.inner.routes.table.lock();
            for (sender, ack) in table.senders.iter().zip(&table.acked) {
                let _ = sender.send(WorkItem::Reconfigure {
                    order: order.clone(),
                    ack: ack.clone(),
                });
            }
            table.senders.len()
        };
        self.publish_config(next.clone());
        Ok(EpochReceipt {
            epoch: next.epoch(),
            shards,
        })
    }

    /// Changes the number of serving shards to `shards` while queries keep
    /// flowing, re-routing the hash ring and handing cache entries from
    /// retiring shards to their new owners with stamps intact. `factory`
    /// builds each **added** shard (called with its shard index; not
    /// called at all when shrinking). The rescale publishes a fresh epoch
    /// (same knobs) so the transition is observable through the epoch
    /// gauges; it returns once the pre-existing workers have confirmed
    /// their handoff.
    ///
    /// Serve counters are owned per shard: a retiring shard's cumulative
    /// serve metrics leave the aggregate with it. The front-door counters
    /// (`sdoh_udp_queries_total`, `sdoh_dropped_queries_total`, …) are
    /// global and unaffected.
    ///
    /// # Errors
    ///
    /// `shards == 0` and worker-spawn failures. The route table is only
    /// published after every new worker spawned successfully.
    pub fn rescale(
        &self,
        shards: usize,
        mut factory: impl FnMut(usize) -> Shard,
    ) -> std::io::Result<EpochReceipt> {
        if shards == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a runtime needs at least one shard",
            ));
        }
        let _op = self.inner.op_lock.lock();
        let current = self.current_config();
        let next = Arc::new(current.next(*current.cache()).map_err(|err| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, err.to_string())
        })?);
        let order = Arc::new(EpochOrder {
            config: next.clone(),
            pool: None,
            sources: None,
        });

        let (old_senders, old_acked) = {
            let table = self.inner.routes.table.lock();
            (table.senders.clone(), table.acked.clone())
        };
        let old = old_senders.len();

        if shards >= old {
            // Grow: spawn the added workers, put everyone on the new epoch,
            // publish the widened ring, then pull the entries it re-homed.
            let mut senders = old_senders.clone();
            let mut acked = old_acked.clone();
            for index in old..shards {
                let (tx, rx) = mpsc::channel();
                let ack = Arc::new(AtomicU64::new(0));
                let handle = spawn_worker(&self.inner.ctx, index, factory(index), rx)?;
                self.inner.worker_handles.lock().push(handle);
                let _ = tx.send(WorkItem::Reconfigure {
                    order: order.clone(),
                    ack: ack.clone(),
                });
                senders.push(tx);
                acked.push(ack);
            }
            for (sender, ack) in old_senders.iter().zip(&old_acked) {
                let _ = sender.send(WorkItem::Reconfigure {
                    order: order.clone(),
                    ack: ack.clone(),
                });
            }
            let ring = Arc::new(senders.clone());
            self.inner.routes.publish(RouteTable { senders, acked });
            let (done_tx, done_rx) = mpsc::channel();
            for sender in &old_senders {
                let _ = sender.send(WorkItem::Rehash {
                    table: ring.clone(),
                    shards,
                    done: done_tx.clone(),
                });
            }
            drop(done_tx);
            await_handoff(&done_rx, old);
        } else {
            // Shrink: stop routing to the retirees *first*, then put the
            // survivors on the new epoch and have the retirees hand every
            // entry to its surviving owner. The retirees linger to serve
            // stray in-flight queries and exit on queue disconnect.
            let survivors = old_senders.get(..shards).unwrap_or(&old_senders).to_vec();
            let survivor_acked = old_acked.get(..shards).unwrap_or(&old_acked).to_vec();
            let ring = Arc::new(survivors.clone());
            self.inner.routes.publish(RouteTable {
                senders: survivors.clone(),
                acked: survivor_acked.clone(),
            });
            for (sender, ack) in survivors.iter().zip(&survivor_acked) {
                let _ = sender.send(WorkItem::Reconfigure {
                    order: order.clone(),
                    ack: ack.clone(),
                });
            }
            let (done_tx, done_rx) = mpsc::channel();
            for sender in old_senders.get(shards..).unwrap_or(&[]) {
                let _ = sender.send(WorkItem::Retire {
                    table: ring.clone(),
                    shards,
                    done: done_tx.clone(),
                });
            }
            drop(done_tx);
            await_handoff(&done_rx, old - shards);
        }

        self.publish_config(next.clone());
        Ok(EpochReceipt {
            epoch: next.epoch(),
            shards,
        })
    }

    /// Probes every cache entry of every shard (see
    /// [`CachingPoolResolver::probe_entries`](sdoh_core::CachingPoolResolver::probe_entries)):
    /// `(shard index, probes)` for each shard that answered within
    /// `timeout`. Invariant checks use this to assert that no key is
    /// cached by two shards at once after a rescale.
    // sdoh-lint: allow(transitive-hot-path-purity, "operator-facing control op: probes shards over the control channel on demand, never on the query path")
    pub fn probe_entries(&self, timeout: Duration) -> Vec<(usize, Vec<CacheEntryProbe>)> {
        let senders = self.inner.routes.senders();
        let (tx, rx) = mpsc::channel();
        let mut requested = 0;
        for sender in &senders {
            if sender.send(WorkItem::Probe(tx.clone())).is_ok() {
                requested += 1;
            }
        }
        drop(tx);
        let deadline = Instant::now() + timeout;
        let mut probes = Vec::new();
        for _ in 0..requested {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(remaining) {
                Ok(entry) => probes.push(entry),
                Err(_) => break,
            }
        }
        probes.sort_by_key(|(index, _)| *index);
        probes
    }

    /// The `/config` document: current epoch, shard count, per-shard acked
    /// epochs and the published cache knobs, as JSON.
    pub fn config_json(&self) -> String {
        let config = self.current_config();
        let cache = *config.cache();
        let acked = self.acked_epochs();
        let mut acked_json = String::from("[");
        for (i, epoch) in acked.iter().enumerate() {
            if i > 0 {
                acked_json.push_str(", ");
            }
            acked_json.push_str(&epoch.to_string());
        }
        acked_json.push(']');
        format!(
            "{{\"epoch\": {}, \"shards\": {}, \"acked_epochs\": {}, \"cache\": \
             {{\"capacity\": {}, \"ttl_seconds\": {}, \"stale_window_seconds\": {}, \
             \"negative_ttl_seconds\": {}}}}}",
            config.epoch(),
            acked.len(),
            acked_json,
            cache.capacity,
            cache.ttl.as_duration().as_secs_f64(),
            cache.stale_window.as_secs_f64(),
            cache.negative_ttl.as_duration().as_secs_f64(),
        )
    }

    fn publish_config(&self, next: Arc<ServeConfig>) {
        self.inner.epoch.store(next.epoch(), Ordering::Release);
        *self.inner.config.lock() = next;
    }
}

impl std::fmt::Debug for ControlHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlHandle")
            .field("epoch", &self.current_epoch())
            .field("shards", &self.shard_count())
            .finish()
    }
}

/// Collects up to `expected` handoff confirmations within the rescale
/// deadline. Late confirmations are not an error — the handoff items are
/// already queued FIFO before anything that could depend on them.
fn await_handoff(done: &mpsc::Receiver<usize>, expected: usize) {
    let deadline = Instant::now() + RESCALE_TIMEOUT;
    for _ in 0..expected {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if done.recv_timeout(remaining).is_err() {
            break;
        }
    }
}

/// The shard a cache key is routed to: the control-plane mirror of the
/// dispatcher's wire-level `question_hash` (lowercased labels, each
/// followed by a dot separator, then the query type code). Workers use it
/// to decide which entries a new hash ring re-homes; it MUST match the
/// dispatcher's routing or handed-off entries would land on shards that
/// never see their queries.
pub(crate) fn owner_of(key: &PoolKey, shards: usize) -> usize {
    let mut hasher = DefaultHasher::new();
    for label in key.domain.labels() {
        for &byte in label {
            hasher.write_u8(byte.to_ascii_lowercase());
        }
        hasher.write_u8(b'.');
    }
    hasher.write_u16(key.family.rtype().code());
    (hasher.finish() % shards as u64) as usize // sdoh-lint: allow(no-narrowing-cast, "usize to u64 never loses value on supported targets, and the modulo result is below shards")
}
