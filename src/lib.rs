//! Umbrella crate for the *Secure Consensus Generation with Distributed
//! DoH* reproduction.
//!
//! Re-exports every workspace crate under one roof and provides the shared
//! [`scenario`] module used by the examples, the integration tests and the
//! experiment binaries.
//!
//! | module | contents |
//! |---|---|
//! | [`wire`] | DNS wire format (messages, names, records, base64url) |
//! | [`netsim`] | deterministic network simulator and adversary models |
//! | [`dns`] | authoritative zones, caches, stub/recursive resolvers |
//! | [`doh`] | HTTP/2, secure channel, RFC 8484 DoH client and server |
//! | [`ntp`] | NTP packets, simulated time servers, Chronos |
//! | [`core`] | secure pool generation (Algorithm 1, majority mode) |
//! | [`analysis`] | Section III security analysis and Monte-Carlo sweeps |
//! | [`runtime`] | threaded real-socket Do53 serving runtime |
//! | [`metrics`] | Prometheus-style registry, exporters, fleet rollups |
//! | [`scenario`] | ready-made Figure 1 scenarios wiring all of the above |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use sdoh_analysis as analysis;
pub use sdoh_core as core;
pub use sdoh_dns_server as dns;
pub use sdoh_dns_wire as wire;
pub use sdoh_doh as doh;
pub use sdoh_metrics as metrics;
pub use sdoh_netsim as netsim;
pub use sdoh_ntp as ntp;
pub use sdoh_runtime as runtime;

pub mod scenario;
