//! Ready-made simulation scenarios reproducing the paper's Figure 1 setup.
//!
//! A scenario wires together every substrate in the workspace: a DNS
//! hierarchy (root → `org.` → `ntpns.org.` with the `pool.ntpns.org` address
//! records), a fleet of public DoH resolvers each running a real recursive
//! resolver (optionally compromised), a plain "ISP" resolver for the
//! baseline, and the NTP servers the pool points at (optionally malicious).
//! Examples, integration tests and the experiment binaries all build on it.

use std::net::IpAddr;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use sdoh_core::{
    CacheConfig, CachingPoolResolver, GenerationReport, PoolConfig, SecurePoolGenerator,
    SecurePoolResolver,
};
use sdoh_dns_server::{
    Authority, Catalog, ClientExchanger, Do53Service, HardeningConfig, PoisonConfig, PoisonMode,
    PoisonedResolver, QueryHandler, RecursiveConfig, RecursiveResolver, Zone,
};
use sdoh_dns_wire::{Message, MessageBuilder, Name, RData, Record};
use sdoh_doh::{DohMethod, DohServerService, ResolverDirectory, ResolverInfo};
use sdoh_netsim::{BirthdaySpoofer, LinkConfig, ObservedIdentifiers, SimAddr, SimNet};
use sdoh_ntp::{
    register_pool, ChronosClient, ConsensusFrontEnd, NtpServerConfig, NtpServerService,
    SecureTimeClient,
};

use crate::core::{AddressSource, DohSource, PoolResult};

/// Address of the simulated root name server.
pub const ROOT_SERVER: SimAddr = SimAddr {
    ip: IpAddr::V4(std::net::Ipv4Addr::new(198, 41, 0, 4)),
    port: 53,
};

/// Address of the simulated `org.` name server.
pub const ORG_SERVER: SimAddr = SimAddr {
    ip: IpAddr::V4(std::net::Ipv4Addr::new(199, 19, 56, 1)),
    port: 53,
};

/// Address of the simulated `ntpns.org.` name server (the `c.ntpns.org` of
/// Figure 1).
pub const NTPNS_SERVER: SimAddr = SimAddr {
    ip: IpAddr::V4(std::net::Ipv4Addr::new(198, 51, 100, 3)),
    port: 53,
};

/// Address of the plain "ISP" resolver used by the baseline configuration.
pub const ISP_RESOLVER: SimAddr = SimAddr {
    ip: IpAddr::V4(std::net::Ipv4Addr::new(10, 0, 0, 53)),
    port: 53,
};

/// Address of the application host (the Chronos client of Figure 1).
pub const CLIENT_ADDR: SimAddr = SimAddr {
    ip: IpAddr::V4(std::net::Ipv4Addr::new(192, 0, 2, 10)),
    port: 40000,
};

/// Address where the serving front ends (cached or uncached pool
/// resolvers) are installed by the scenario helpers.
pub const FRONTEND_ADDR: SimAddr = SimAddr {
    ip: IpAddr::V4(std::net::Ipv4Addr::new(192, 0, 2, 53)),
    port: 53,
};

/// Address of the attacker's own name server — the destination a
/// Kaminsky-style forged referral points the victim resolver at
/// ([`Scenario::install_kaminsky_authority`]).
pub const EVIL_NS_ADDR: SimAddr = SimAddr {
    ip: IpAddr::V4(std::net::Ipv4Addr::new(198, 18, 254, 53)),
    port: 53,
};

/// The (off-zone) host name the forged referral claims serves the pool
/// zone.
pub fn evil_ns_name() -> Name {
    "ns.evil-time.net".parse().expect("valid name")
}

/// What a compromised DoH resolver does, mapped onto the poisoning modes of
/// the DNS layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolverCompromise {
    /// Replace every answer for the pool domain with attacker addresses.
    ReplaceWithAttackerAddresses(usize),
    /// Keep the honest answer but append this many attacker addresses
    /// (answer inflation).
    InflateWithAttackerAddresses(usize),
    /// Answer the pool domain with an empty record set.
    EmptyAnswer,
}

/// Parameters of a Figure 1 scenario.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Simulation seed; every random choice derives from it.
    pub seed: u64,
    /// Number of DoH resolvers installed (the first `n` of the well-known
    /// directory).
    pub resolvers: usize,
    /// Number of benign NTP servers published in `pool.ntpns.org`.
    pub ntp_servers: usize,
    /// Number of pool domains served by the hierarchy (clamped to at least
    /// one). The first is `pool.ntpns.org`; additional ones are
    /// `pool2.ntpns.org`, `pool3.ntpns.org`, … — the "handful of domains" a
    /// serving workload spreads its queries over. Every pool domain
    /// publishes the same benign NTP fleet, and a compromised resolver
    /// poisons all of them.
    pub pool_domains: usize,
    /// Indexes of resolvers that are compromised, with their behaviour.
    pub compromised: Vec<(usize, ResolverCompromise)>,
    /// Time shift (seconds) applied by attacker-operated NTP servers.
    pub attacker_time_shift: f64,
    /// One-way link latency applied between all hosts.
    pub link_latency: Duration,
    /// Off-path defenses of the plain "ISP" resolver's Do53 leg. The
    /// secure default is every defense on;
    /// [`HardeningConfig::predictable_ids`] reproduces the weak resolver
    /// the paper's off-path attacker poisons. The DoH resolver fleet is
    /// always fully hardened.
    pub isp_hardening: HardeningConfig,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 1,
            resolvers: 3,
            ntp_servers: 8,
            pool_domains: 1,
            compromised: Vec::new(),
            attacker_time_shift: 1000.0,
            link_latency: Duration::from_millis(10),
            isp_hardening: HardeningConfig::default(),
        }
    }
}

/// Composition of the NTP fleet serving the published pool addresses,
/// installed by [`Scenario::install_ntp_fleet`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NtpFleetConfig {
    /// How many of the published pool servers are attacker-operated
    /// (shifting reported time). These are linked into
    /// [`Scenario::ground_truth`] so every guarantee check sees them.
    pub malicious: usize,
    /// How many of the published pool servers are unresponsive (crashed or
    /// firewalled) — the situation that exercises the Chronos
    /// insufficient-samples guard.
    pub silent: usize,
    /// Time shift applied by the malicious servers; defaults to the
    /// scenario's `attacker_time_shift` when `None`.
    pub time_shift: Option<f64>,
}

/// What a winning race of the Kaminsky-style birthday attacker injects
/// ([`Scenario::kaminsky_adversary`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KaminskyPayload {
    /// A forged direct answer: the raced query is answered with
    /// attacker-operated NTP addresses.
    DirectAnswer,
    /// A forged referral delegating the whole pool zone to the attacker's
    /// name server at [`EVIL_NS_ADDR`] with blind off-zone glue — the
    /// classic Kaminsky cache hijack. A resolver that trusts the glue is
    /// redirected wholesale; a bailiwick-enforcing resolver discards it.
    Referral,
}

/// A fully wired Figure 1 scenario.
pub struct Scenario {
    /// The simulated network with every service registered.
    pub net: SimNet,
    /// Directory of installed DoH resolvers (first `resolvers` entries of
    /// the well-known list).
    pub directory: ResolverDirectory,
    /// The resolvers actually installed.
    pub resolver_infos: Vec<ResolverInfo>,
    /// The pool domain (`pool.ntpns.org.`).
    pub pool_domain: Name,
    /// Every pool domain the hierarchy serves (the first entry is
    /// [`Scenario::pool_domain`]).
    pub pool_domains: Vec<Name>,
    /// Addresses published in the pool domains. All benign after
    /// [`Scenario::build`]; [`Scenario::install_ntp_fleet`] can re-register
    /// some of them as malicious or silent.
    pub benign_ntp: Vec<IpAddr>,
    /// Addresses of the attacker-operated NTP servers (used by compromised
    /// resolvers when they replace or inflate answers).
    pub attacker_ntp: Vec<IpAddr>,
    /// Published pool servers currently operated by the attacker (set by
    /// [`Scenario::install_ntp_fleet`], folded into
    /// [`Scenario::ground_truth`]).
    pub pool_ntp_malicious: Vec<IpAddr>,
    /// The scenario configuration it was built from.
    pub config: ScenarioConfig,
}

impl Scenario {
    /// Builds the scenario: DNS hierarchy, DoH resolvers, ISP resolver and
    /// NTP servers.
    pub fn build(config: ScenarioConfig) -> Self {
        let net = SimNet::new(config.seed);
        net.set_default_link(
            LinkConfig::with_latency(config.link_latency).jitter(Duration::from_millis(2)),
        );

        let pool_domains: Vec<Name> = (0..config.pool_domains.max(1))
            .map(|i| {
                let label = if i == 0 {
                    "pool.ntpns.org".to_string()
                } else {
                    format!("pool{}.ntpns.org", i + 1)
                };
                label.parse().expect("valid name")
            })
            .collect();
        let pool_domain: Name = pool_domains[0].clone();
        let benign_ntp: Vec<IpAddr> = (1..=config.ntp_servers)
            .map(|i| IpAddr::V4(std::net::Ipv4Addr::new(203, 0, 113, i as u8)))
            .collect();
        // A generous supply of attacker-operated servers so that inflation
        // attacks can outnumber the honest pool when truncation is disabled.
        let attacker_ntp: Vec<IpAddr> = (1..=config.ntp_servers.max(4) * 8)
            .map(|i| {
                IpAddr::V4(std::net::Ipv4Addr::new(
                    198,
                    18,
                    (i / 250) as u8,
                    (i % 250) as u8,
                ))
            })
            .collect();

        install_dns_hierarchy(&net, &pool_domains, &benign_ntp);

        // NTP servers: benign ones behind the pool records, malicious ones
        // behind the attacker addresses.
        let benign_addrs: Vec<SimAddr> = benign_ntp
            .iter()
            .map(|&ip| SimAddr::new(ip, sdoh_netsim::ports::NTP))
            .collect();
        register_pool(&net, &benign_addrs, 0, 0.0, config.seed ^ 0xA11CE);
        let attacker_addrs: Vec<SimAddr> = attacker_ntp
            .iter()
            .map(|&ip| SimAddr::new(ip, sdoh_netsim::ports::NTP))
            .collect();
        register_pool(
            &net,
            &attacker_addrs,
            attacker_addrs.len(),
            config.attacker_time_shift,
            config.seed ^ 0xBAD,
        );

        // The plain ISP resolver (baseline): an honest recursive resolver
        // reachable over Do53, hardened (or not) per the configuration.
        let isp = RecursiveResolver::new(
            RecursiveConfig {
                root_hints: vec![ROOT_SERVER],
                hardening: config.isp_hardening,
                ..RecursiveConfig::default()
            },
            net.clock(),
        );
        net.register(ISP_RESOLVER, Do53Service::new(isp));

        // The DoH resolver fleet.
        let directory = ResolverDirectory::well_known(config.seed);
        let resolver_infos = directory.take(config.resolvers);

        let scenario = Scenario {
            net,
            directory,
            resolver_infos,
            pool_domain,
            pool_domains,
            benign_ntp,
            attacker_ntp,
            pool_ntp_malicious: Vec::new(),
            config,
        };
        for index in 0..scenario.resolver_infos.len() {
            let compromise = scenario
                .config
                .compromised
                .iter()
                .find(|(i, _)| *i == index)
                .map(|(_, behaviour)| behaviour.clone());
            scenario.install_resolver(index, compromise.as_ref());
        }
        scenario
    }

    /// (Re-)installs the DoH resolver at `index` of the fleet, replacing
    /// whatever is registered at its address: a fresh honest recursive
    /// resolver when `compromise` is `None`, otherwise one wrapped in a
    /// poisoning layer per pool domain. Build time uses this to stand the
    /// fleet up; chaos campaigns use it to churn, compromise and restore
    /// resolvers mid-run (a reinstalled resolver starts with a cold cache,
    /// like a replacement instance would).
    ///
    /// # Panics
    ///
    /// Panics when `index` is outside the installed fleet.
    pub fn install_resolver(&self, index: usize, compromise: Option<&ResolverCompromise>) {
        let info = &self.resolver_infos[index];
        let recursive = RecursiveResolver::new(
            RecursiveConfig {
                root_hints: vec![ROOT_SERVER],
                ..RecursiveConfig::default()
            },
            self.net.clock(),
        );
        let handler: Box<dyn QueryHandler> = match compromise {
            None => Box::new(recursive),
            Some(behaviour) => {
                // One poisoning wrapper per pool domain, so a
                // compromised resolver misbehaves for every domain a
                // serving workload spreads its queries over.
                let mut handler: Box<dyn QueryHandler> = Box::new(recursive);
                for domain in &self.pool_domains {
                    let mode = match behaviour {
                        ResolverCompromise::ReplaceWithAttackerAddresses(count) => {
                            PoisonMode::ReplaceAddresses(
                                self.attacker_ntp
                                    .iter()
                                    .take((*count).max(1))
                                    .copied()
                                    .collect(),
                            )
                        }
                        ResolverCompromise::InflateWithAttackerAddresses(count) => {
                            PoisonMode::InflateWith(
                                self.attacker_ntp
                                    .iter()
                                    .take((*count).max(1))
                                    .copied()
                                    .collect(),
                            )
                        }
                        ResolverCompromise::EmptyAnswer => PoisonMode::EmptyAnswer,
                    };
                    handler = Box::new(PoisonedResolver::new(
                        handler,
                        PoisonConfig::new(domain.clone(), mode),
                    ));
                }
                handler
            }
        };
        self.net
            .register(info.addr, DohServerService::new(info.clone(), handler));
    }

    /// Unregisters the DoH resolver at `index` (it died); returns whether it
    /// was registered. [`Scenario::install_resolver`] revives it.
    pub fn kill_resolver(&self, index: usize) -> bool {
        self.net.unregister(self.resolver_infos[index].addr)
    }

    /// The network address of the DoH resolver at `index` of the fleet.
    pub fn resolver_addr(&self, index: usize) -> SimAddr {
        self.resolver_infos[index].addr
    }

    /// Re-registers the NTP fleet behind the **published** pool addresses:
    /// the first `fleet.malicious` servers become attacker-operated time
    /// shifters, the next `fleet.silent` stop answering, and the rest stay
    /// benign. The malicious ones are recorded in
    /// [`Scenario::pool_ntp_malicious`] and therefore show up in
    /// [`Scenario::ground_truth`], so guarantee checks and clock-error
    /// measurements stay linked to the same ground truth the DNS layer
    /// uses.
    ///
    /// This models the paper's full threat surface: even an honestly
    /// resolved pool can contain a (tolerated) bad minority, while a
    /// poisoned resolution replaces the pool wholesale.
    pub fn install_ntp_fleet(&mut self, fleet: NtpFleetConfig) {
        let shift = fleet.time_shift.unwrap_or(self.config.attacker_time_shift);
        let malicious = fleet.malicious.min(self.benign_ntp.len());
        let silent = fleet.silent.min(self.benign_ntp.len() - malicious);
        self.pool_ntp_malicious = self.benign_ntp[..malicious].to_vec();
        for (index, &ip) in self.benign_ntp.iter().enumerate() {
            let config = if index < malicious {
                NtpServerConfig::malicious(shift)
            } else if index < malicious + silent {
                NtpServerConfig::silent()
            } else {
                NtpServerConfig::benign()
            };
            self.net.register(
                SimAddr::new(ip, sdoh_netsim::ports::NTP),
                NtpServerService::new(
                    config,
                    self.net.clock(),
                    self.config.seed ^ 0xF1EE7 ^ index as u64,
                ),
            );
        }
    }

    /// A secure pool generator over this scenario's DoH resolvers.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the generator constructor.
    pub fn pool_generator(&self, config: PoolConfig) -> PoolResult<SecurePoolGenerator> {
        let sources: Vec<Box<dyn AddressSource>> = self
            .resolver_infos
            .iter()
            .map(|info| {
                Box::new(DohSource::new(info.clone()).method(DohMethod::Get))
                    as Box<dyn AddressSource>
            })
            .collect();
        SecurePoolGenerator::new(config, sources)
    }

    /// Ground truth for guarantee checking: attacker NTP addresses are
    /// malicious — plus any published pool servers the attacker operates
    /// ([`Scenario::install_ntp_fleet`]) — everything else benign.
    pub fn ground_truth(&self) -> sdoh_core::GroundTruth {
        let mut truth = sdoh_core::GroundTruth::with_malicious(self.attacker_ntp.iter().copied());
        truth.extend_malicious(self.pool_ntp_malicious.iter().copied());
        truth
    }

    /// An exchanger sending from the application host of Figure 1.
    pub fn client_exchanger(&self) -> ClientExchanger<'_> {
        ClientExchanger::new(&self.net, CLIENT_ADDR)
    }

    /// Runs one secure pool generation over the scenario's DoH fleet with
    /// the paper's **concurrent fan-out** (all resolvers queried in
    /// parallel), returning the report and the elapsed virtual time.
    ///
    /// # Errors
    ///
    /// Propagates configuration and generation errors.
    pub fn generate_pool(&self, config: PoolConfig) -> PoolResult<(GenerationReport, Duration)> {
        let generator = self.pool_generator(config)?;
        let mut exchanger = self.client_exchanger();
        let start = self.net.now();
        let report = generator.generate(&mut exchanger, &self.pool_domain)?;
        Ok((report, self.net.clock().elapsed_since(start)))
    }

    /// Like [`Scenario::generate_pool`] but querying the resolvers one at a
    /// time — the latency baseline the concurrent fan-out is measured
    /// against.
    ///
    /// # Errors
    ///
    /// Propagates configuration and generation errors.
    pub fn generate_pool_sequential(
        &self,
        config: PoolConfig,
    ) -> PoolResult<(GenerationReport, Duration)> {
        let generator = self.pool_generator(config)?;
        let mut exchanger = self.client_exchanger();
        let start = self.net.now();
        let report = generator.generate_sequential(&mut exchanger, &self.pool_domain)?;
        Ok((report, self.net.clock().elapsed_since(start)))
    }

    /// Builds a [`CachingPoolResolver`] over this scenario's DoH fleet and
    /// registers it as a plain-DNS front end at [`FRONTEND_ADDR`]. The
    /// returned handle stays shared with the registered service, so the
    /// experiment can pump background refreshes
    /// ([`CachingPoolResolver::run_due_refreshes`]) and read
    /// [`CachingPoolResolver::metrics`] while clients query it over the
    /// network.
    ///
    /// The handle is the **thread-safe** `Arc<Mutex<_>>` (access the
    /// resolver with `.lock()`), the same sharing primitive the
    /// real-socket runtime uses — so a resolver configured inside a
    /// simulation scenario can also be handed to threaded drivers.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the generator constructor.
    pub fn install_caching_frontend(
        &self,
        pool: PoolConfig,
        cache: CacheConfig,
    ) -> PoolResult<Arc<Mutex<CachingPoolResolver>>> {
        let resolver = Arc::new(Mutex::new(CachingPoolResolver::new(
            self.pool_generator(pool)?,
            cache,
        )));
        self.net
            .register(FRONTEND_ADDR, Do53Service::new(Arc::clone(&resolver)));
        Ok(resolver)
    }

    /// Builds the end-to-end secure time-sync pipeline over this scenario:
    /// installs the caching consensus front end at [`FRONTEND_ADDR`] (so
    /// network clients share it too) and wires the same handle into a
    /// [`SecureTimeClient`] driving `chronos` — pool per TTL window,
    /// re-pulled on refresh, Chronos updates over it.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the generator constructor.
    pub fn secure_time_client(
        &self,
        pool: PoolConfig,
        cache: CacheConfig,
        chronos: ChronosClient,
    ) -> PoolResult<SecureTimeClient> {
        let frontend = self.install_caching_frontend(pool, cache)?;
        Ok(SecureTimeClient::new(
            Box::new(ConsensusFrontEnd::new(frontend)),
            self.pool_domain.clone(),
            chronos,
        ))
    }

    /// Registers the **attacker's name server** at [`EVIL_NS_ADDR`]: an
    /// authoritative copy of the pool zone answering every pool domain
    /// with attacker-operated NTP addresses. A victim resolver that
    /// follows a Kaminsky-style forged referral (blind glue) ends up
    /// asking this server and caching its poison; a bailiwick-enforcing
    /// resolver never gets here.
    pub fn install_kaminsky_authority(&self) {
        let mut zone = Zone::new("ntpns.org".parse().expect("valid"));
        zone.add_record(Record::new(
            "ntpns.org".parse().expect("valid"),
            86_400,
            RData::Ns(evil_ns_name()),
        ));
        for domain in &self.pool_domains {
            for addr in self.attacker_ntp.iter().take(self.config.ntp_servers) {
                zone.add_record(Record::address(domain.clone(), 300, *addr));
            }
        }
        let mut catalog = Catalog::new();
        catalog.add_zone(zone);
        self.net
            .register(EVIL_NS_ADDR, Do53Service::new(Authority::new(catalog)));
    }

    /// Builds the paper's off-path **birthday attacker** against this
    /// scenario's Do53 legs: it races `attempts` forged responses against
    /// every plain query for the pool zone sent to the authoritative
    /// servers, guessing transaction ids, source ports and 0x20 casing as
    /// described on [`BirthdaySpoofer`]. Attach it with
    /// `scenario.net.set_adversary(...)` and keep the
    /// [`BirthdaySpoofer::stats_handle`] for accounting.
    ///
    /// [`KaminskyPayload`] selects what a winning race injects: a direct
    /// forged answer for the raced query, or a forged referral delegating
    /// the whole pool zone to [`EVIL_NS_ADDR`] (install the attacker's
    /// server with [`Scenario::install_kaminsky_authority`] first).
    pub fn kaminsky_adversary(&self, attempts: u32, payload: KaminskyPayload) -> BirthdaySpoofer {
        let zone: Name = "ntpns.org".parse().expect("valid");
        let inspect_zone = zone.clone();
        let forged_addresses: Vec<IpAddr> = self
            .attacker_ntp
            .iter()
            .take(self.config.ntp_servers)
            .copied()
            .collect();
        BirthdaySpoofer::new(
            attempts,
            move |payload_bytes: &[u8]| {
                let query = Message::decode(payload_bytes).ok()?;
                let question = query.question()?;
                if !question.rtype.is_address() || !question.name.is_subdomain_of(&inspect_zone) {
                    return None;
                }
                Some(ObservedIdentifiers {
                    txid: query.header.id,
                    // 0x20 bits the forger cannot derive from context: only
                    // a mixed-case query carries them.
                    extra_entropy_bits: if question.name.is_canonical_lowercase() {
                        0
                    } else {
                        question.name.case_entropy_bits()
                    },
                })
            },
            move |query_bytes: &[u8], _rng| {
                let query = Message::decode(query_bytes).ok()?;
                let question = query.question()?.clone();
                let response = match payload {
                    KaminskyPayload::DirectAnswer => {
                        let mut builder = MessageBuilder::response_to(&query);
                        for addr in &forged_addresses {
                            builder =
                                builder.answer(Record::address(question.name.clone(), 300, *addr));
                        }
                        builder.build()
                    }
                    KaminskyPayload::Referral => MessageBuilder::response_to(&query)
                        .authority(Record::new(zone.clone(), 86_400, RData::Ns(evil_ns_name())))
                        .additional(Record::address(evil_ns_name(), 86_400, EVIL_NS_ADDR.ip))
                        .build(),
                };
                response.encode().ok()
            },
        )
        .with_targets(vec![ROOT_SERVER, ORG_SERVER, NTPNS_SERVER])
    }

    /// Registers the uncached [`SecurePoolResolver`] front end at
    /// [`FRONTEND_ADDR`] — the one-generation-per-query baseline the
    /// serving subsystem is measured against. Returns the shared
    /// (`Arc<Mutex<_>>`) handle for metrics inspection.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the generator constructor.
    pub fn install_uncached_frontend(
        &self,
        pool: PoolConfig,
    ) -> PoolResult<Arc<Mutex<SecurePoolResolver>>> {
        let resolver = Arc::new(Mutex::new(SecurePoolResolver::new(
            self.pool_generator(pool)?,
        )));
        self.net
            .register(FRONTEND_ADDR, Do53Service::new(Arc::clone(&resolver)));
        Ok(resolver)
    }
}

/// Wraps bare addresses in an [`AddressPool`](sdoh_core::AddressPool)
/// attributed to `source` — how experiments feed pools obtained outside a
/// `GenerationReport` (a stub lookup, a served answer) into
/// [`check_guarantee`](sdoh_core::check_guarantee).
pub fn address_pool(addresses: &[IpAddr], source: &str) -> sdoh_core::AddressPool {
    let mut pool = sdoh_core::AddressPool::new();
    for &addr in addresses {
        pool.push(addr, source);
    }
    pool
}

/// Installs the root → org → ntpns.org DNS hierarchy serving every pool
/// domain.
fn install_dns_hierarchy(net: &SimNet, pool_domains: &[Name], pool_addresses: &[IpAddr]) {
    // Root zone delegates org. to the org server.
    let mut root_zone = Zone::new(Name::root());
    root_zone.add_record(Record::new(
        "org".parse().expect("valid"),
        86_400,
        RData::Ns("b0.org.afilias-nst.org".parse().expect("valid")),
    ));
    root_zone.add_record(Record::new(
        "b0.org.afilias-nst.org".parse().expect("valid"),
        86_400,
        RData::A(match ORG_SERVER.ip {
            IpAddr::V4(v4) => v4,
            IpAddr::V6(_) => unreachable!("org server is v4"),
        }),
    ));
    let mut root_catalog = Catalog::new();
    root_catalog.add_zone(root_zone);
    net.register(ROOT_SERVER, Do53Service::new(Authority::new(root_catalog)));

    // org. zone delegates ntpns.org.
    let mut org_zone = Zone::new("org".parse().expect("valid"));
    org_zone.add_record(Record::new(
        "ntpns.org".parse().expect("valid"),
        86_400,
        RData::Ns("c.ntpns.org".parse().expect("valid")),
    ));
    org_zone.add_record(Record::new(
        "c.ntpns.org".parse().expect("valid"),
        86_400,
        RData::A(match NTPNS_SERVER.ip {
            IpAddr::V4(v4) => v4,
            IpAddr::V6(_) => unreachable!("ntpns server is v4"),
        }),
    ));
    let mut org_catalog = Catalog::new();
    org_catalog.add_zone(org_zone);
    net.register(ORG_SERVER, Do53Service::new(Authority::new(org_catalog)));

    // ntpns.org zone with the pool records.
    let mut zone = Zone::new("ntpns.org".parse().expect("valid"));
    zone.add_record(Record::new(
        "ntpns.org".parse().expect("valid"),
        86_400,
        RData::Ns("c.ntpns.org".parse().expect("valid")),
    ));
    zone.add_record(Record::new(
        "c.ntpns.org".parse().expect("valid"),
        86_400,
        RData::A(match NTPNS_SERVER.ip {
            IpAddr::V4(v4) => v4,
            IpAddr::V6(_) => unreachable!("ntpns server is v4"),
        }),
    ));
    for pool_domain in pool_domains {
        for &addr in pool_addresses {
            zone.add_record(Record::address(pool_domain.clone(), 300, addr));
        }
    }
    let mut catalog = Catalog::new();
    catalog.add_zone(zone);
    net.register(NTPNS_SERVER, Do53Service::new(Authority::new(catalog)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdoh_core::{check_guarantee, CombinationMode};
    use sdoh_dns_server::{ClientExchanger, StubResolver};

    #[test]
    fn default_scenario_serves_the_pool_domain_both_ways() {
        let scenario = Scenario::build(ScenarioConfig::default());
        let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);

        // Baseline: plain DNS through the ISP resolver.
        let stub = StubResolver::new(ISP_RESOLVER);
        let plain = stub
            .lookup_ipv4(&mut exchanger, &scenario.pool_domain)
            .unwrap();
        assert_eq!(plain.len(), scenario.config.ntp_servers);

        // Proposal: Algorithm 1 over the DoH fleet.
        let generator = scenario.pool_generator(PoolConfig::algorithm1()).unwrap();
        let report = generator
            .generate(&mut exchanger, &scenario.pool_domain)
            .unwrap();
        assert_eq!(
            report.pool.len(),
            scenario.config.ntp_servers * scenario.config.resolvers
        );
        let check = check_guarantee(&report.pool, &scenario.ground_truth(), 0.5);
        assert!(check.holds);
        assert!((check.benign_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compromised_minority_keeps_the_guarantee() {
        let scenario = Scenario::build(ScenarioConfig {
            resolvers: 3,
            compromised: vec![(0, ResolverCompromise::ReplaceWithAttackerAddresses(8))],
            ..ScenarioConfig::default()
        });
        let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
        let generator = scenario.pool_generator(PoolConfig::algorithm1()).unwrap();
        let report = generator
            .generate(&mut exchanger, &scenario.pool_domain)
            .unwrap();
        let check = check_guarantee(&report.pool, &scenario.ground_truth(), 0.5);
        assert!(check.holds, "1 of 3 compromised resolvers keeps x >= 1/2");
        assert!(check.malicious_fraction <= 1.0 / 3.0 + 1e-9);
    }

    #[test]
    fn inflation_is_neutralised_by_truncation_but_not_without_it() {
        let build = || {
            Scenario::build(ScenarioConfig {
                resolvers: 3,
                compromised: vec![(1, ResolverCompromise::InflateWithAttackerAddresses(32))],
                ..ScenarioConfig::default()
            })
        };
        let scenario = build();
        let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
        let report = scenario
            .pool_generator(PoolConfig::algorithm1())
            .unwrap()
            .generate(&mut exchanger, &scenario.pool_domain)
            .unwrap();
        let truth = scenario.ground_truth();
        let with_truncation = check_guarantee(&report.pool, &truth, 0.5);
        assert!(with_truncation.holds);

        let scenario = build();
        let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
        let report = scenario
            .pool_generator(
                PoolConfig::default().with_mode(CombinationMode::CombineWithoutTruncation),
            )
            .unwrap()
            .generate(&mut exchanger, &scenario.pool_domain)
            .unwrap();
        let without_truncation = check_guarantee(&report.pool, &scenario.ground_truth(), 0.5);
        assert!(
            !without_truncation.holds,
            "without truncation the inflated answer dominates the pool"
        );
    }

    #[test]
    fn multiple_pool_domains_are_served_and_poisoned_alike() {
        let scenario = Scenario::build(ScenarioConfig {
            pool_domains: 3,
            compromised: vec![(0, ResolverCompromise::ReplaceWithAttackerAddresses(4))],
            ..ScenarioConfig::default()
        });
        assert_eq!(scenario.pool_domains.len(), 3);
        assert_eq!(scenario.pool_domains[0], scenario.pool_domain);
        let generator = scenario.pool_generator(PoolConfig::algorithm1()).unwrap();
        let mut exchanger = scenario.client_exchanger();
        for domain in &scenario.pool_domains {
            let report = generator.generate(&mut exchanger, domain).unwrap();
            let check = check_guarantee(&report.pool, &scenario.ground_truth(), 0.5);
            assert!(check.holds, "{domain}: {check:?}");
            assert!(
                check.malicious_fraction > 0.0,
                "the compromised resolver must poison {domain} too"
            );
        }
    }

    #[test]
    fn serving_frontends_share_state_with_the_driver() {
        let scenario = Scenario::build(ScenarioConfig::default());
        let resolver = scenario
            .install_caching_frontend(PoolConfig::algorithm1(), CacheConfig::default())
            .unwrap();
        let stub = StubResolver::new(FRONTEND_ADDR);
        let mut exchanger = scenario.client_exchanger();
        let first = stub
            .lookup_ipv4(&mut exchanger, &scenario.pool_domain)
            .unwrap();
        assert_eq!(first.len(), 24, "8 NTP servers x 3 resolvers");
        let again = stub
            .lookup_ipv4(&mut exchanger, &scenario.pool_domain)
            .unwrap();
        assert_eq!(again, first);
        // The driver-side handle observes the queries the network served.
        let metrics = resolver.lock().metrics();
        assert_eq!(metrics.queries, 2);
        assert_eq!(metrics.generations, 1);
        assert_eq!(metrics.hits, 1);

        // Swapping in the uncached baseline replaces the registration.
        let uncached = scenario
            .install_uncached_frontend(PoolConfig::algorithm1())
            .unwrap();
        let baseline = stub
            .lookup_ipv4(&mut exchanger, &scenario.pool_domain)
            .unwrap();
        assert_eq!(baseline, first);
        assert_eq!(uncached.lock().metrics().served, 1);
        assert_eq!(resolver.lock().metrics().queries, 2, "detached handle");
    }

    #[test]
    fn ntp_fleet_links_planted_servers_into_ground_truth() {
        use sdoh_ntp::{ChronosConfig, LocalClock, NtpClient};

        let mut scenario = Scenario::build(ScenarioConfig {
            ntp_servers: 18,
            ..ScenarioConfig::default()
        });
        assert!(scenario.pool_ntp_malicious.is_empty());
        scenario.install_ntp_fleet(NtpFleetConfig {
            malicious: 4,
            silent: 2,
            time_shift: Some(750.0),
        });
        assert_eq!(scenario.pool_ntp_malicious.len(), 4);
        let truth = scenario.ground_truth();
        for ip in &scenario.benign_ntp[..4] {
            assert!(truth.is_malicious(*ip), "{ip} must be ground-truth bad");
        }
        assert!(!truth.is_malicious(scenario.benign_ntp[5]));

        // The honestly resolved pool now carries a bad minority — exactly
        // what Chronos is built to tolerate.
        let report = scenario
            .pool_generator(PoolConfig::algorithm1())
            .unwrap()
            .generate(&mut scenario.client_exchanger(), &scenario.pool_domain)
            .unwrap();
        let check = check_guarantee(&report.pool, &truth, 0.5);
        assert!(check.holds, "4 of 18 planted servers keep the majority");
        assert!(check.malicious_fraction > 0.0);

        let mut clock = LocalClock::new(scenario.net.clock(), 0.0);
        let mut chronos = sdoh_ntp::ChronosClient::new(
            ChronosConfig::default(),
            NtpClient::new(CLIENT_ADDR.with_port(123)),
            77,
        )
        .unwrap();
        chronos
            .update(&scenario.net, &mut clock, &report.pool.addresses())
            .unwrap();
        assert!(
            clock.offset_from_true().abs() < 1.0,
            "planted minority tolerated: {}",
            clock.offset_from_true()
        );
    }

    #[test]
    fn secure_time_client_syncs_over_the_installed_frontend() {
        use sdoh_ntp::{ChronosClient, ChronosConfig, LocalClock, NtpClient};

        let scenario = Scenario::build(ScenarioConfig {
            ntp_servers: 16,
            ..ScenarioConfig::default()
        });
        let mut client = scenario
            .secure_time_client(
                PoolConfig::algorithm1(),
                CacheConfig::default(),
                ChronosClient::new(
                    ChronosConfig::default(),
                    NtpClient::new(CLIENT_ADDR.with_port(123)),
                    88,
                )
                .unwrap(),
            )
            .unwrap();
        let mut clock = LocalClock::new(scenario.net.clock(), -45.0);
        let mut exchanger = scenario.client_exchanger();
        let outcome = client
            .sync(&scenario.net, &mut exchanger, &mut clock)
            .unwrap();
        assert!(outcome.pool_refreshed);
        assert_eq!(outcome.pool_size, 48, "16 servers x 3 resolvers");
        assert!(
            clock.offset_from_true().abs() < 0.1,
            "clock disciplined through the pipeline: {}",
            clock.offset_from_true()
        );

        // The front end the client pulled through is the same one network
        // clients reach at FRONTEND_ADDR: the pool is already cached.
        let stub = StubResolver::new(FRONTEND_ADDR);
        let served = stub
            .lookup_ipv4(&mut exchanger, &scenario.pool_domain)
            .unwrap();
        assert_eq!(served.len(), 48);
        let check = check_guarantee(
            &address_pool(&served, "frontend"),
            &scenario.ground_truth(),
            0.5,
        );
        assert!(check.holds);
    }

    #[test]
    fn empty_answer_compromise_is_a_dos_not_a_capture() {
        let scenario = Scenario::build(ScenarioConfig {
            resolvers: 3,
            compromised: vec![(2, ResolverCompromise::EmptyAnswer)],
            ..ScenarioConfig::default()
        });
        let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
        let report = scenario
            .pool_generator(PoolConfig::algorithm1())
            .unwrap()
            .generate(&mut exchanger, &scenario.pool_domain)
            .unwrap();
        assert!(
            report.pool.is_empty(),
            "footnote 2: empty answers DoS the pool"
        );
        assert!(!sdoh_core::attacker_controls_fraction(
            &report.pool,
            &scenario.ground_truth(),
            0.5
        ));
    }
}
